#!/usr/bin/env python3
"""Tune the R-type defense window (Section VI-B).

Sweeps the random-prediction window size S over Train + Test and
Test + Hit, reports each attack's p-value, and finds the minimal
secure window (the paper reports S = 3 and S = 9 respectively).  Also
demonstrates that the combined A+D+R stack blocks everything while a
lone D-type defense only closes persistent channels.

Run:  python examples/defense_tuning.py
"""

from repro.core import AttackConfig, AttackRunner, ChannelType
from repro.core.variants import (
    FillUpAttack,
    SpillOverAttack,
    TestHitAttack,
    TrainTestAttack,
)
from repro.defenses import (
    AlwaysPredictDefense,
    DelaySideEffectsDefense,
    full_stack,
)
from repro.harness import render_defense_matrix, render_defense_sweep, window_sweep


def main() -> None:
    # A coarse sweep for interactivity; the full resolution runs in
    # benchmarks/bench_defense_windows.py with the paper's n=100.
    for variant, windows in (
        (TrainTestAttack(), (1, 3, 5)),
        (TestHitAttack(), (1, 5, 9, 12)),
    ):
        rows, secure_at = window_sweep(
            variant, windows, n_runs=60, seeds=(1, 2, 3)
        )
        print(render_defense_sweep(variant.name, rows, secure_at))
        print()

    # --- Defense coverage matrix. -------------------------------------
    def pvalue(variant, channel, defense):
        return AttackRunner(
            variant,
            AttackConfig(n_runs=60, channel=channel, predictor="lvp",
                         defense=defense, seed=4),
        ).run_experiment().pvalue

    cases = [
        (TrainTestAttack(), ChannelType.PERSISTENT,
         DelaySideEffectsDefense(), "D"),
        (TrainTestAttack(), ChannelType.TIMING_WINDOW,
         DelaySideEffectsDefense(), "D (insufficient)"),
        (FillUpAttack(), ChannelType.PERSISTENT,
         DelaySideEffectsDefense(), "D"),
        (SpillOverAttack(), ChannelType.TIMING_WINDOW,
         AlwaysPredictDefense(mode="fixed"), "A[fixed]"),
        (SpillOverAttack(), ChannelType.TIMING_WINDOW,
         AlwaysPredictDefense(mode="history"), "A[history] (leaky)"),
        (TestHitAttack(), ChannelType.TIMING_WINDOW,
         full_stack(window_size=12, a_mode="fixed"), "A+D+R[12]"),
        (TrainTestAttack(), ChannelType.TIMING_WINDOW,
         full_stack(window_size=12, a_mode="fixed"), "A+D+R[12]"),
    ]
    rows = [
        {"attack": variant.name, "channel": channel.value,
         "defense": label, "pvalue": pvalue(variant, channel, defense)}
        for variant, channel, defense, label in cases
    ]
    print(render_defense_matrix(rows))


if __name__ == "__main__":
    main()
