#!/usr/bin/env python3
"""RSA exponent extraction through the value predictor (Figures 6/7).

The victim runs libgcrypt-style modular exponentiation whose multiply
is *unconditional* (hardened against FLUSH+RELOAD), but whose pointer
swap still executes only for exponent bits of 1.  The attacker mounts
one Train + Test instance per square-and-multiply iteration and
recovers the private exponent bit by bit; repeated runs plus majority
voting clean up residual noise.

Run:  python examples/rsa_key_extraction.py
"""

from repro.crypto import (
    Mpi,
    RsaAttackConfig,
    RsaVpAttack,
    brute_force_budget,
    majority_vote,
    powm,
    reconstruct_exponent,
    uncertain_positions,
)
from repro.harness.experiment import RSA_DRAM
from repro.harness.figures import render_iteration_scatter
from repro.memory import MemoryConfig

SECRET_EXPONENT = 0b1011011100101101010011101101011000110101110010110101


def main() -> None:
    exponent = Mpi.from_int(SECRET_EXPONENT)

    # The victim's arithmetic is real: verify the bignum result first.
    base = Mpi.from_int(0x1234_5678_9ABC)
    modulus = Mpi.from_int(0xFFFF_FFFB_FFFF_FFEF)
    result, trace = powm(base, exponent, modulus)
    assert result.to_int() == pow(
        base.to_int(), SECRET_EXPONENT, modulus.to_int()
    )
    print(f"victim powm verified: {len(trace)} square-and-multiply "
          f"iterations, result {result.to_int():#x}")

    # --- One leak pass per run; majority vote across runs. -----------
    runs = []
    for run_index in range(5):
        config = RsaAttackConfig(
            seed=100 + run_index,
            memory_config=MemoryConfig(dram=RSA_DRAM),
        )
        outcome = RsaVpAttack(config).run(exponent)
        runs.append(outcome)
        print(f"run {run_index}: per-bit success "
              f"{outcome.success_rate * 100:5.1f}%  "
              f"rate {outcome.transmission_rate_kbps:.2f} Kbps")

    print()
    print(render_iteration_scatter(
        "Figure 7: receiver observations, run 0",
        runs[0].observations, runs[0].true_bits,
    ))

    estimates = majority_vote([run.decoded_bits for run in runs])
    recovered = reconstruct_exponent(estimates)
    uncertain = uncertain_positions(estimates, threshold=0.8)
    print()
    print(f"majority-vote exponent : {recovered:#x}")
    print(f"true exponent          : {SECRET_EXPONENT:#x}")
    print(f"exact match            : {recovered == SECRET_EXPONENT}")
    print(f"low-confidence bits    : {uncertain} "
          f"(brute-force budget 2^{len(uncertain)} = "
          f"{brute_force_budget(estimates, threshold=0.8)})")


if __name__ == "__main__":
    main()
