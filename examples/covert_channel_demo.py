#!/usr/bin/env python3
"""Covert channel: send a byte string through the value predictor.

Uses the Fill Up pattern as a sender-to-receiver covert channel: the
sender trains the Value Prediction System with one data value per
symbol; the receiver's collided trigger plus the persistent
(FLUSH+RELOAD) channel recovers it.  This demonstrates the paper's
observation that Fill Up "can also be extracted from transient
execution using a persistent ... channel since the predictor is
trained on the secret".

Run:  python examples/covert_channel_demo.py
"""

from repro.core.channels import cached_lines, probe_latencies_from_rdtsc
from repro.memory import MemoryConfig, MemorySystem
from repro.pipeline import Core, CoreConfig
from repro.vp import LastValuePredictor
from repro.workloads import gadgets
from repro.workloads.gadgets import Layout

MESSAGE = b"VPS!"
HIT_THRESHOLD = 60.0  # cycles; between L1 hit (~3) and DRAM (~200+)


def send_symbol(core: Core, layout: Layout, symbol: int,
                confidence: int) -> None:
    """Sender: train the predictor entry with the symbol value.

    ``confidence + 1`` accesses: the entry still holds the previous
    symbol (or the receiver's trigger data), so the first access only
    resets the confidence counter.
    """
    core.memory.write_value(layout.sender_pid, layout.secret_addr, symbol)
    core.run(gadgets.train_program(
        "cc-send", layout.sender_pid, layout.sender_base_pc,
        layout.collide_pc, layout.secret_addr, confidence + 1,
    ))


def receive_symbol(core: Core, layout: Layout) -> int:
    """Receiver: transiently encode the prediction, then reload."""
    core.memory.write_value(
        layout.receiver_pid, layout.receiver_known_addr, 0x1FF
    )
    core.run(gadgets.encode_trigger_program(
        "cc-recv", layout.receiver_pid, layout.receiver_base_pc,
        layout.collide_pc, layout.receiver_known_addr, layout,
        flush_lines=list(range(256)),
    ))
    probe = core.run(gadgets.probe_program(
        "cc-probe", layout.receiver_pid, layout.probe_base_pc, layout,
        list(range(256)),
    ))
    latencies = probe_latencies_from_rdtsc(probe.rdtsc_values, 256)
    hot = cached_lines(latencies, HIT_THRESHOLD)
    # The receiver's own replayed value (0x1FF maps outside 0..255 after
    # masking? it maps to line 511 -> not probed) leaves the symbol as
    # the hot line.
    return hot[0] if hot else -1


def main() -> None:
    layout = Layout()
    memory = MemorySystem(MemoryConfig(seed=42))
    memory.add_shared_region(
        layout.probe_base, layout.probe_lines * layout.probe_stride
    )
    core = Core(
        memory, LastValuePredictor(confidence_threshold=4), CoreConfig()
    )

    received = bytearray()
    for symbol in MESSAGE:
        send_symbol(core, layout, symbol, confidence=4)
        value = receive_symbol(core, layout)
        received.append(value if 0 <= value < 256 else 0)
        if 0 <= value < 256:
            print(f"sent {symbol:#04x} ({chr(symbol)!r})  ->  "
                  f"received {value:#04x} ({chr(value)!r})")
        else:
            print(f"sent {symbol:#04x} ({chr(symbol)!r})  ->  lost")

    print()
    print(f"message sent    : {MESSAGE!r}")
    print(f"message received: {bytes(received)!r}")
    print(f"intact          : {bytes(received) == MESSAGE}")
    total_cycles = core.cycle
    bits = 8 * len(MESSAGE)
    print(f"raw channel rate: {bits} bits in {total_cycles} simulated "
          f"cycles ({2e9 * bits / total_cycles / 1000:.1f} Kbps at 2 GHz, "
          "before victim-synchronisation overhead)")


if __name__ == "__main__":
    main()
