#!/usr/bin/env python3
"""Quickstart: run one Train + Test attack end to end.

This walks through the paper's Figure 3 proof-of-concept on the
simulated out-of-order core:

1. build a machine (memory hierarchy + LVP value predictor + core);
2. let the receiver train the Value Prediction System at a chosen
   PC index;
3. run the sender's secret-conditional code;
4. time the receiver's trigger access and decode the secret.

Run:  python examples/quickstart.py
"""

from repro.core import AttackConfig, AttackRunner, ChannelType
from repro.core.variants import TrainTestAttack
from repro.core.channels import ThresholdDecoder


def main() -> None:
    variant = TrainTestAttack()

    # --- One experiment, paper-style: 100 runs per hypothesis, then a
    # Student's t-test on the two timing distributions. ---------------
    config = AttackConfig(
        n_runs=100,
        channel=ChannelType.TIMING_WINDOW,
        predictor="lvp",       # the baseline (non-secure) predictor
        confidence=4,          # the paper's `confidence` parameter
        seed=0,
    )
    result = AttackRunner(variant, config).run_experiment()

    print("Train + Test attack (Figure 3), timing-window channel")
    print(f"  mapped   (secret=1) mean: "
          f"{result.comparison.mapped.mean:7.1f} cycles")
    print(f"  unmapped (secret=0) mean: "
          f"{result.comparison.unmapped.mean:7.1f} cycles")
    print(f"  Student's t-test pvalue : {result.pvalue:.4f} "
          f"({'attack EFFECTIVE' if result.attack_succeeds else 'no leak'})")
    print(f"  transmission rate       : "
          f"{result.transmission_rate_kbps:.2f} Kbps")

    # --- Decode single secrets like the attacker would. --------------
    decoder = ThresholdDecoder.calibrate(
        fast_samples=result.comparison.unmapped.samples,
        slow_samples=result.comparison.mapped.samples,
        slow_means_one=True,   # misprediction (slow) means secret = 1
    )
    runner = AttackRunner(variant, config)
    correct = 0
    trials = 20
    for index in range(trials):
        secret = index % 2
        trial = runner.run_trial(mapped=bool(secret), trial_index=1000 + index)
        if decoder.decode(trial.measurement) == secret:
            correct += 1
    print(f"  single-shot decoding    : {correct}/{trials} secrets correct "
          f"(threshold {decoder.threshold:.0f} cycles)")

    # --- The control: without a value predictor nothing leaks. -------
    control = AttackRunner(
        variant,
        AttackConfig(n_runs=100, channel=ChannelType.TIMING_WINDOW,
                     predictor="none", seed=0),
    ).run_experiment()
    print(f"  control without VP      : pvalue={control.pvalue:.4f} "
          f"({'LEAKS?!' if control.attack_succeeds else 'no leak, as expected'})")


if __name__ == "__main__":
    main()
