; Timing-window trigger gadget: measure how fast one load retires.
;
; The RDTSC pair brackets a single tagged trigger load.  When a
; trainer (train.asm) has pushed the predictor entry for this address
; past the confidence threshold, the load's value is predicted and the
; dependent add issues early: the window closes measurably sooner.

        rdtsc r8                ; open the timing window
.tag trigger-load
        load  r1, [0x200]
        add   r2, r1, 1         ; dependent use: stalls iff no prediction
        rdtsc r9                ; close the timing window
        halt
