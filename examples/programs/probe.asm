; Probe gadget: time candidate lines of the probe array.
;
; After encode_trigger.asm ran, exactly one candidate line is warm;
; its timed load completes faster than the others.  Each RDTSC pair
; brackets one candidate so the windows can be compared.

        rdtsc r8
        load  r1, [0x800]       ; candidate value 0
        rdtsc r9

        rdtsc r10
        load  r2, [0x840]       ; candidate value 1
        rdtsc r11
        halt
