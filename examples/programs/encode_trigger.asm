; Persistent-channel trigger gadget: encode the loaded value into the
; cache state.
;
; The secret-marked load's value selects which line of a probe array
; gets touched (value * 64 spreads candidates across lines).  A later
; probe pass (probe.asm) recovers the value from which line is warm.
; The secret -> address flow is exactly what the static taint pass
; reports for this program.

.tag trigger-load
.secret
        load  r1, [0x300]       ; secret value
        mul   r2, r1, 64        ; one cache line per candidate value
        load  r3, [r2+0x800]    ; encode: secret selects the probed line
        halt
