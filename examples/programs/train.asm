; Trainer gadget: establish a confident LVP entry at a pinned PC.
;
; The loop re-executes the same load PC, so a PC-indexed value
; predictor sees the same (pc, value) pair six times and crosses the
; confidence threshold.  Pairs with timed_trigger.asm, which probes
; the entry this program trains.

.pin 0x40
.loop 6
.tag train-load
        load  r1, [0x200]       ; same PC and value every iteration
.endloop
        halt
