#!/usr/bin/env python3
"""Explore the 576-combination attack model (Section V, Tables I/II).

Enumerates every (train, modify, trigger) action combination, applies
the model's reduction rules, prints the surviving Table II attacks,
and then *validates* the model empirically: each category is executed
on the cycle-level simulator and must actually leak.

Run:  python examples/attack_explorer.py
"""

import collections

from repro.core import (
    ALL_VARIANTS,
    AttackConfig,
    AttackRunner,
    ChannelType,
    Verdict,
    classify_all,
    effective_attacks,
)
from repro.core.taxonomy import classes_of_category, render_figure2
from repro.harness import render_table1, render_table2


def main() -> None:
    print(render_table1())
    print()

    # --- Why most combinations are not attacks. ----------------------
    reasons = collections.Counter()
    for classification in classify_all():
        if classification.verdict is Verdict.EFFECTIVE:
            reasons["effective (Table II)"] += 1
        else:
            rule = classification.reason.split(":")[0]
            reasons[f"{classification.verdict.value} ({rule})"] += 1
    print("Rule outcomes over all 576 combinations:")
    for reason, count in reasons.most_common():
        print(f"  {count:4d}  {reason}")
    print()

    print(render_table2())
    print()

    # --- Figure 2: which timing-window class each category realises. -
    print(render_figure2())
    print()
    for classification in effective_attacks():
        classes = classes_of_category(classification.category)
        pairs = ", ".join(
            f"{a.value}/{b.value}" for a, b in classification.outcome_pairs
        )
        print(f"  {classification.combo.symbol:26s} {pairs}")
    print()

    # --- Empirical validation: every category leaks on the simulator.
    print("Empirical check (timing-window, LVP, 60 runs per hypothesis):")
    for variant in ALL_VARIANTS:
        result = AttackRunner(
            variant,
            AttackConfig(n_runs=60, channel=ChannelType.TIMING_WINDOW,
                         predictor="lvp", seed=2),
        ).run_experiment()
        verdict = "LEAKS" if result.attack_succeeds else "no leak ?!"
        print(f"  {variant.name:14s} {variant.pattern:24s} "
              f"pvalue={result.pvalue:.4f} -> {verdict}")


if __name__ == "__main__":
    main()
