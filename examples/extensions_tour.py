#!/usr/bin/env python3
"""Tour of the reproduction's extensions beyond the paper's evaluation.

Four stops:

1. the **volatile channel** (port contention via SMT co-execution);
2. a **flushless attack** on a non-load-based VPS (paper footnote 2);
3. the **attack synthesizer**: compile any Table I combination into
   concrete programs and compare simulation against the abstract model;
4. the attacks on a **BeBoP-style block-based predictor** (the paper's
   reference [9]).

Run:  python examples/extensions_tour.py
"""

from repro.core import (
    AttackConfig,
    AttackRunner,
    ChannelType,
    Combo,
    synthesize_trial,
)
from repro.core.actions import NONE_ACTION, R_KD, S_SD1
from repro.core.variants import FillUpAttack, TestHitAttack
from repro.vp import BebopPredictor


def volatile_channel() -> None:
    print("=== 1. Volatile (port-contention) channel ===")
    for predictor in ("none", "lvp"):
        config = AttackConfig(
            n_runs=40, channel=ChannelType.VOLATILE,
            predictor=predictor, seed=2,
        )
        result = AttackRunner(FillUpAttack(), config).run_experiment()
        print(f"  Fill Up, vp={predictor}: "
              f"observer window {result.comparison.mapped.mean:.0f} vs "
              f"{result.comparison.unmapped.mean:.0f} cycles, "
              f"p={result.pvalue:.4f}")
    print("  -> a misprediction replays the victim's transient multiply "
          "burst; the co-runner feels one extra burst of pressure\n")


def flushless_attack() -> None:
    print("=== 2. Flushless attack (non-load-based VPS, footnote 2) ===")
    from repro.isa.builder import ProgramBuilder
    from repro.memory.hierarchy import MemorySystem, MemoryConfig
    from repro.pipeline import Core, CoreConfig
    from repro.vp import LastValuePredictor

    memory = MemorySystem(MemoryConfig(seed=1))
    core = Core(
        memory, LastValuePredictor(confidence_threshold=4),
        CoreConfig(predict_on_hit=True),
    )
    addr, load_pc = 0x30000, 0x1000
    memory.write_value(1, addr, 42)
    train = ProgramBuilder("train", pid=1)
    train.pin_pc(load_pc)
    with train.loop(5):
        train.load(3, imm=addr)
        train.fence()
    core.run(train.build())
    memory.write_value(1, addr, 99)  # secret changed; line still cached

    trigger = ProgramBuilder("trigger", pid=1)
    trigger.rdtsc(9).fence()
    trigger.pin_pc(load_pc)
    trigger.load(3, imm=addr, tag="t")
    trigger.dependent_chain(40, dst=30, src=3)
    trigger.fence().rdtsc(10)
    program = trigger.build()
    result = core.run(program)
    event = result.loads_tagged(program, "t")[0]
    print(f"  trigger was an L1 HIT ({event.l1_hit}), predicted "
          f"({event.predicted}), mispredicted "
          f"({event.prediction_correct is False}): squash visible in a "
          f"{result.rdtsc_delta()}-cycle hit-speed window — no flush "
          "instruction anywhere\n")


def synthesizer() -> None:
    print("=== 3. Attack synthesizer: any model combo, executed ===")
    combo = Combo(S_SD1, NONE_ACTION, R_KD)  # Test + Hit's Table II row
    for mapped in (True, False):
        outcome = synthesize_trial(combo, mapped=mapped)
        print(f"  {combo.symbol} mapped={mapped}: simulated="
              f"{outcome.observed.value:13s} model predicted="
              f"{outcome.predicted.value:13s} sound={outcome.sound}")
    print("  -> bench_model_soundness runs all 576 combos this way "
          "(4352/4352 cases agree)\n")


def bebop() -> None:
    print("=== 4. Attacks on a BeBoP-style block-based predictor ===")
    config = AttackConfig(
        n_runs=60,
        predictor=lambda c: BebopPredictor(confidence_threshold=c),
        seed=0,
    )
    result = AttackRunner(TestHitAttack(), config).run_experiment()
    print(f"  Test + Hit on BeBoP: p={result.pvalue:.4f} "
          f"({'leaks' if result.attack_succeeds else 'safe?!'}) — "
          "block-based storage with partial tags changes nothing\n")


if __name__ == "__main__":
    volatile_channel()
    flushless_attack()
    synthesizer()
    bebop()
