"""Human-readable and JSON renderings of static-analysis results.

Three consumers:

* ``repro analyze <program.asm>`` — :func:`program_payload` /
  :func:`render_program_analysis` describe one program's taint flows,
  timing windows and lint findings;
* ``repro lint`` — :func:`render_lint_reports` /
  :func:`render_code_issues` summarise a corpus lint run;
* ``repro report <dir>`` — :func:`agreement_rows` /
  :func:`render_agreement` read the artifact JSON written by
  :func:`repro.harness.persistence.run_all` and show, per sweep cell,
  whether the *static* Table II classification agreed with the
  *dynamic* p-value verdict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.codelint import CodeLintIssue
from repro.analysis.preflight import PreflightReport, lint_program
from repro.analysis.taint import analyze_taint
from repro.analysis.vpstate import VpsAbstractMachine
from repro.isa.program import Program


# ----------------------------------------------------------------------
# Single-program analysis (repro analyze)
# ----------------------------------------------------------------------

def program_payload(
    program: Program,
    *,
    confidence_threshold: int = 4,
) -> Dict[str, object]:
    """Full JSON-serialisable analysis of one program."""
    taint = analyze_taint(program)
    machine = VpsAbstractMachine(confidence_threshold=confidence_threshold)
    events = machine.execute(program, {})
    lint = lint_program(program, confidence_threshold=confidence_threshold)
    return {
        "program": program.name,
        "instructions": len(program.instructions),
        "dynamic_length": len(program.dynamic_trace()),
        "loads": [
            {
                "pc": load.pc,
                "addr": load.addr,
                "tag": load.tag,
                "secret": load.secret,
                "tainted": load.tainted,
            }
            for load in taint.loads
        ],
        "address_flows": [
            {"pc": flow.pc, "op": flow.op}
            for flow in taint.address_flows
        ],
        "windows": [
            {
                "start_pc": window.start_pc,
                "stop_pc": window.stop_pc,
                "instructions": window.instructions,
                "has_load": window.has_load,
                "tainted": window.tainted,
            }
            for window in taint.windows
        ],
        "vps_events": [
            {
                "pc": event.pc,
                "index": event.index,
                "outcome": event.outcome.value,
                "tag": event.tag,
            }
            for event in events
        ],
        "issues": lint.to_payload()["issues"],
        "ok": lint.ok,
    }


def render_program_analysis(payload: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`program_payload`."""
    lines = [
        f"program {payload['program']}: "
        f"{payload['instructions']} instructions "
        f"({payload['dynamic_length']} dynamic)",
    ]
    loads = payload["loads"]
    lines.append(f"  loads: {len(loads)}")
    for load in loads:
        marks = []
        if load["secret"]:
            marks.append("secret")
        if load["tainted"]:
            marks.append("tainted")
        if load["tag"]:
            marks.append(load["tag"])
        addr = "?" if load["addr"] is None else f"{load['addr']:#x}"
        suffix = f"  [{', '.join(marks)}]" if marks else ""
        lines.append(f"    pc {load['pc']:#x} <- mem[{addr}]{suffix}")
    flows = payload["address_flows"]
    if flows:
        lines.append(f"  secret->address flows: {len(flows)}")
        for flow in flows:
            lines.append(f"    {flow['op']} at pc {flow['pc']:#x}")
    windows = payload["windows"]
    if windows:
        lines.append(f"  timing windows: {len(windows)}")
        for window in windows:
            traits = []
            if window["has_load"]:
                traits.append("load")
            if window["tainted"]:
                traits.append("tainted")
            lines.append(
                f"    {window['start_pc']:#x}..{window['stop_pc']:#x}: "
                f"{window['instructions']} instructions"
                + (f" ({', '.join(traits)})" if traits else "")
            )
    if payload["ok"]:
        lines.append("  lint: clean")
    else:
        lines.append("  lint:")
        for issue in payload["issues"]:
            lines.append(f"    [{issue['rule']}] {issue['message']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Corpus lint rendering (repro lint)
# ----------------------------------------------------------------------

def render_lint_reports(reports: Sequence[PreflightReport]) -> str:
    """One line per subject, grep-style lines per issue."""
    lines = []
    failed = 0
    for report in reports:
        if report.ok:
            lines.append(f"ok       {report.subject}")
        else:
            failed += 1
            lines.append(f"FAILED   {report.subject}")
            for issue in report.issues:
                lines.append(f"         {issue.describe()}")
    lines.append(
        f"{len(reports) - failed}/{len(reports)} subjects clean"
    )
    return "\n".join(lines)


def render_code_issues(issues: Sequence[CodeLintIssue]) -> str:
    """Grep-style rendering of determinism-lint findings."""
    if not issues:
        return "code lint: clean"
    lines = [issue.describe() for issue in issues]
    lines.append(f"code lint: {len(issues)} issue(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Static/dynamic agreement (repro report)
# ----------------------------------------------------------------------

def _record_rows(cell_name: str, record) -> List[Dict[str, object]]:
    if not isinstance(record, dict) or "pvalue" not in record:
        return []
    static = record.get("static")
    static_effective: Optional[bool] = None
    symbol = ""
    if isinstance(static, dict):
        classification = static.get("classification") or {}
        static_effective = classification.get("effective")
        symbol = classification.get("symbol", "")
    predictor = record.get("predictor", "")
    dynamic = bool(record.get("effective"))
    if static_effective is None:
        agree: Optional[bool] = None
    else:
        # Static analysis predicts the *attack* works; a control cell
        # (no predictor) is expected to show nothing either way.
        predicted = static_effective and predictor not in ("none", "")
        agree = predicted == dynamic
    sequential = record.get("sequential")
    effective_n = record.get("mapped_samples")
    planned_n: Optional[int] = None
    stopped_early: Optional[bool] = None
    if isinstance(sequential, dict):
        # Group-sequential cells report how much of the trial budget
        # the verdict actually consumed.
        effective_n = sequential.get("effective_n", effective_n)
        planned_n = sequential.get("planned_n")
        stopped_early = sequential.get("stopped_early")
    return [{
        "cell": cell_name,
        "variant": record.get("variant", ""),
        "channel": record.get("channel", ""),
        "predictor": predictor,
        "symbol": symbol,
        "static_effective": static_effective,
        "dynamic_effective": dynamic,
        "pvalue": record.get("pvalue"),
        "effective_n": effective_n,
        "planned_n": planned_n,
        "stopped_early": stopped_early,
        "agree": agree,
    }]


def agreement_rows(artifacts: Dict[str, Dict]) -> List[Dict[str, object]]:
    """Flatten artifact JSON payloads into agreement rows.

    Accepts the parsed contents of ``fig5.json`` / ``fig8.json``
    (``"panels"``) and ``table3.json`` (``"cells"``), keyed by
    artifact name.
    """
    rows: List[Dict[str, object]] = []
    for artifact, payload in sorted(artifacts.items()):
        if not isinstance(payload, dict):
            continue
        for title, record in payload.get("panels", {}).items():
            rows.extend(_record_rows(f"{artifact}/{title}", record))
        for category, cells in payload.get("cells", {}).items():
            if not isinstance(cells, dict):
                continue
            for key, record in cells.items():
                rows.extend(_record_rows(
                    f"{artifact}/{category}/{key}", record
                ))
    return rows


def render_agreement(rows: Sequence[Dict[str, object]]) -> str:
    """Tabular static-vs-dynamic agreement report."""
    if not rows:
        return "no supervised cells with results found"
    lines = [
        f"{'cell':58s} {'static':8s} {'dynamic':8s} {'p-value':>9s} "
        f"{'eff-n':>9s} agree",
    ]
    agreed = disagreed = unknown = 0
    for row in rows:
        static = row["static_effective"]
        static_text = "?" if static is None else (
            "attack" if static else "no-attk"
        )
        dynamic_text = "attack" if row["dynamic_effective"] else "no-attk"
        pvalue = row["pvalue"]
        pvalue_text = "" if pvalue is None else f"{pvalue:9.4f}"
        # Effective-N: "24/100" when a sequential cell stopped early,
        # a plain count otherwise ("" for legacy records without one).
        effective_n = row.get("effective_n")
        planned_n = row.get("planned_n")
        if effective_n is None:
            n_text = ""
        elif planned_n is not None:
            n_text = f"{effective_n}/{planned_n}"
        else:
            n_text = str(effective_n)
        agree = row["agree"]
        if agree is None:
            agree_text = "n/a"
            unknown += 1
        elif agree:
            agree_text = "yes"
            agreed += 1
        else:
            agree_text = "NO"
            disagreed += 1
        lines.append(
            f"{row['cell']:58.58s} {static_text:8s} {dynamic_text:8s} "
            f"{pvalue_text:>9s} {n_text:>9s} {agree_text}"
        )
    lines.append(
        f"{agreed} agree, {disagreed} disagree, {unknown} without "
        "static record"
    )
    return "\n".join(lines)
