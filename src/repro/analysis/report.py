"""Human-readable and JSON renderings of static-analysis results.

Three consumers:

* ``repro analyze <program.asm>`` — :func:`program_payload` /
  :func:`render_program_analysis` describe one program's taint flows,
  timing windows and lint findings;
* ``repro lint`` — :func:`render_lint_reports` /
  :func:`render_code_issues` summarise a corpus lint run;
* ``repro report <dir>`` — :func:`agreement_rows` /
  :func:`render_agreement` read the artifact JSON written by
  :func:`repro.harness.persistence.run_all` and show, per sweep cell,
  whether the *static* Table II classification agreed with the
  *dynamic* p-value verdict.

``repro report --hunt`` additionally reads the exhaustive hunt's
artifacts (``hunt_certificate.json`` / ``hunt_dynamic.json``, written
by :mod:`repro.harness.hunt`) and renders the certificate's claims
next to the per-survivor static/dynamic agreement
(:func:`hunt_agreement_rows` / :func:`render_hunt`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.codelint import CodeLintIssue
from repro.analysis.preflight import PreflightReport, lint_program
from repro.analysis.taint import analyze_taint
from repro.analysis.vpstate import VpsAbstractMachine
from repro.isa.program import Program


# ----------------------------------------------------------------------
# Single-program analysis (repro analyze)
# ----------------------------------------------------------------------

def program_payload(
    program: Program,
    *,
    confidence_threshold: int = 4,
) -> Dict[str, object]:
    """Full JSON-serialisable analysis of one program."""
    taint = analyze_taint(program)
    machine = VpsAbstractMachine(confidence_threshold=confidence_threshold)
    events = machine.execute(program, {})
    lint = lint_program(program, confidence_threshold=confidence_threshold)
    return {
        "program": program.name,
        "instructions": len(program.instructions),
        "dynamic_length": len(program.dynamic_trace()),
        "loads": [
            {
                "pc": load.pc,
                "addr": load.addr,
                "tag": load.tag,
                "secret": load.secret,
                "tainted": load.tainted,
            }
            for load in taint.loads
        ],
        "address_flows": [
            {"pc": flow.pc, "op": flow.op}
            for flow in taint.address_flows
        ],
        "windows": [
            {
                "start_pc": window.start_pc,
                "stop_pc": window.stop_pc,
                "instructions": window.instructions,
                "has_load": window.has_load,
                "tainted": window.tainted,
            }
            for window in taint.windows
        ],
        "vps_events": [
            {
                "pc": event.pc,
                "index": event.index,
                "outcome": event.outcome.value,
                "tag": event.tag,
            }
            for event in events
        ],
        "issues": lint.to_payload()["issues"],
        "ok": lint.ok,
    }


def render_program_analysis(payload: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`program_payload`."""
    lines = [
        f"program {payload['program']}: "
        f"{payload['instructions']} instructions "
        f"({payload['dynamic_length']} dynamic)",
    ]
    loads = payload["loads"]
    lines.append(f"  loads: {len(loads)}")
    for load in loads:
        marks = []
        if load["secret"]:
            marks.append("secret")
        if load["tainted"]:
            marks.append("tainted")
        if load["tag"]:
            marks.append(load["tag"])
        addr = "?" if load["addr"] is None else f"{load['addr']:#x}"
        suffix = f"  [{', '.join(marks)}]" if marks else ""
        lines.append(f"    pc {load['pc']:#x} <- mem[{addr}]{suffix}")
    flows = payload["address_flows"]
    if flows:
        lines.append(f"  secret->address flows: {len(flows)}")
        for flow in flows:
            lines.append(f"    {flow['op']} at pc {flow['pc']:#x}")
    windows = payload["windows"]
    if windows:
        lines.append(f"  timing windows: {len(windows)}")
        for window in windows:
            traits = []
            if window["has_load"]:
                traits.append("load")
            if window["tainted"]:
                traits.append("tainted")
            lines.append(
                f"    {window['start_pc']:#x}..{window['stop_pc']:#x}: "
                f"{window['instructions']} instructions"
                + (f" ({', '.join(traits)})" if traits else "")
            )
    if payload["ok"]:
        lines.append("  lint: clean")
    else:
        lines.append("  lint:")
        for issue in payload["issues"]:
            lines.append(f"    [{issue['rule']}] {issue['message']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Corpus lint rendering (repro lint)
# ----------------------------------------------------------------------

def render_lint_reports(reports: Sequence[PreflightReport]) -> str:
    """One line per subject, grep-style lines per issue."""
    lines = []
    failed = 0
    for report in reports:
        if report.ok:
            lines.append(f"ok       {report.subject}")
        else:
            failed += 1
            lines.append(f"FAILED   {report.subject}")
            for issue in report.issues:
                lines.append(f"         {issue.describe()}")
    lines.append(
        f"{len(reports) - failed}/{len(reports)} subjects clean"
    )
    return "\n".join(lines)


def render_code_issues(issues: Sequence[CodeLintIssue]) -> str:
    """Grep-style rendering of determinism-lint findings."""
    if not issues:
        return "code lint: clean"
    lines = [issue.describe() for issue in issues]
    lines.append(f"code lint: {len(issues)} issue(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Static/dynamic agreement (repro report)
# ----------------------------------------------------------------------

def _record_rows(cell_name: str, record: object) -> List[Dict[str, object]]:
    if not isinstance(record, dict) or "pvalue" not in record:
        return []
    static = record.get("static")
    static_effective: Optional[bool] = None
    symbol = ""
    if isinstance(static, dict):
        classification = static.get("classification") or {}
        static_effective = classification.get("effective")
        symbol = classification.get("symbol", "")
    predictor = record.get("predictor", "")
    dynamic = bool(record.get("effective"))
    if static_effective is None:
        agree: Optional[bool] = None
    else:
        # Static analysis predicts the *attack* works; a control cell
        # (no predictor) is expected to show nothing either way.
        predicted = static_effective and predictor not in ("none", "")
        agree = predicted == dynamic
    sequential = record.get("sequential")
    effective_n = record.get("mapped_samples")
    planned_n: Optional[int] = None
    stopped_early: Optional[bool] = None
    if isinstance(sequential, dict):
        # Group-sequential cells report how much of the trial budget
        # the verdict actually consumed.
        effective_n = sequential.get("effective_n", effective_n)
        planned_n = sequential.get("planned_n")
        stopped_early = sequential.get("stopped_early")
    return [{
        "cell": cell_name,
        "variant": record.get("variant", ""),
        "channel": record.get("channel", ""),
        "predictor": predictor,
        "symbol": symbol,
        "static_effective": static_effective,
        "dynamic_effective": dynamic,
        "pvalue": record.get("pvalue"),
        "effective_n": effective_n,
        "planned_n": planned_n,
        "stopped_early": stopped_early,
        "agree": agree,
    }]


def agreement_rows(artifacts: Dict[str, Dict]) -> List[Dict[str, object]]:
    """Flatten artifact JSON payloads into agreement rows.

    Accepts the parsed contents of ``fig5.json`` / ``fig8.json``
    (``"panels"``) and ``table3.json`` (``"cells"``), keyed by
    artifact name.
    """
    rows: List[Dict[str, object]] = []
    for artifact, payload in sorted(artifacts.items()):
        if not isinstance(payload, dict):
            continue
        for title, record in payload.get("panels", {}).items():
            rows.extend(_record_rows(f"{artifact}/{title}", record))
        for category, cells in payload.get("cells", {}).items():
            if not isinstance(cells, dict):
                continue
            for key, record in cells.items():
                rows.extend(_record_rows(
                    f"{artifact}/{category}/{key}", record
                ))
    return rows


def render_agreement(rows: Sequence[Dict[str, object]]) -> str:
    """Tabular static-vs-dynamic agreement report."""
    if not rows:
        return "no supervised cells with results found"
    lines = [
        f"{'cell':58s} {'static':8s} {'dynamic':8s} {'p-value':>9s} "
        f"{'eff-n':>9s} agree",
    ]
    agreed = disagreed = unknown = 0
    for row in rows:
        static = row["static_effective"]
        static_text = "?" if static is None else (
            "attack" if static else "no-attk"
        )
        dynamic_text = "attack" if row["dynamic_effective"] else "no-attk"
        pvalue = row["pvalue"]
        pvalue_text = "" if pvalue is None else f"{pvalue:9.4f}"
        # Effective-N: "24/100" when a sequential cell stopped early,
        # a plain count otherwise ("" for legacy records without one).
        effective_n = row.get("effective_n")
        planned_n = row.get("planned_n")
        if effective_n is None:
            n_text = ""
        elif planned_n is not None:
            n_text = f"{effective_n}/{planned_n}"
        else:
            n_text = str(effective_n)
        agree = row["agree"]
        if agree is None:
            agree_text = "n/a"
            unknown += 1
        elif agree:
            agree_text = "yes"
            agreed += 1
        else:
            agree_text = "NO"
            disagreed += 1
        lines.append(
            f"{row['cell']:58.58s} {static_text:8s} {dynamic_text:8s} "
            f"{pvalue_text:>9s} {n_text:>9s} {agree_text}"
        )
    lines.append(
        f"{agreed} agree, {disagreed} disagree, {unknown} without "
        "static record"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Hunt certificate + dynamic confirmation (repro report --hunt)
# ----------------------------------------------------------------------

def hunt_agreement_rows(
    certificate: Dict[str, object],
    dynamic: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Merge the certificate's survivors with the dynamic measurements.

    One row per equivalence class (and per dynamic target outside the
    classes, should a completeness counterexample ever be measured);
    ``dynamic_effective``/``pvalue`` are ``None`` when the class has
    not been measured yet (static-only runs).
    """
    dynamic_by_symbol: Dict[str, Dict[str, object]] = {}
    if isinstance(dynamic, dict):
        for row in dynamic.get("rows", []):
            dynamic_by_symbol[str(row.get("symbol"))] = row

    rows: List[Dict[str, object]] = []
    for entry in certificate.get("classes", []):
        symbol = str(entry.get("symbol"))
        measured = dynamic_by_symbol.pop(symbol, None)
        rows.append({
            "symbol": symbol,
            "category": entry.get("category"),
            "members": entry.get("members"),
            "static_effective": True,
            "dynamic_effective": (
                measured.get("dynamic_effective")
                if measured is not None else None
            ),
            "pvalue": measured.get("pvalue") if measured is not None else None,
            "effective_n": (
                measured.get("effective_n") if measured is not None else None
            ),
            "agree": measured.get("agree") if measured is not None else None,
        })
    # Dynamic targets that are not class representatives (candidate
    # new variants surfaced by a failed completeness claim).
    for symbol, measured in sorted(dynamic_by_symbol.items()):
        rows.append({
            "symbol": symbol,
            "category": measured.get("category"),
            "members": None,
            "static_effective": measured.get("static_effective"),
            "dynamic_effective": measured.get("dynamic_effective"),
            "pvalue": measured.get("pvalue"),
            "effective_n": measured.get("effective_n"),
            "agree": measured.get("agree"),
        })
    return rows


def render_hunt(
    certificate: Dict[str, object],
    dynamic: Optional[Dict[str, object]] = None,
) -> str:
    """The hunt summary: claims, verdict counts, agreement table."""
    verdicts = certificate.get("verdicts", {})
    space = certificate.get("space", {})
    lines = [
        f"Attack-space hunt over {space.get('combos', '?')} combos "
        f"({space.get('train_actions', '?')} train x "
        f"{space.get('modify_actions', '?')} modify x "
        f"{space.get('trigger_actions', '?')} trigger), "
        f"confidence {certificate.get('confidence', '?')}:",
        f"  verdicts: {verdicts.get('effective', 0)} effective, "
        f"{verdicts.get('reducible', 0)} reducible, "
        f"{verdicts.get('invalid', 0)} invalid",
        "",
        "claims:",
    ]
    claims = certificate.get("claims", {})
    for name in sorted(claims):
        claim = claims[name]
        status = "ok" if claim.get("ok") else "FAILED"
        lines.append(f"  {name:22s} {status:6s} {claim.get('statement', '')}")
        if not claim.get("ok"):
            for counterexample in claim.get("counterexamples", [])[:10]:
                lines.append(f"    !! {counterexample}")
    lines.append("")

    rows = hunt_agreement_rows(certificate, dynamic)
    lines.append(
        f"{'class':28s} {'category':14s} {'members':>7s} {'static':8s} "
        f"{'dynamic':8s} {'p-value':>9s} {'eff-n':>6s} agree"
    )
    disagreed = 0
    for row in rows:
        static_text = "attack" if row["static_effective"] else "no-attk"
        measured = row["dynamic_effective"]
        dynamic_text = (
            "" if measured is None else ("attack" if measured else "no-attk")
        )
        pvalue = row["pvalue"]
        pvalue_text = "" if pvalue is None else f"{pvalue:9.2e}"
        members = row["members"]
        members_text = "" if members is None else str(members)
        agree = row["agree"]
        agree_text = "n/a" if agree is None else ("yes" if agree else "NO")
        disagreed += 1 if agree is False else 0
        lines.append(
            f"{row['symbol']:28.28s} {str(row['category'] or ''):14s} "
            f"{members_text:>7s} {static_text:8s} {dynamic_text:8s} "
            f"{pvalue_text:>9s} {str(row['effective_n'] or ''):>6s} "
            f"{agree_text}"
        )
    extended = certificate.get("extended_persistent_candidates", [])
    lines.append("")
    lines.append(
        f"{len(extended)} combo(s) distinguish hypotheses by entry value "
        "only (persistent-channel candidates, no timing leak)"
    )
    certified = certificate.get("certified")
    lines.append(
        "CERTIFIED: Table II is complete and minimal under the model"
        if certified else
        "NOT CERTIFIED: see failed claims above"
    )
    if disagreed:
        lines.append(f"{disagreed} class(es) DISAGREE with measurement")
    return "\n".join(lines)
