"""Dataflow/taint analysis over a program's dynamic trace.

The lattice has two points, CLEAN < SECRET.  Taint sources are loads
carrying the ``secret`` annotation (see
:class:`~repro.isa.instructions.Instruction`) plus any load PCs the
caller designates (e.g. loads whose value the VPS abstract
interpreter proves will be *predicted* from a secret-trained entry).
Taint propagates forward through registers (ALU results) and through
memory (stores of tainted data taint the stored-to address).

Two flow kinds are reported:

* **address flows** — a memory operation whose effective address
  depends on a tainted register: the Spectre-style
  ``probe[secret * stride]`` encode of the persistent channel;
* **window flows** — a tainted value consumed inside an
  RDTSC-bracketed timing window: the timing-window channel.

Because programs are straight-line with static loop counts, the
analysis walks the exact dynamic trace — there is no widening and no
approximation beyond unknown memory contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


@dataclass(frozen=True)
class LoadInfo:
    """One dynamic load instance."""

    trace_index: int
    pc: int
    addr: Optional[int]
    tag: Optional[str]
    secret: bool
    tainted: bool


@dataclass(frozen=True)
class AddressFlow:
    """A memory access whose address is secret-derived."""

    trace_index: int
    pc: int
    op: str

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"secret->address flow: {self.op} at pc {self.pc:#x}"


@dataclass(frozen=True)
class TimedWindow:
    """One RDTSC-bracketed region of the dynamic trace.

    ``start``/``stop`` are dynamic trace indices of the bracketing
    RDTSC instructions (exclusive of both).
    """

    start_pc: int
    stop_pc: int
    start: int
    stop: int
    instructions: int
    has_load: bool
    tainted: bool


@dataclass
class TaintReport:
    """Result of :func:`analyze_taint` for one program."""

    program_name: str
    loads: List[LoadInfo] = field(default_factory=list)
    address_flows: List[AddressFlow] = field(default_factory=list)
    windows: List[TimedWindow] = field(default_factory=list)
    unpaired_rdtsc: bool = False

    @property
    def secret_loads(self) -> List[LoadInfo]:
        """Loads carrying the ``secret`` annotation."""
        return [load for load in self.loads if load.secret]

    @property
    def tainted_windows(self) -> List[TimedWindow]:
        """Timing windows that consume a secret-derived value."""
        return [window for window in self.windows if window.tainted]

    @property
    def has_secret_flow(self) -> bool:
        """True when any secret reaches an address or a timed window."""
        return bool(self.address_flows) or bool(self.tainted_windows)

    def loads_tagged(self, tag: str) -> List[LoadInfo]:
        """Dynamic load instances whose instruction carries ``tag``."""
        return [load for load in self.loads if load.tag == tag]


def analyze_taint(
    program: Program,
    *,
    extra_source_pcs: FrozenSet[int] = frozenset(),
    use_secret_annotations: bool = True,
) -> TaintReport:
    """Forward taint analysis over ``program``'s dynamic trace.

    Args:
        program: The program to analyse.
        extra_source_pcs: Load PCs treated as taint sources in
            addition to (or, with ``use_secret_annotations=False``,
            instead of) the ``secret`` instruction annotations.
        use_secret_annotations: Honour ``Instruction.secret`` flags.
    """
    report = TaintReport(program_name=program.name)
    reg_value: Dict[int, Optional[int]] = {}
    reg_taint: Dict[int, bool] = {}
    mem_taint: Set[int] = set()
    rdtsc_marks: List[Tuple[int, int]] = []  # (trace index, pc)
    taint_trace: List[bool] = []  # per dynamic instruction: consumed taint?

    trace = program.dynamic_trace()
    for index, placed in enumerate(trace):
        ins = placed.instruction
        sources = ins.source_registers()
        consumed_taint = any(reg_taint.get(reg, False) for reg in sources)
        base_taint = (
            ins.src1 is not None and reg_taint.get(ins.src1, False)
            if ins.is_memory else False
        )
        addr: Optional[int] = None
        if ins.is_memory:
            base_value = 0 if ins.src1 is None else reg_value.get(ins.src1)
            addr = None if base_value is None else base_value + ins.imm
            if base_taint:
                report.address_flows.append(
                    AddressFlow(trace_index=index, pc=placed.pc,
                                op=ins.op.value)
                )

        if ins.op is Opcode.LI:
            reg_value[ins.dst] = ins.imm
            reg_taint[ins.dst] = False
        elif ins.op is Opcode.ALU:
            values = [reg_value.get(ins.src1)]
            if ins.src2 is not None:
                values.append(reg_value.get(ins.src2))
            reg_value[ins.dst] = None if None in values else _alu_const(
                ins, values
            )
            reg_taint[ins.dst] = consumed_taint
        elif ins.op is Opcode.LOAD:
            is_source = (
                (use_secret_annotations and ins.secret)
                or placed.pc in extra_source_pcs
            )
            tainted = (
                is_source
                or base_taint
                or (addr is not None and addr in mem_taint)
            )
            reg_value[ins.dst] = None
            reg_taint[ins.dst] = tainted
            consumed_taint = consumed_taint or tainted
            report.loads.append(LoadInfo(
                trace_index=index, pc=placed.pc, addr=addr,
                tag=ins.tag, secret=bool(ins.secret), tainted=tainted,
            ))
        elif ins.op is Opcode.STORE:
            if reg_taint.get(ins.src2, False) and addr is not None:
                mem_taint.add(addr)
        elif ins.op is Opcode.RDTSC:
            reg_value[ins.dst] = None
            reg_taint[ins.dst] = False
            rdtsc_marks.append((index, placed.pc))
        taint_trace.append(consumed_taint)

    report.unpaired_rdtsc = len(rdtsc_marks) % 2 == 1
    for first, second in zip(rdtsc_marks[0::2], rdtsc_marks[1::2]):
        inner = range(first[0] + 1, second[0])
        report.windows.append(TimedWindow(
            start_pc=first[1],
            stop_pc=second[1],
            start=first[0],
            stop=second[0],
            instructions=len(inner),
            has_load=any(
                trace[i].instruction.op is Opcode.LOAD for i in inner
            ),
            tainted=any(taint_trace[i] for i in inner),
        ))
    return report


def _alu_const(
    ins: Instruction, values: List[Optional[int]]
) -> Optional[int]:
    """Constant-fold an ALU op when every operand is known."""
    from repro.isa.instructions import AluOp

    first = values[0]
    second = values[1] if len(values) > 1 else ins.imm
    if first is None or second is None:
        return None
    ops = {
        AluOp.ADD: lambda a, b: a + b,
        AluOp.SUB: lambda a, b: a - b,
        AluOp.XOR: lambda a, b: a ^ b,
        AluOp.AND: lambda a, b: a & b,
        AluOp.OR: lambda a, b: a | b,
        AluOp.MUL: lambda a, b: a * b,
        AluOp.SHL: lambda a, b: a << b,
        AluOp.SHR: lambda a, b: a >> b,
    }
    return ops[ins.alu_op](first, second)


def dst_ever_read(program: Program, load_trace_index: int) -> bool:
    """Is the value produced by the load at ``load_trace_index`` read?

    Walks the dynamic trace forward from the load; returns True as
    soon as any instruction sources the destination register, False if
    the register is overwritten first (or never read).
    """
    trace = program.dynamic_trace()
    dst = trace[load_trace_index].instruction.dst
    for placed in trace[load_trace_index + 1:]:
        ins = placed.instruction
        if dst in ins.source_registers():
            return True
        if ins.destination_register() == dst:
            return False
    return False
