"""Static analysis of attack programs (no simulation required).

Because :mod:`repro.isa` programs are straight-line with all loop trip
counts and secrets resolved at build time, every leakage-relevant
property is statically decidable.  This package exploits that with
four passes:

* :mod:`repro.analysis.taint` — forward dataflow over registers and
  memory, tracking values derived from secret-marked loads and
  flagging secret-to-address flows (persistent-channel encodes) and
  secret-to-timing-window flows;
* :mod:`repro.analysis.vpstate` — abstract interpretation of the
  Value Prediction System under a configurable index function,
  computing which indices a program sequence trains, evicts or
  collides on;
* :mod:`repro.analysis.classify` — maps a captured (trainer,
  modifier, trigger) program triple onto the Table I action
  vocabulary and checks it against the Table II reduction rules of
  :mod:`repro.core.model`;
* :mod:`repro.analysis.preflight` — the harness-facing lint: every
  sweep cell is validated before any simulation budget is spent,
  raising :class:`~repro.errors.AnalysisError` on contradictions;
* :mod:`repro.analysis.enumerate` — the exhaustive hunt: synthesizes
  and abstractly interprets a concrete program for **all 576** Table I
  (train, modify, trigger) combinations and certifies Table II's
  twelve variants as the complete, minimal set of effective classes,
  emitting a machine-checked ``hunt_certificate.json``.

:mod:`repro.analysis.codelint` is separate: an AST-based determinism
lint over the reproduction's own Python sources.
"""

from repro.analysis.capture import (
    CapturedTrial,
    CaptureCore,
    CaptureMemory,
    capture_variant,
)
from repro.analysis.classify import (
    StaticClassification,
    classify_cell,
    derive_combo,
)
from repro.analysis.enumerate import (
    ComboVerdict,
    build_certificate,
    canonical_combo,
    dynamic_targets,
    follow_reduction,
    hunt_certificate,
    hunt_records,
    parse_combo,
    static_trial,
)
from repro.analysis.preflight import (
    PreflightReport,
    gadget_corpus,
    lint_paths,
    lint_program,
    preflight_cell,
)
from repro.analysis.taint import TaintReport, analyze_taint
from repro.analysis.vpstate import (
    PredictionOutcome,
    TriggerEvent,
    VpsAbstractMachine,
)

__all__ = [
    "CaptureCore",
    "CaptureMemory",
    "CapturedTrial",
    "ComboVerdict",
    "PredictionOutcome",
    "PreflightReport",
    "StaticClassification",
    "TaintReport",
    "TriggerEvent",
    "VpsAbstractMachine",
    "analyze_taint",
    "build_certificate",
    "canonical_combo",
    "capture_variant",
    "classify_cell",
    "derive_combo",
    "dynamic_targets",
    "follow_reduction",
    "gadget_corpus",
    "hunt_certificate",
    "hunt_records",
    "lint_paths",
    "lint_program",
    "parse_combo",
    "preflight_cell",
    "static_trial",
]
