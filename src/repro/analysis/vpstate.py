"""Abstract interpretation of the Value Prediction System.

Given a sequence of captured programs and the architectural values the
variant wrote before running them, this pass replays every dynamic
load against an abstract VPS — the same (value, confidence) lattice as
:class:`repro.core.model._AbstractVps`, but indexed through a real
:class:`~repro.vp.indexing.IndexFunction` so PC-pinning contracts are
checked against the *actual* program counters the builder produced,
not against the symbolic collision assumptions of the model.

The machine answers the questions preflight needs:

* which indices did the trainer(s) bring to threshold confidence?
* does the trigger load hit a trained entry (CORRECT / MISPREDICT) or
  fall through (NO_PREDICTION)?
* is the entry a trigger hits *secret-trained* — i.e. does a
  prediction launder a secret value into the trigger's process?

Loads whose effective address the constant propagator cannot resolve
get a fresh symbolic value (distinct from every concrete value and
every other symbol), which is sound for equality-based LVP updates.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.vp.base import AccessKey
from repro.vp.indexing import IndexFunction, PC_INDEX

if TYPE_CHECKING:
    from repro.analysis.capture import CapturedTrial


class PredictionOutcome(enum.Enum):
    """What the VPS does for one dynamic load, evaluated pre-update.

    Mirrors :class:`repro.core.model.TriggerOutcome` with one extra
    point: ``UNKNOWN`` for loads whose index cannot be resolved
    statically (data-address indexing with an unknown base register).
    """

    CORRECT = "correct"
    MISPREDICT = "mispredict"
    NO_PREDICTION = "no-prediction"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class TriggerEvent:
    """One dynamic load as the abstract VPS saw it."""

    program: str
    pc: int
    addr: Optional[int]
    index: Optional[int]
    outcome: PredictionOutcome
    #: Was the entry this load consulted trained on secret data?
    entry_secret: bool
    tag: Optional[str] = None
    #: The value the predictor would supply (None unless confident).
    entry_value: object = None


@dataclass
class _AbstractEntry:
    """One VPS table entry: LVP (value, confidence) plus provenance."""

    value: object
    confidence: int
    secret: bool = False
    writer: str = ""


class VpsAbstractMachine:
    """Replays captured programs against an abstract, indexed VPS.

    Args:
        index_function: How loads map to table entries (default: the
            paper's PC-based indexing).
        confidence_threshold: Accesses-with-same-value needed before
            the predictor supplies a value.
    """

    def __init__(
        self,
        index_function: IndexFunction = PC_INDEX,
        confidence_threshold: int = 4,
    ) -> None:
        self.index_function = index_function
        self.threshold = confidence_threshold
        self.entries: Dict[int, _AbstractEntry] = {}
        self.events: List[TriggerEvent] = []
        self._symbols = itertools.count()

    # ------------------------------------------------------------------
    def execute(
        self,
        program: Program,
        values: Mapping[Tuple[int, int], int],
        *,
        secret_program: bool = False,
    ) -> List[TriggerEvent]:
        """Run ``program`` through the abstract VPS.

        Args:
            program: The program to replay.
            values: Architectural memory as ``(pid, addr) -> value``;
                unwritten addresses read a fresh symbolic value.
            secret_program: Mark every entry this program trains as
                secret regardless of per-load annotations (used when
                the program's *presence* is the secret).

        Returns:
            The :class:`TriggerEvent` list for this program's loads
            (also appended to :attr:`events`).
        """
        reg_value: Dict[int, Optional[int]] = {}
        emitted: List[TriggerEvent] = []
        for placed in program.dynamic_trace():
            ins = placed.instruction
            if ins.op is Opcode.LI:
                reg_value[ins.dst] = ins.imm
            elif ins.op is Opcode.ALU:
                reg_value[ins.dst] = self._alu(ins, reg_value)
            elif ins.op is Opcode.RDTSC:
                reg_value[ins.dst] = None
            elif ins.op is Opcode.LOAD:
                event = self._load(program, placed.pc, ins, reg_value, values,
                                   secret_program)
                emitted.append(event)
        self.events.extend(emitted)
        return emitted

    def run_trial(self, trial: "CapturedTrial") -> List[TriggerEvent]:
        """Replay every program of a :class:`CapturedTrial`, in order."""
        emitted: List[TriggerEvent] = []
        for captured in trial.programs:
            emitted.extend(self.execute(captured.program, trial.values))
        return emitted

    # ------------------------------------------------------------------
    @property
    def confident_indices(self) -> List[int]:
        """Indices currently at or above the prediction threshold."""
        return [
            index for index, entry in self.entries.items()
            if entry.confidence >= self.threshold
        ]

    def events_for(self, program_name: str) -> List[TriggerEvent]:
        """Events emitted by the named program."""
        return [e for e in self.events if e.program == program_name]

    def predicted_pcs(self, program_name: str) -> frozenset:
        """PCs in ``program_name`` whose loads received a prediction."""
        return frozenset(
            e.pc for e in self.events_for(program_name)
            if e.outcome in (PredictionOutcome.CORRECT,
                             PredictionOutcome.MISPREDICT)
        )

    def secret_predicted_pcs(self, program_name: str) -> frozenset:
        """PCs whose loads were predicted from secret-trained entries."""
        return frozenset(
            e.pc for e in self.events_for(program_name)
            if e.entry_secret
            and e.outcome in (PredictionOutcome.CORRECT,
                              PredictionOutcome.MISPREDICT)
        )

    # ------------------------------------------------------------------
    def _load(
        self,
        program: Program,
        pc: int,
        ins: Instruction,
        reg_value: Dict[int, Optional[int]],
        values: Mapping[Tuple[int, int], int],
        secret_program: bool,
    ) -> TriggerEvent:
        base = 0 if ins.src1 is None else reg_value.get(ins.src1)
        addr = None if base is None else base + ins.imm
        if addr is None and self.index_function.source.value != "pc":
            # Data-address indexing with an unresolvable address: we
            # cannot tell which entry this load touches.  Sound choice:
            # no update, UNKNOWN outcome.
            reg_value[ins.dst] = None
            return self._emit(program, pc, None, None,
                              PredictionOutcome.UNKNOWN, False, ins.tag, None)
        key = AccessKey(pc=pc, addr=addr if addr is not None else 0,
                        pid=program.pid)
        index = self.index_function.index_of(key)
        if addr is None:
            value: object = ("sym", next(self._symbols))
        else:
            value = values.get((program.pid, addr),
                               ("uninit", program.pid, addr))
        entry = self.entries.get(index)
        if entry is None or entry.confidence < self.threshold:
            outcome = PredictionOutcome.NO_PREDICTION
            entry_value: object = None
        elif entry.value == value:
            outcome = PredictionOutcome.CORRECT
            entry_value = entry.value
        else:
            outcome = PredictionOutcome.MISPREDICT
            entry_value = entry.value
        entry_secret = bool(entry and entry.confidence >= self.threshold
                            and entry.secret)
        # LVP update (same lattice as repro.core.model._AbstractVps).
        load_secret = bool(ins.secret) or secret_program
        if entry is None:
            self.entries[index] = _AbstractEntry(
                value=value, confidence=1, secret=load_secret,
                writer=program.name,
            )
        elif entry.value == value:
            entry.confidence += 1
            entry.secret = entry.secret or load_secret
            entry.writer = program.name
        else:
            entry.value = value
            entry.confidence = 0
            entry.secret = load_secret
            entry.writer = program.name
        reg_value[ins.dst] = value if isinstance(value, int) else None
        return self._emit(program, pc, addr, index, outcome, entry_secret,
                          ins.tag, entry_value)

    def _emit(
        self,
        program: Program,
        pc: int,
        addr: Optional[int],
        index: Optional[int],
        outcome: PredictionOutcome,
        entry_secret: bool,
        tag: Optional[str],
        entry_value: object,
    ) -> TriggerEvent:
        return TriggerEvent(
            program=program.name, pc=pc, addr=addr, index=index,
            outcome=outcome, entry_secret=entry_secret, tag=tag,
            entry_value=entry_value,
        )

    @staticmethod
    def _alu(
        ins: Instruction, reg_value: Dict[int, Optional[int]]
    ) -> Optional[int]:
        from repro.analysis.taint import _alu_const

        operands: List[Optional[int]] = [reg_value.get(ins.src1)]
        if ins.src2 is not None:
            operands.append(reg_value.get(ins.src2))
        return _alu_const(ins, operands)
