"""AST-based determinism lint over the reproduction's own sources.

Every result in this repository must be a pure function of
``(config, seed)`` — that is what makes the checkpoint-resume layer's
byte-identical-artifact guarantee possible and the paper's numbers
reproducible.  Three classes of code break that property silently:

``unseeded-random``
    Use of the process-global RNG (``random.random()``,
    ``random.Random()`` with no seed, ``numpy.random.*``).  All
    randomness must flow through a ``random.Random(seed)`` instance
    derived from the experiment seed.
``wall-clock``
    Reading host time (``time.time``, ``perf_counter``,
    ``datetime.now``...).  Simulated time is the only clock
    measurements may consult; host time differs across runs.
``raw-artifact-write``
    Opening files for writing (or ``Path.write_text``) outside the
    atomic-write helpers of :mod:`repro.harness.checkpoint`.  A crash
    mid-write leaves a torn artifact that resume would then trust.

A finding can be suppressed in place with a pragma comment naming the
rule on the offending line::

    t0 = time.perf_counter()  # lint: allow(wall-clock)

:func:`lint_code` scans ``src/`` and ``benchmarks/`` by default and is
wired into CI through ``repro lint --code``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

#: Module-level functions of ``random`` that use the global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate",
})

#: Attribute calls that read the host clock.
_WALL_CLOCK = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Files allowed to perform raw writes: the atomic-write helpers
#: themselves live here.
_WRITE_ALLOWLIST = ("harness/checkpoint.py",)

#: Write modes of ``open`` that create or mutate files.
_WRITE_MODES = frozenset("wax")


@dataclass(frozen=True)
class CodeLintIssue:
    """One determinism-lint finding."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        """Human-readable one-liner (grep-style location prefix)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _call_target(node: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """(base name, attribute) of an attribute call, e.g. ``time.time``.

    For chained attributes (``numpy.random.rand``) the base is the
    *innermost* attribute's printable chain tail (``random``) with the
    full chain checked separately; plain name calls return
    ``(None, name)``.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            return value.attr, func.attr
        # Method call on an arbitrary expression (a call result, a
        # subscript...): no base name, but the attribute still matters
        # for attribute-only rules like write_text/write_bytes.
        return None, func.attr
    return None, None


def _is_numpy_random(node: ast.Call) -> bool:
    """True for ``numpy.random.<anything>(...)`` / ``np.random...``."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in ("numpy", "np")
    )


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The write mode string of an ``open`` call, or ``None``."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return None
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if any(ch in _WRITE_MODES for ch in mode_node.value):
            return mode_node.value
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, check_writes: bool) -> None:
        self.path = path
        self.check_writes = check_writes
        self.issues: List[CodeLintIssue] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.issues.append(
            CodeLintIssue(rule, self.path, node.lineno, message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        base, attr = _call_target(node)
        if base == "random" and attr in _GLOBAL_RANDOM_FUNCS:
            self._flag(
                node, "unseeded-random",
                f"random.{attr}() uses the process-global RNG; draw from "
                "a random.Random(seed) instance derived from the "
                "experiment seed",
            )
        elif base == "random" and attr == "Random" and not node.args:
            self._flag(
                node, "unseeded-random",
                "random.Random() with no seed is time-seeded; pass an "
                "explicit seed",
            )
        elif _is_numpy_random(node):
            self._flag(
                node, "unseeded-random",
                "numpy.random.* uses numpy's global RNG; use a seeded "
                "generator",
            )
        elif (base, attr) in _WALL_CLOCK:
            self._flag(
                node, "wall-clock",
                f"{base}.{attr}() reads the host clock; measurements "
                "must use simulated time only",
            )
        elif self.check_writes:
            if base is None and attr == "open":
                mode = _open_write_mode(node)
                if mode is not None:
                    self._flag(
                        node, "raw-artifact-write",
                        f"open(..., {mode!r}) bypasses the atomic-write "
                        "helpers; use repro.harness.checkpoint."
                        "atomic_write_text/atomic_write_json",
                    )
            elif attr in ("write_text", "write_bytes"):
                self._flag(
                    node, "raw-artifact-write",
                    f".{attr}() bypasses the atomic-write helpers; use "
                    "repro.harness.checkpoint.atomic_write_text/"
                    "atomic_write_json",
                )
        self.generic_visit(node)


def _suppressed(source_lines: Sequence[str], issue: CodeLintIssue) -> bool:
    """Does the flagged line carry a ``# lint: allow(<rule>)`` pragma?"""
    if not 1 <= issue.line <= len(source_lines):
        return False
    line = source_lines[issue.line - 1]
    return f"lint: allow({issue.rule})" in line


def lint_file(path: Union[str, Path]) -> List[CodeLintIssue]:
    """Lint one Python source file."""
    path = Path(path)
    rel = path.as_posix()
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [CodeLintIssue(
            "syntax-error", rel, exc.lineno or 0, str(exc.msg)
        )]
    check_writes = not rel.endswith(_WRITE_ALLOWLIST)
    visitor = _Visitor(rel, check_writes)
    visitor.visit(tree)
    lines = source.splitlines()
    return [i for i in visitor.issues if not _suppressed(lines, i)]


def lint_code(
    roots: Iterable[Union[str, Path]] = ("src", "benchmarks"),
) -> List[CodeLintIssue]:
    """Lint every ``.py`` file under the given roots."""
    issues: List[CodeLintIssue] = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            issues.extend(lint_file(root))
            continue
        for path in sorted(root.rglob("*.py")):
            issues.extend(lint_file(path))
    return issues
