"""Preflight validation: catch doomed cells before budget is spent.

Two consumers:

* the harness — :func:`preflight_cell` statically validates one
  (variant, channel) sweep cell before :mod:`repro.harness.runner`
  spends simulation budget on it, combining the Table II
  classification of :mod:`repro.analysis.classify` with the abstract
  VPS replay of :mod:`repro.analysis.vpstate`;
* the CLI — :func:`lint_program` / :func:`lint_paths` lint standalone
  attack programs (``repro analyze``, ``repro lint``) against the
  rules below.

Lint rules
----------

``unclosed-window``
    An odd number of RDTSC instructions: some timing window is never
    closed and its measurement is lost.
``empty-window``
    An RDTSC pair with nothing between it: the window measures only
    measurement overhead.
``untrained-trigger``
    A program that both trains and triggers, but whose trigger load
    can never see a prediction (its index never reaches confidence).
``secret-unencoded``
    A secret-marked load with no observable sink: its value feeds no
    address, no timed window, no later instruction, and no VPS entry
    that is ever consulted again — the secret is read but never leaks.
``indistinguishable``
    (cells only) The abstract VPS produces the same trigger outcome —
    and, for the persistent channel, the same predicted value — under
    both secret hypotheses: the receiver cannot tell them apart.
``no-encode``
    (cells only) A persistent-channel cell whose trigger value never
    reaches a memory address: nothing persists to probe.
``window-without-load``
    (cells only) A timing-window cell whose trigger windows contain
    no load: the window cannot react to the prediction.
``syntax-error``
    (files only) The ``.asm`` source does not assemble.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.classify import StaticClassification, classify_cell
from repro.analysis.taint import TaintReport, analyze_taint, dst_ever_read
from repro.analysis.vpstate import (
    PredictionOutcome,
    TriggerEvent,
    VpsAbstractMachine,
)
from repro.core.channels import ChannelType
from repro.errors import AnalysisError, IsaError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads import gadgets
from repro.workloads.gadgets import Layout

if TYPE_CHECKING:
    from repro.core.variants import AttackVariant


@dataclass(frozen=True)
class LintIssue:
    """One finding of the preflight/lint pass."""

    rule: str
    message: str
    subject: str
    pc: Optional[int] = None

    def describe(self) -> str:
        """Human-readable one-liner."""
        where = f" (pc {self.pc:#x})" if self.pc is not None else ""
        return f"[{self.rule}] {self.subject}{where}: {self.message}"


@dataclass
class PreflightReport:
    """Outcome of linting one program, file or sweep cell."""

    subject: str
    issues: List[LintIssue] = field(default_factory=list)
    classification: Optional[StaticClassification] = None

    @property
    def ok(self) -> bool:
        """True when no issue was found."""
        return not self.issues

    def raise_if_failed(self) -> None:
        """Raise :class:`AnalysisError` when any issue was found."""
        if self.issues:
            details = "; ".join(issue.describe() for issue in self.issues)
            raise AnalysisError(
                f"preflight failed for {self.subject}: {details}"
            )

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form."""
        payload: Dict[str, object] = {
            "subject": self.subject,
            "ok": self.ok,
            "issues": [
                {
                    "rule": issue.rule,
                    "message": issue.message,
                    "subject": issue.subject,
                    "pc": issue.pc,
                }
                for issue in self.issues
            ],
        }
        if self.classification is not None:
            payload["classification"] = self.classification.to_payload()
        return payload


# ----------------------------------------------------------------------
# Single-program lint
# ----------------------------------------------------------------------

def lint_program(
    program: Program,
    *,
    confidence_threshold: int = 4,
    cell_events: Optional[Sequence] = None,
) -> PreflightReport:
    """Lint one program against the standalone rules.

    Args:
        program: The program to lint.
        confidence_threshold: VPS threshold for the untrained-trigger
            and secret-sink rules.
        cell_events: When linting a program as part of a cell, the
            abstract-VPS events of the *whole* cell, so cross-program
            VPS interactions count as sinks.  ``None`` replays the
            program alone.
    """
    report = PreflightReport(subject=program.name)
    taint = analyze_taint(program)

    if taint.unpaired_rdtsc:
        report.issues.append(LintIssue(
            "unclosed-window",
            "odd number of RDTSC instructions: a timing window is "
            "opened but never closed",
            program.name,
        ))
    for window in taint.windows:
        if window.instructions == 0:
            report.issues.append(LintIssue(
                "empty-window",
                "RDTSC pair with no instructions between: the window "
                "measures nothing",
                program.name,
                pc=window.start_pc,
            ))

    machine = VpsAbstractMachine(confidence_threshold=confidence_threshold)
    own_events = machine.execute(program, {})
    if cell_events is None:
        cell_events = own_events

    if program.pcs_tagged("train-load") and program.pcs_tagged("trigger-load"):
        trigger_events = [e for e in own_events if e.tag == "trigger-load"]
        if trigger_events and all(
            e.outcome is PredictionOutcome.NO_PREDICTION
            for e in trigger_events
        ):
            report.issues.append(LintIssue(
                "untrained-trigger",
                "the trigger load's index never reaches confidence: no "
                "prediction can ever fire",
                program.name,
                pc=trigger_events[0].pc,
            ))

    report.issues.extend(
        _secret_sink_issues(program, taint, own_events, cell_events)
    )
    return report


def _secret_sink_issues(
    program: Program,
    taint: TaintReport,
    own_events: Sequence[TriggerEvent],
    cell_events: Sequence[TriggerEvent],
) -> List[LintIssue]:
    """The ``secret-unencoded`` rule: every secret load needs a sink."""
    if not taint.secret_loads:
        return []
    if taint.address_flows or taint.tainted_windows:
        return []
    index_counts = Counter(
        e.index for e in cell_events if e.index is not None
    )
    issues = []
    flagged = set()
    for load in taint.secret_loads:
        if load.pc in flagged:
            continue
        if dst_ever_read(program, load.trace_index):
            continue
        event = next((e for e in own_events if e.pc == load.pc), None)
        if (event is not None and event.index is not None
                and index_counts[event.index] >= 2):
            # The entry this load trains is consulted again: the VPS
            # state change is the sink.
            continue
        flagged.add(load.pc)
        issues.append(LintIssue(
            "secret-unencoded",
            "secret load reaches no sink: its value feeds no address, "
            "no timed window, no later instruction and no re-consulted "
            "predictor entry",
            program.name,
            pc=load.pc,
        ))
    return issues


# ----------------------------------------------------------------------
# File corpus lint
# ----------------------------------------------------------------------

def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    confidence_threshold: int = 4,
) -> List[PreflightReport]:
    """Assemble and lint ``.asm`` files (directories are walked).

    Files that do not assemble produce a single ``syntax-error``
    issue instead of raising.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.asm")))
        else:
            files.append(path)
    reports = []
    for path in files:
        try:
            program = assemble(path.read_text(), name=path.stem)
        except IsaError as exc:
            reports.append(PreflightReport(
                subject=str(path),
                issues=[LintIssue("syntax-error", str(exc), str(path))],
            ))
            continue
        report = lint_program(
            program, confidence_threshold=confidence_threshold
        )
        report.subject = str(path)
        reports.append(report)
    return reports


def gadget_corpus(layout: Optional[Layout] = None) -> List[Tuple[str, Program]]:
    """Representative programs from every gadget builder.

    ``repro lint`` runs these through :func:`lint_program` so a
    regression in :mod:`repro.workloads.gadgets` (a dropped RDTSC, a
    secret load losing its consumer) fails the lint gate.
    """
    layout = layout or Layout()
    pid_s, pid_r = layout.sender_pid, layout.receiver_pid
    return [
        ("train", gadgets.train_program(
            "train", pid_s, layout.sender_base_pc, layout.collide_pc,
            layout.sender_known_addr, 4,
        )),
        ("train-secret", gadgets.train_program(
            "train-secret", pid_s, layout.sender_base_pc, layout.collide_pc,
            layout.secret_addr, 4, secret=True,
        )),
        ("timed-trigger", gadgets.timed_trigger_program(
            "timed-trigger", pid_r, layout.receiver_base_pc,
            layout.collide_pc, layout.receiver_known_addr, 32,
        )),
        ("plain-trigger", gadgets.plain_trigger_program(
            "plain-trigger", pid_s, layout.sender_base_pc,
            layout.collide_pc, layout.secret_addr, 32, secret=True,
        )),
        ("encode-trigger", gadgets.encode_trigger_program(
            "encode-trigger", pid_r, layout.receiver_base_pc,
            layout.collide_pc, layout.receiver_known_addr, layout,
            flush_lines=[0, 1],
        )),
        ("probe", gadgets.probe_program(
            "probe", pid_r, layout.probe_base_pc, layout, [0, 1],
        )),
        ("idle", gadgets.idle_program(
            "idle", pid_s, layout.sender_base_pc,
        )),
        ("mul-burst-trigger", gadgets.mul_burst_trigger_program(
            "mul-burst-trigger", pid_s, layout.sender_base_pc,
            layout.collide_pc, layout.secret_addr, secret=True,
        )),
        ("mul-probe", gadgets.mul_probe_program(
            "mul-probe", pid_r, layout.probe_base_pc,
        )),
    ]


# ----------------------------------------------------------------------
# Cell preflight
# ----------------------------------------------------------------------

def preflight_cell(
    variant: "AttackVariant",
    channel: ChannelType,
    *,
    predictor: str = "lvp",
    confidence: int = 4,
    chain_length: Optional[int] = None,
    modify_mode: str = "retrain",
    layout: Optional[Layout] = None,
) -> PreflightReport:
    """Statically validate one sweep cell before running it.

    Classifies the cell (:func:`classify_cell` — raising
    :class:`AnalysisError` if the captures don't fit the three-step
    schema), lints every captured program, and replays both hypothesis
    captures through the abstract VPS to check the trigger actually
    distinguishes them.  VPS-behaviour checks are skipped for control
    cells (``predictor="none"``), where no prediction is the point.

    Call :meth:`PreflightReport.raise_if_failed` to enforce.
    """
    layout = layout or Layout()
    static = classify_cell(
        variant, channel, confidence=confidence,
        chain_length=chain_length, modify_mode=modify_mode, layout=layout,
    )
    subject = f"{variant.name} / {channel.value} / {predictor}"
    report = PreflightReport(subject=subject, classification=static)

    machines = {}
    for label, trial in (("mapped", static.mapped),
                         ("unmapped", static.unmapped)):
        machine = VpsAbstractMachine(confidence_threshold=confidence)
        machine.run_trial(trial)
        machines[label] = machine

    # Per-program lint, each distinct program once (cell-wide events
    # so cross-program VPS training counts as a sink).
    cell_events = machines["mapped"].events + machines["unmapped"].events
    seen = set()
    for trial in (static.mapped, static.unmapped):
        for captured in trial.programs:
            if captured.program.name in seen:
                continue
            seen.add(captured.program.name)
            program_report = lint_program(
                captured.program, confidence_threshold=confidence,
                cell_events=cell_events,
            )
            report.issues.extend(program_report.issues)

    trigger_step = next(s for s in static.steps if s.role == "trigger")
    trigger_name = trigger_step.program
    if predictor != "none":
        report.issues.extend(_distinguishability_issues(
            static, machines, trigger_name, channel, subject,
        ))
    report.issues.extend(
        _channel_issues(static, trigger_name, channel, subject)
    )
    return report


def _trigger_events(
    machine: VpsAbstractMachine, trigger_name: Optional[str]
) -> List[TriggerEvent]:
    return [
        e for e in machine.events
        if e.program == trigger_name and e.tag == "trigger-load"
    ]


def _distinguishability_issues(
    static: StaticClassification,
    machines: Dict[str, VpsAbstractMachine],
    trigger_name: Optional[str],
    channel: ChannelType,
    subject: str,
) -> List[LintIssue]:
    """Do the two hypotheses produce different trigger behaviour?"""
    events_m = _trigger_events(machines["mapped"], trigger_name)
    events_u = _trigger_events(machines["unmapped"], trigger_name)
    if not events_m or not events_u:
        # A presence-secret trigger runs under only one hypothesis;
        # its absence is the signal, nothing more to check.
        return []
    first_m, first_u = events_m[0], events_u[0]
    if (first_m.outcome is PredictionOutcome.UNKNOWN
            or first_u.outcome is PredictionOutcome.UNKNOWN):
        return []
    if first_m.outcome is not first_u.outcome:
        return []
    if (channel is ChannelType.PERSISTENT
            and first_m.entry_value is not None
            and first_m.entry_value != first_u.entry_value):
        # Same outcome, but the *predicted value* differs — that value
        # is what the persistent encode writes into the probe array.
        return []
    if first_m.outcome is PredictionOutcome.NO_PREDICTION:
        message = (
            "the trigger load's index never reaches confidence under "
            "either hypothesis: the cell can never observe a prediction"
        )
        rule = "untrained-trigger"
    else:
        message = (
            f"the abstract VPS yields outcome "
            f"{first_m.outcome.value!r} under both secret hypotheses: "
            "the receiver cannot distinguish them"
        )
        rule = "indistinguishable"
    return [LintIssue(rule, message, subject, pc=first_m.pc)]


def _channel_issues(
    static: StaticClassification,
    trigger_name: Optional[str],
    channel: ChannelType,
    subject: str,
) -> List[LintIssue]:
    """Structural channel contracts on the trigger program."""
    trial = static.mapped if static.mapped.program_named(trigger_name) \
        else static.unmapped
    program = trial.program_named(trigger_name)
    if program is None:
        return []
    issues = []
    if channel is ChannelType.PERSISTENT:
        trigger_pcs = frozenset(program.pcs_tagged("trigger-load"))
        flows = analyze_taint(
            program, extra_source_pcs=trigger_pcs,
            use_secret_annotations=False,
        ).address_flows
        if not flows:
            issues.append(LintIssue(
                "no-encode",
                "persistent-channel cell whose trigger value never "
                "reaches a memory address: nothing persists to probe",
                subject,
            ))
    elif channel is ChannelType.TIMING_WINDOW:
        taint = analyze_taint(program)
        if taint.windows and not any(w.has_load for w in taint.windows):
            issues.append(LintIssue(
                "window-without-load",
                "timing-window cell whose RDTSC windows contain no "
                "load: the window cannot react to the prediction",
                subject,
            ))
    return issues
