"""Exhaustive static certification of the 576-combination attack space.

The paper reduces its 8 x 9 x 8 = 576 (train, modify, trigger)
combinations (Table I) to 12 effective attacks in 6 categories
(Table II) by hand-derived rules.  :mod:`repro.core.model` implements
a rule set reproducing that reduction; this module *checks* it
mechanically, end to end, without trusting the rules themselves:

1. **Generate** — for every combo and every access-count choice, a
   concrete mini-ISA program triple is synthesized from the action
   algebra through the same symbol grounding the dynamic synthesizer
   uses (:func:`repro.core.synthesis.ground_access`).
2. **Interpret** — each program triple is replayed, under both secret
   hypotheses, through the abstract VPS interpreter
   (:class:`repro.analysis.vpstate.VpsAbstractMachine`), yielding the
   trigger outcome pair the receiver could observe.  A combo *leaks
   statically* iff some count choice yields one of Figure 2's
   admissible pairs ({correct, mispredict} or
   {correct, no-prediction}).
3. **Derive** — the generated programs are fed back through the
   static classifier (:func:`repro.analysis.classify.derive_combo`);
   the derived combo must equal the canonical form of the generator's
   input, closing the generator/classifier loop.
4. **Partition** — every combo's reduction chain
   (:attr:`~repro.core.model.Classification.reduces_to` links) is
   followed to a terminal verdict, partitioning the 576-combo space
   into equivalence classes; the classes are diffed against
   :func:`repro.core.model.table_ii_combos`.

The result is a machine-checked certificate
(:func:`build_certificate`) stating either "Table II is complete and
minimal under our model" or naming the offending combos.  Combos that
are *value*-distinguishable only (both hypotheses produce the same
trigger outcome but a confident predictor entry holds
hypothesis-dependent values) are reported separately as
``extended_persistent_candidates``: decoding them requires an extra
receiver access that turns the combo into a Test + Hit, so they do not
contradict Table II completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.capture import CapturedProgram, CapturedTrial
from repro.analysis.classify import derive_combo
from repro.analysis.vpstate import PredictionOutcome, VpsAbstractMachine
from repro.core.actions import Action, Dimension, SecretFlavour
from repro.core.model import (
    _ADMISSIBLE_PAIRS,
    _EVAL_CONFIDENCE,
    _MODIFY_COUNTS,
    _TRAIN_COUNTS,
    AttackCategory,
    Classification,
    Combo,
    TriggerOutcome,
    Verdict,
    _count_value,
    all_combos,
    canonicalize,
    classify,
    question_of_dimension,
    table_ii_combos,
)
from repro.core.synthesis import GroundedAccess, INDEX_PCS, ground_access
from repro.errors import AnalysisError
from repro.workloads import gadgets
from repro.workloads.gadgets import Layout

#: Dependent-chain length of generated trigger programs (matches the
#: dynamic synthesizer; the abstract interpreter ignores the chain).
HUNT_CHAIN_LENGTH = 4

#: Known-access dimension by load PC, for :func:`derive_combo`: the
#: synthesis grounding places every data-dimension access behind the
#: shared entry's PC and every index access at its own PC.
PC_DIMENSION: Dict[int, Dimension] = {
    INDEX_PCS["shared-entry"]: Dimension.DATA,
    INDEX_PCS["I_K"]: Dimension.INDEX,
    INDEX_PCS["I_S'"]: Dimension.INDEX,
    INDEX_PCS["I_S''"]: Dimension.INDEX,
}

#: Rule 8 emits human-readable category fallbacks when the two-step
#: reduction is not itself admissible; the chain follower maps them to
#: the category's canonical Table II representative.
RULE8_FALLBACK_TARGETS: Dict[str, str] = {
    "(S^SD', —, R/S^KD)  [Test + Hit]": "(S^SD', —, S^KD)",
    "(R/S^KD, —, S^SD')  [Train + Hit]": "(S^KD, —, S^SD')",
}

#: Recorded dynamic Table III verdict under the paper's configuration
#: (LVP predictor, no defense): every Table II variant is effective on
#: its primary channel.  The certificate's agreement claim checks the
#: static verdicts against this record.
RECORDED_TABLE_III_EFFECTIVE = True


_FLAVOUR_ORDER = (SecretFlavour.PRIME, SecretFlavour.DOUBLE_PRIME)


def canonical_combo(combo: Combo) -> Combo:
    """Per-dimension first-appearance flavour relabelling.

    Like :func:`repro.core.model.canonicalize`, but with a separate
    flavour namespace per dimension — D'/D'' and I'/I'' are distinct
    alphabets in Table I, which matters for mixed-dimension combos
    (rule 2 rejects them, but the derivation round-trip still has to
    agree on their spelling).  Equal to ``canonicalize`` on every
    dimension-pure combo.
    """
    mapping: Dict[Tuple[Dimension, SecretFlavour], SecretFlavour] = {}
    counts: Dict[Dimension, int] = {}

    def relabel(action: Action) -> Action:
        if not action.is_secret:
            return action
        assert action.dimension is not None
        key = (action.dimension, action.flavour)
        if key not in mapping:
            seen = counts.get(action.dimension, 0)
            mapping[key] = _FLAVOUR_ORDER[seen]
            counts[action.dimension] = seen + 1
        return Action(
            actor=action.actor,
            knowledge=action.knowledge,
            dimension=action.dimension,
            flavour=mapping[key],
        )

    return Combo(
        relabel(combo.train), relabel(combo.modify), relabel(combo.trigger)
    )


def parse_combo(symbol: str) -> Combo:
    """Parse a combo symbol like ``"(S^KD, —, S^SD')"``.

    Raises:
        AnalysisError: On malformed symbols.
    """
    text = symbol.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise AnalysisError(f"cannot parse combo symbol {symbol!r}")
    parts = [part.strip() for part in text[1:-1].split(",")]
    if len(parts) != 3:
        raise AnalysisError(f"cannot parse combo symbol {symbol!r}")
    return Combo(
        Action.parse(parts[0]), Action.parse(parts[1]), Action.parse(parts[2])
    )


# ----------------------------------------------------------------------
# Program generation
# ----------------------------------------------------------------------

def static_trial(
    combo: Combo,
    *,
    train_count: str = "confidence",
    modify_count: str = "one",
    mapped: bool = True,
    confidence: int = _EVAL_CONFIDENCE,
    layout: Optional[Layout] = None,
) -> CapturedTrial:
    """Generate one hypothesis's program triple as a captured trial.

    Uses the exact grounding of the dynamic synthesizer
    (:func:`repro.core.synthesis.ground_access`), so the static
    verdicts certify the same programs the simulator would run.
    Known objects are written into both address spaces (the paper's
    shared-library assumption).
    """
    layout = layout or Layout()

    def ground(action: Action) -> "GroundedAccess":
        assert action.dimension is not None
        return ground_access(
            action, mapped, question_of_dimension(combo, action.dimension)
        )

    values: Dict[Tuple[int, int], int] = {}
    for action in combo.actions:
        grounded = ground(action)
        values[(1, grounded.addr)] = grounded.value
        values[(2, grounded.addr)] = grounded.value

    programs: List[CapturedProgram] = []
    steps = [
        (combo.train, "hunt-train", "train-load",
         _count_value(train_count, confidence)),
    ]
    if not combo.modify.is_none:
        steps.append((
            combo.modify, "hunt-modify", "modify-load",
            _count_value(modify_count, confidence),
        ))
    for action, name, tag, count in steps:
        if count < 1:
            continue
        grounded = ground(action)
        programs.append(CapturedProgram(gadgets.train_program(
            name, grounded.pid, grounded.base_pc, grounded.pc,
            grounded.addr, count, tag=tag, secret=action.is_secret,
        )))
    grounded = ground(combo.trigger)
    programs.append(CapturedProgram(gadgets.plain_trigger_program(
        "hunt-trigger", grounded.pid, grounded.base_pc, grounded.pc,
        grounded.addr, HUNT_CHAIN_LENGTH, secret=combo.trigger.is_secret,
    )))
    return CapturedTrial(
        programs=programs, values=values, layout=layout, mapped=mapped,
    )


# ----------------------------------------------------------------------
# Abstract interpretation of one combo
# ----------------------------------------------------------------------

def _trigger_observation(
    trial: CapturedTrial, confidence: int
) -> Tuple[TriggerOutcome, object]:
    """(trigger outcome, confident entry value) of one generated trial."""
    machine = VpsAbstractMachine(confidence_threshold=confidence)
    machine.run_trial(trial)
    events = [e for e in machine.events if e.tag == "trigger-load"]
    if len(events) != 1:
        raise AnalysisError(
            f"expected exactly one trigger load, saw {len(events)}"
        )
    event = events[0]
    if event.outcome is PredictionOutcome.UNKNOWN:
        raise AnalysisError(
            "generated trigger has an unresolvable VPS index"
        )
    return TriggerOutcome(event.outcome.value), event.entry_value


@dataclass(frozen=True)
class CountObservation:
    """Trigger observations of one count choice, both hypotheses."""

    train_count: str
    modify_count: str
    mapped_outcome: TriggerOutcome
    unmapped_outcome: TriggerOutcome
    mapped_entry_value: object
    unmapped_entry_value: object

    @property
    def admissible(self) -> bool:
        """Is the outcome pair an observable timing signal (Figure 2)?"""
        pair = frozenset({self.mapped_outcome, self.unmapped_outcome})
        return pair in _ADMISSIBLE_PAIRS

    @property
    def value_differs(self) -> bool:
        """Does a confident entry hold hypothesis-dependent values?"""
        return self.mapped_entry_value != self.unmapped_entry_value


@dataclass
class ComboVerdict:
    """Everything the hunt established about one combo."""

    combo: Combo
    #: The rule-set classification (:func:`repro.core.model.classify`).
    model: Classification
    #: The terminal classification after following reduction links.
    terminal: Classification
    #: Symbols visited from the combo to its terminal, inclusive.
    chain: List[str]
    #: Trigger observations per count choice, in evaluation order.
    observations: List[CountObservation]
    #: Canonical combo re-derived from the generated programs.
    derived_symbol: str

    @property
    def timing_leak(self) -> bool:
        """Some count choice yields an admissible outcome pair."""
        return any(obs.admissible for obs in self.observations)

    @property
    def witness(self) -> Optional[CountObservation]:
        """The first admissible count choice (for dynamic replay)."""
        for obs in self.observations:
            if obs.admissible:
                return obs
        return None

    @property
    def value_distinguishable(self) -> bool:
        """Some count choice leaves hypothesis-dependent entry values."""
        return any(obs.value_differs for obs in self.observations)

    @property
    def roundtrip_ok(self) -> bool:
        """Did the classifier recover the generator's canonical combo?"""
        return self.derived_symbol == canonical_combo(self.combo).symbol

    @property
    def terminal_effective(self) -> bool:
        """Does the reduction chain land on an effective attack?"""
        return self.terminal.verdict is Verdict.EFFECTIVE

    def to_payload(self) -> Dict[str, object]:
        """Compact JSON row for the certificate."""
        witness = self.witness
        return {
            "symbol": self.combo.symbol,
            "verdict": self.model.verdict.value,
            "category": (
                self.model.category.value if self.model.category else None
            ),
            "reduces_to": self.model.reduces_to,
            "terminal": self.chain[-1],
            "terminal_verdict": self.terminal.verdict.value,
            "terminal_category": (
                self.terminal.category.value
                if self.terminal.category else None
            ),
            "timing_leak": self.timing_leak,
            "witness": (
                f"{witness.train_count}/{witness.modify_count}"
                if witness else None
            ),
            "value_distinguishable": self.value_distinguishable,
            "derived": self.derived_symbol,
            "roundtrip_ok": self.roundtrip_ok,
        }


def follow_reduction(
    combo: Combo, max_hops: int = 16
) -> Tuple[Classification, List[str]]:
    """Follow ``reduces_to`` links to a terminal classification.

    Returns the terminal (EFFECTIVE or INVALID) classification and the
    chain of combo symbols visited, starting with ``combo`` itself.

    Raises:
        AnalysisError: On a reduction cycle or unparseable target.
    """
    chain = [combo.symbol]
    current = classify(combo)
    while current.verdict is Verdict.REDUCIBLE:
        if len(chain) > max_hops:
            raise AnalysisError(
                f"reduction chain from {combo.symbol} exceeds "
                f"{max_hops} hops: {' -> '.join(chain)}"
            )
        target = current.reduces_to or ""
        target = RULE8_FALLBACK_TARGETS.get(target, target)
        next_combo = parse_combo(target)
        if next_combo.symbol in chain:
            raise AnalysisError(
                f"reduction cycle: {' -> '.join(chain + [next_combo.symbol])}"
            )
        chain.append(next_combo.symbol)
        current = classify(next_combo)
    return current, chain


def hunt_combo(
    combo: Combo,
    *,
    confidence: int = _EVAL_CONFIDENCE,
    layout: Optional[Layout] = None,
) -> ComboVerdict:
    """Generate, interpret, derive and chain-follow one combo."""
    layout = layout or Layout()
    modify_counts: Tuple[str, ...] = (
        _MODIFY_COUNTS if not combo.modify.is_none else ("one",)
    )
    observations: List[CountObservation] = []
    for train_count in _TRAIN_COUNTS:
        for modify_count in modify_counts:
            per_hyp = []
            for mapped in (True, False):
                trial = static_trial(
                    combo, train_count=train_count,
                    modify_count=modify_count, mapped=mapped,
                    confidence=confidence, layout=layout,
                )
                per_hyp.append(_trigger_observation(trial, confidence))
            observations.append(CountObservation(
                train_count=train_count,
                modify_count=modify_count,
                mapped_outcome=per_hyp[0][0],
                unmapped_outcome=per_hyp[1][0],
                mapped_entry_value=per_hyp[0][1],
                unmapped_entry_value=per_hyp[1][1],
            ))

    mapped_trial = static_trial(
        combo, mapped=True, confidence=confidence, layout=layout,
    )
    unmapped_trial = static_trial(
        combo, mapped=False, confidence=confidence, layout=layout,
    )
    derived, _steps = derive_combo(
        mapped_trial, unmapped_trial, layout, pc_dimension=PC_DIMENSION,
    )

    terminal, chain = follow_reduction(combo)
    return ComboVerdict(
        combo=combo,
        model=classify(combo),
        terminal=terminal,
        chain=chain,
        observations=observations,
        derived_symbol=derived.symbol,
    )


def hunt_records(
    *,
    confidence: int = _EVAL_CONFIDENCE,
    layout: Optional[Layout] = None,
) -> List[ComboVerdict]:
    """Hunt the full 576-combo space, in Table I enumeration order."""
    layout = layout or Layout()
    return [
        hunt_combo(combo, confidence=confidence, layout=layout)
        for combo in all_combos()
    ]


# ----------------------------------------------------------------------
# Certificate
# ----------------------------------------------------------------------

def _soundness_claim(records: List[ComboVerdict]) -> Dict[str, object]:
    """Model-effective set == Table II, categories included."""
    effective = {
        r.combo.symbol: r.model.category for r in records
        if r.model.verdict is Verdict.EFFECTIVE
    }
    table = {combo.symbol: category for combo, category in table_ii_combos()}
    missing = sorted(set(table) - set(effective))
    extra = sorted(set(effective) - set(table))
    category_mismatches = sorted(
        symbol for symbol in set(table) & set(effective)
        if table[symbol] is not effective[symbol]
    )
    not_leaking = sorted(
        r.combo.symbol for r in records
        if r.model.verdict is Verdict.EFFECTIVE and not r.timing_leak
    )
    ok = not (missing or extra or category_mismatches or not_leaking)
    return {
        "ok": ok,
        "missing_from_model": missing,
        "not_in_table_ii": extra,
        "category_mismatches": category_mismatches,
        "effective_without_static_leak": not_leaking,
        "statement": (
            "every model-effective combo is a Table II row with the "
            "matching category, and each one leaks statically"
        ),
    }


def _completeness_claim(records: List[ComboVerdict]) -> Dict[str, object]:
    """Static leak <=> reduction chain terminates in an effective class."""
    counterexamples: List[Dict[str, object]] = []
    for record in records:
        if record.timing_leak and not record.terminal_effective:
            counterexamples.append({
                "symbol": record.combo.symbol,
                "kind": "leaks-but-unclassified",
                "detail": (
                    "static analysis finds an admissible outcome pair "
                    "but the reduction chain ends at "
                    f"{record.chain[-1]} ({record.terminal.verdict.value})"
                ),
            })
        elif record.terminal_effective and not record.timing_leak:
            counterexamples.append({
                "symbol": record.combo.symbol,
                "kind": "classified-but-silent",
                "detail": (
                    "the reduction chain reaches effective class "
                    f"{record.chain[-1]} but no count choice yields an "
                    "admissible outcome pair"
                ),
            })
    return {
        "ok": not counterexamples,
        "counterexamples": counterexamples,
        "statement": (
            "a combo leaks statically if and only if its reduction "
            "chain terminates in a Table II class"
        ),
    }


def _minimality_claim(records: List[ComboVerdict]) -> Dict[str, object]:
    """The 12 classes are pairwise distinct and span 6 categories."""
    by_symbol = {r.combo.symbol: r for r in records}
    classes: Dict[str, List[str]] = {}
    for record in records:
        if record.terminal_effective:
            classes.setdefault(record.chain[-1], []).append(
                record.combo.symbol
            )
    representatives_not_own_class = sorted(
        symbol for symbol in classes
        if symbol not in by_symbol
        or by_symbol[symbol].model.verdict is not Verdict.EFFECTIVE
    )
    categories = {
        by_symbol[symbol].model.category
        for symbol in classes if symbol in by_symbol
    }
    ok = (
        len(classes) == 12
        and not representatives_not_own_class
        and len(categories - {None}) == 6
    )
    return {
        "ok": ok,
        "classes": len(classes),
        "categories": len(categories - {None}),
        "representatives_not_effective": representatives_not_own_class,
        "statement": (
            "the leaking combos partition into exactly 12 equivalence "
            "classes across 6 categories, each represented by its own "
            "model-effective combo (no class reduces to another)"
        ),
    }


def _roundtrip_claim(records: List[ComboVerdict]) -> Dict[str, object]:
    failures = sorted(
        r.combo.symbol for r in records if not r.roundtrip_ok
    )
    return {
        "ok": not failures,
        "failures": failures,
        "statement": (
            "the static classifier re-derives every generated combo's "
            "canonical form from its programs"
        ),
    }


def _table_iii_claim(records: List[ComboVerdict]) -> Dict[str, object]:
    by_symbol = {r.combo.symbol: r for r in records}
    rows = []
    ok = True
    for combo, category in table_ii_combos():
        record = by_symbol[combo.symbol]
        agree = record.timing_leak == RECORDED_TABLE_III_EFFECTIVE
        ok = ok and agree
        rows.append({
            "symbol": combo.symbol,
            "category": category.value,
            "static_effective": record.timing_leak,
            "dynamic_recorded": RECORDED_TABLE_III_EFFECTIVE,
            "agree": agree,
        })
    return {
        "ok": ok,
        "rows": rows,
        "statement": (
            "the static verdict of each Table II variant agrees with "
            "the recorded dynamic Table III verdict (LVP, no defense)"
        ),
    }


def build_certificate(
    records: List[ComboVerdict],
    *,
    confidence: int = _EVAL_CONFIDENCE,
) -> Dict[str, object]:
    """Assemble the machine-checked completeness certificate.

    The payload is fully deterministic (no timestamps, no host state):
    serialising it with sorted keys yields byte-identical files across
    runs, which the CI hunt-smoke leg asserts.
    """
    verdicts = {verdict.value: 0 for verdict in Verdict}
    for record in records:
        verdicts[record.model.verdict.value] += 1

    classes: Dict[str, List[str]] = {}
    invalid_members: List[str] = []
    for record in records:
        if record.terminal_effective:
            classes.setdefault(record.chain[-1], []).append(
                record.combo.symbol
            )
        else:
            invalid_members.append(record.combo.symbol)
    by_symbol = {r.combo.symbol: r for r in records}

    claims = {
        "soundness": _soundness_claim(records),
        "completeness": _completeness_claim(records),
        "minimality": _minimality_claim(records),
        "derivation_roundtrip": _roundtrip_claim(records),
        "table_iii_agreement": _table_iii_claim(records),
    }
    certified = all(claim["ok"] for claim in claims.values())
    statement = (
        "Table II is complete and minimal under our model: the 576 "
        "Table I combinations reduce to exactly these 12 effective "
        "variants in 6 categories."
        if certified else
        "certification FAILED; see the claims for counterexamples."
    )
    return {
        "schema": "hunt-certificate/v1",
        "confidence": confidence,
        "space": {
            "train_actions": 8,
            "modify_actions": 9,
            "trigger_actions": 8,
            "combos": len(records),
        },
        "verdicts": verdicts,
        "classes": [
            {
                "symbol": symbol,
                "category": (
                    by_symbol[symbol].model.category.value
                    if symbol in by_symbol and by_symbol[symbol].model.category
                    else None
                ),
                "members": len(members),
                "member_symbols": sorted(members),
            }
            for symbol, members in sorted(classes.items())
        ],
        "invalid_members": len(invalid_members),
        "claims": claims,
        "extended_persistent_candidates": sorted(
            r.combo.symbol for r in records
            if r.value_distinguishable and not r.timing_leak
        ),
        "combos": [record.to_payload() for record in records],
        "certified": certified,
    }


def hunt_certificate(
    *,
    confidence: int = _EVAL_CONFIDENCE,
    layout: Optional[Layout] = None,
) -> Dict[str, object]:
    """Hunt the full space and build the certificate in one call."""
    return build_certificate(
        hunt_records(confidence=confidence, layout=layout),
        confidence=confidence,
    )


def dynamic_targets(records: List[ComboVerdict]) -> List[ComboVerdict]:
    """Combos worth confirming dynamically.

    The model-effective twelve (static and dynamic evidence should
    agree on each) plus any completeness counterexample — a combo the
    static pass flags as leaking that the reduction does not map to a
    Table II class (expected empty; if the hunt ever finds one, it is
    a candidate *new* variant and gets measured).
    """
    targets = [
        r for r in records if r.model.verdict is Verdict.EFFECTIVE
    ]
    targets.extend(
        r for r in records
        if r.timing_leak and not r.terminal_effective
    )
    return targets


def hunt_category(record: ComboVerdict) -> Optional[AttackCategory]:
    """The Table II category a combo's reduction chain lands in."""
    return record.terminal.category
