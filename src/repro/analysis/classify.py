"""Static classification of attack variants onto the Table I alphabet.

A variant is a recipe for three program steps — train, modify,
trigger, identified by their load tags.  Capturing the recipe under
*both* secret hypotheses and diffing the two captures recovers the
Table I action of each step syntactically:

* a step program present under only one hypothesis, or whose tagged
  load sits at a different PC, is **secret in the index dimension**
  (its existence / placement encodes the secret);
* a step whose tagged load reads different architectural values
  across the hypotheses — or is annotated ``secret`` — is **secret in
  the data dimension**;
* anything else is a **known** access, inheriting the dimension the
  attack is about.

Secret flavours (' / '') are assigned by first appearance of each
distinct secret *object* (program identity, PC pair or data address),
matching the paper's notation.  The resulting
:class:`~repro.core.model.Combo` is put through the Table II reduction
rules of :func:`repro.core.model.classify`, giving a fully static
prediction of whether the cell can constitute an attack at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.capture import CapturedTrial, capture_variant
from repro.analysis.taint import analyze_taint
from repro.core.actions import (
    NONE_ACTION,
    Action,
    Actor,
    Dimension,
    Knowledge,
    SecretFlavour,
)
from repro.core.channels import ChannelType
from repro.core.model import Classification, Combo, classify
from repro.errors import AnalysisError
from repro.isa.program import Program
from repro.workloads.gadgets import Layout

if TYPE_CHECKING:
    from repro.core.variants import AttackVariant

#: The three step roles, in step order, with the load tag naming each.
STEP_TAGS: Tuple[Tuple[str, str], ...] = (
    ("train", "train-load"),
    ("modify", "modify-load"),
    ("trigger", "trigger-load"),
)


@dataclass(frozen=True)
class StepDerivation:
    """How one step's Table I action was derived."""

    role: str
    program: Optional[str]
    action: Action
    reason: str
    pc: Optional[int] = None
    addr: Optional[int] = None


@dataclass
class StaticClassification:
    """Static verdict for one (variant, channel) sweep cell."""

    variant_name: str
    channel: ChannelType
    combo: Combo
    classification: Classification
    steps: List[StepDerivation] = field(default_factory=list)
    mapped: Optional[CapturedTrial] = None
    unmapped: Optional[CapturedTrial] = None

    @property
    def expected_effective(self) -> bool:
        """Does the static model predict this cell can succeed?"""
        return self.classification.is_effective

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable summary (stored next to dynamic results)."""
        return {
            "variant": self.variant_name,
            "channel": self.channel.value,
            "symbol": self.combo.symbol,
            "verdict": self.classification.verdict.value,
            "category": (
                self.classification.category.value
                if self.classification.category else None
            ),
            "effective": self.expected_effective,
            "steps": [
                {
                    "role": step.role,
                    "program": step.program,
                    "action": step.action.symbol,
                    "reason": step.reason,
                }
                for step in self.steps
            ],
        }


# ----------------------------------------------------------------------
# Step extraction
# ----------------------------------------------------------------------

def _step_program(trial: CapturedTrial, tag: str) -> Optional[Program]:
    """The unique program of ``trial`` containing a ``tag`` load."""
    matches = [
        captured.program for captured in trial.programs
        if captured.program.pcs_tagged(tag)
    ]
    if len(matches) > 1:
        names = ", ".join(p.name for p in matches)
        raise AnalysisError(
            f"ambiguous step: tag {tag!r} appears in programs {names}"
        )
    return matches[0] if matches else None


def _tagged_load(program: Program, tag: str) -> Tuple[int, int, bool]:
    """(pc, addr, secret) of the first dynamic ``tag`` load."""
    loads = analyze_taint(program).loads_tagged(tag)
    if not loads:
        raise AnalysisError(
            f"program {program.name!r} tags {tag!r} on a non-load"
        )
    first = loads[0]
    return first.pc, first.addr, first.secret


@dataclass
class _RawStep:
    """A step before flavour/dimension resolution."""

    role: str
    program: Optional[str]
    pid: Optional[int]
    secret: bool
    dimension: Optional[Dimension]
    object_key: Optional[Tuple]
    reason: str
    pc: Optional[int] = None
    addr: Optional[int] = None


def _derive_step(
    role: str,
    tag: str,
    mapped: CapturedTrial,
    unmapped: CapturedTrial,
) -> Optional[_RawStep]:
    """Diff the two hypothesis captures into one raw step."""
    prog_m = _step_program(mapped, tag)
    prog_u = _step_program(unmapped, tag)
    if prog_m is None and prog_u is None:
        return None
    if (prog_m is None) != (prog_u is None):
        present = prog_m or prog_u
        return _RawStep(
            role=role, program=present.name, pid=present.pid, secret=True,
            dimension=Dimension.INDEX,
            object_key=("presence", present.name),
            reason=(
                f"program {present.name!r} runs under only one secret "
                "hypothesis: its presence is a secret-dependent index "
                "access"
            ),
        )
    pc_m, addr_m, secret_m = _tagged_load(prog_m, tag)
    pc_u, addr_u, secret_u = _tagged_load(prog_u, tag)
    if pc_m != pc_u:
        return _RawStep(
            role=role, program=prog_m.name, pid=prog_m.pid, secret=True,
            dimension=Dimension.INDEX,
            object_key=("pc", pc_m, pc_u),
            reason=(
                f"tagged load pinned at {pc_m:#x} vs {pc_u:#x} across "
                "hypotheses: the load PC is the secret"
            ),
            pc=pc_m, addr=addr_m,
        )
    value_m = mapped.values.get((prog_m.pid, addr_m)) if addr_m is not None else None
    value_u = unmapped.values.get((prog_u.pid, addr_u)) if addr_u is not None else None
    if value_m != value_u or addr_m != addr_u or secret_m or secret_u:
        if value_m != value_u or addr_m != addr_u:
            why = (
                f"loaded value differs across hypotheses "
                f"({value_m!r} vs {value_u!r})"
            )
        else:
            why = "load carries the secret annotation"
        # The object key carries *both* hypothesis addresses: under the
        # mapped hypothesis two distinct secret flavours may resolve to
        # the same concrete slot (that equality is the hypothesis), so
        # the unmapped address is what keeps their objects distinct.
        return _RawStep(
            role=role, program=prog_m.name, pid=prog_m.pid, secret=True,
            dimension=Dimension.DATA,
            object_key=("data", prog_m.pid, addr_m, addr_u),
            reason=why + ": secret data access",
            pc=pc_m, addr=addr_m,
        )
    return _RawStep(
        role=role, program=prog_m.name, pid=prog_m.pid, secret=False,
        dimension=None, object_key=None,
        reason=(
            "same program, PC and value under both hypotheses: "
            "known access"
        ),
        pc=pc_m, addr=addr_m,
    )


# ----------------------------------------------------------------------
# Action construction
# ----------------------------------------------------------------------

_FLAVOUR_ORDER = (SecretFlavour.PRIME, SecretFlavour.DOUBLE_PRIME)


def _actions_of(
    raw_steps: List[Optional[_RawStep]],
    layout: Layout,
    pc_dimension: Optional[Mapping[int, Dimension]] = None,
) -> List[Action]:
    """Resolve flavours and known-step dimensions, build Actions.

    ``pc_dimension`` optionally maps a load PC to the dimension a
    *known* access at that PC targets.  Without it, known steps
    inherit the secret dimension of the cell (or DATA) — fine for the
    six hand-built variants, but the exhaustive enumerator generates
    mixed-dimension combos where a known index access must not be
    mistaken for a known data access.
    """
    flavours: Dict[Tuple, SecretFlavour] = {}
    #: Flavour namespaces are per dimension (D'/D'' vs I'/I'').
    dimension_counts: Dict[Dimension, int] = {}
    secret_dimension: Optional[Dimension] = None
    for raw in raw_steps:
        if raw is None or not raw.secret:
            continue
        if secret_dimension is None:
            secret_dimension = raw.dimension
        if raw.object_key not in flavours:
            assert raw.dimension is not None
            seen = dimension_counts.get(raw.dimension, 0)
            if seen >= len(_FLAVOUR_ORDER):
                raise AnalysisError(
                    "more than two distinct secret objects in one "
                    "dimension: "
                    + ", ".join(repr(k) for k in flavours)
                )
            flavours[raw.object_key] = _FLAVOUR_ORDER[seen]
            dimension_counts[raw.dimension] = seen + 1

    actions: List[Action] = []
    for raw in raw_steps:
        if raw is None:
            actions.append(NONE_ACTION)
            continue
        actor = (
            Actor.SENDER if raw.pid == layout.sender_pid else Actor.RECEIVER
        )
        if raw.secret:
            if actor is not Actor.SENDER:
                raise AnalysisError(
                    f"step {raw.role!r} ({raw.program}) is secret-dependent "
                    f"but runs as the receiver (pid {raw.pid}): only the "
                    "sender has logical access to the secret"
                )
            actions.append(Action(
                actor=actor, knowledge=Knowledge.SECRET,
                dimension=raw.dimension, flavour=flavours[raw.object_key],
            ))
        else:
            dimension = None
            if pc_dimension is not None and raw.pc is not None:
                dimension = pc_dimension.get(raw.pc)
            if dimension is None:
                dimension = secret_dimension or Dimension.DATA
            actions.append(Action(
                actor=actor, knowledge=Knowledge.KNOWN,
                dimension=dimension,
            ))
    return actions


def derive_combo(
    mapped: CapturedTrial,
    unmapped: CapturedTrial,
    layout: Optional[Layout] = None,
    *,
    pc_dimension: Optional[Mapping[int, Dimension]] = None,
    required_roles: Sequence[str] = ("train", "trigger"),
) -> Tuple[Combo, List[StepDerivation]]:
    """Diff two hypothesis captures into a Table I :class:`Combo`.

    The captures may come from :func:`capture_variant` or be built by
    hand (the enumerator constructs :class:`CapturedTrial` objects
    directly).  Step roles are keyed purely by load tag, so submission
    order does not matter; missing required roles raise.

    Raises:
        AnalysisError: If the captures cannot be mapped onto the
            three-step schema (missing required step, ambiguous tags,
            secret access by the receiver, >2 secret objects).
    """
    layout = layout or mapped.layout
    raw_steps = [
        _derive_step(role, tag, mapped, unmapped)
        for role, tag in STEP_TAGS
    ]
    for raw, (role, tag) in zip(raw_steps, STEP_TAGS):
        if raw is None and role in required_roles:
            raise AnalysisError(
                f"no {role} step: no captured program contains a "
                f"{tag!r} load"
            )
    actions = _actions_of(raw_steps, layout, pc_dimension)
    combo = Combo(train=actions[0], modify=actions[1], trigger=actions[2])
    steps = [
        StepDerivation(
            role=role,
            program=raw.program if raw else None,
            action=action,
            reason=raw.reason if raw else "step not used",
            pc=raw.pc if raw else None,
            addr=raw.addr if raw else None,
        )
        for raw, action, (role, _) in zip(raw_steps, actions, STEP_TAGS)
    ]
    return combo, steps


def classify_cell(
    variant: "AttackVariant",
    channel: ChannelType,
    *,
    confidence: int = 4,
    chain_length: Optional[int] = None,
    modify_mode: str = "retrain",
    layout: Optional[Layout] = None,
) -> StaticClassification:
    """Statically classify one (variant, channel) sweep cell.

    Captures the variant under both secret hypotheses, derives the
    Table I action of each step, and runs the resulting combo through
    the Table II reduction rules.

    Raises:
        AnalysisError: If the captures cannot be mapped onto the
            three-step schema (missing train/trigger step, ambiguous
            tags, secret access by the receiver, >2 secret objects).
    """
    layout = layout or Layout()
    mapped = capture_variant(
        variant, channel, True, confidence=confidence,
        chain_length=chain_length, modify_mode=modify_mode, layout=layout,
    )
    unmapped = capture_variant(
        variant, channel, False, confidence=confidence,
        chain_length=chain_length, modify_mode=modify_mode, layout=layout,
    )

    try:
        combo, steps = derive_combo(mapped, unmapped, layout)
    except AnalysisError as exc:
        raise AnalysisError(f"variant {variant.name!r}: {exc}") from None
    classification = classify(combo)
    return StaticClassification(
        variant_name=variant.name,
        channel=channel,
        combo=combo,
        classification=classification,
        steps=steps,
        mapped=mapped,
        unmapped=unmapped,
    )
