"""Program capture: run a variant against a recording core.

The attack variants of :mod:`repro.core.variants` are written against
the :class:`~repro.core.attack.TrialEnv` interface — they build their
programs at run time and hand them to ``env.core.run``.  To analyse
those programs *statically* we execute the variant once against a
:class:`CaptureCore` that records every program instead of simulating
it, fabricating just enough of a :class:`~repro.pipeline.trace.RunResult`
(zeroed RDTSC readings, empty load events) for the variant's decode
arithmetic to proceed.  Capturing costs microseconds and zero
simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.attack import TrialEnv
from repro.core.channels import ChannelType
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.pipeline.trace import RunResult
from repro.workloads.gadgets import Layout

if TYPE_CHECKING:
    from repro.core.variants import AttackVariant


@dataclass(frozen=True)
class CapturedProgram:
    """One program handed to the core, in submission order."""

    program: Program
    concurrent: bool = False


class CaptureMemory:
    """Records architectural writes instead of performing them."""

    def __init__(self) -> None:
        self.writes: Dict[Tuple[int, int], int] = {}

    def write_value(self, pid: int, addr: int, value: int) -> None:
        """Record ``mem[pid, addr] = value``."""
        self.writes[(pid, addr)] = value


def _fabricate_result(program: Program) -> RunResult:
    """A placeholder run result that satisfies the decode arithmetic.

    RDTSC readings are all zero (one per dynamic RDTSC instance, so
    pairings line up), which makes every timing delta zero — the
    variants only *compute* with the values, they never branch on
    them.
    """
    trace = program.dynamic_trace()
    rdtsc_values = [
        (placed.pc, 0)
        for placed in trace
        if placed.instruction.op is Opcode.RDTSC
    ]
    return RunResult(
        program_name=program.name,
        pid=program.pid,
        start_cycle=0,
        end_cycle=1,
        retired=len(trace),
        squashes=0,
        rdtsc_values=rdtsc_values,
    )


class CaptureCore:
    """A drop-in ``core`` for :class:`TrialEnv` that records programs."""

    def __init__(self) -> None:
        self.captured: List[CapturedProgram] = []
        #: Mirrors ``Core.cycle``; capturing spends no simulated time.
        self.cycle = 0

    def run(self, program: Program) -> RunResult:
        """Record ``program`` and return a fabricated result."""
        self.captured.append(CapturedProgram(program))
        return _fabricate_result(program)

    def run_concurrent(self, programs: Sequence[Program]) -> List[RunResult]:
        """Record concurrently-submitted programs, preserving order."""
        results = []
        for program in programs:
            self.captured.append(CapturedProgram(program, concurrent=True))
            results.append(_fabricate_result(program))
        return results


@dataclass
class CapturedTrial:
    """Everything one hypothesis run of a variant did, statically.

    Attributes:
        programs: The programs submitted, in order.
        values: Architectural writes the variant performed before and
            between programs, as ``(pid, addr) -> value``.
        layout: The address/PC plan the programs were built against.
        mapped: Which secret hypothesis was captured.
    """

    programs: List[CapturedProgram] = field(default_factory=list)
    values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    layout: Layout = field(default_factory=Layout)
    mapped: bool = True

    def program_named(self, name: str) -> Optional[Program]:
        """The captured program called ``name``, if any."""
        for captured in self.programs:
            if captured.program.name == name:
                return captured.program
        return None

    @property
    def program_names(self) -> List[str]:
        """Names of the captured programs, in submission order."""
        return [captured.program.name for captured in self.programs]


def capture_variant(
    variant: "AttackVariant",
    channel: ChannelType,
    mapped: bool,
    *,
    confidence: int = 4,
    chain_length: Optional[int] = None,
    modify_mode: str = "retrain",
    layout: Optional[Layout] = None,
) -> CapturedTrial:
    """Capture the programs one trial of ``variant`` would run.

    Args:
        variant: An :class:`~repro.core.variants.AttackVariant`.
        channel: The encode/decode channel of the cell.
        mapped: The secret hypothesis to capture.
        confidence: VPS confidence threshold (affects train counts).
        chain_length: Trigger window length; ``None`` uses the
            variant's default.
        modify_mode: ``"retrain"`` or ``"invalidate"``.
        layout: Address/PC plan; default :class:`Layout`.
    """
    layout = layout or Layout()
    core = CaptureCore()
    memory = CaptureMemory()
    env = TrialEnv(
        core=core,
        memory=memory,
        layout=layout,
        confidence=confidence,
        channel=channel,
        chain_length=(
            chain_length if chain_length is not None
            else variant.default_chain_length
        ),
        modify_mode=modify_mode,
    )
    variant.run(env, mapped)
    return CapturedTrial(
        programs=core.captured,
        values=memory.writes,
        layout=layout,
        mapped=mapped,
    )
