"""Stride value predictor.

An extension beyond the paper's evaluated LVP/VTAGE pair: predicts
``last_value + stride`` once the same stride has been observed
``confidence_threshold`` times in a row.  A constant value is a stride
of zero, so a trained stride predictor subsumes LVP behaviour — and is
therefore vulnerable to the same attacks (exercised by the extension
benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.indexing import PC_INDEX, IndexFunction

_VALUE_MASK = (1 << 64) - 1


@dataclass
class _StrideEntry:
    """Per-index stride-predictor state."""

    last_value: int
    stride: int = 0
    confidence: int = 0
    usefulness: int = 1

    def observe(self, actual_value: int, max_confidence: int) -> None:
        """Record the actual value and update the tracked stride."""
        observed_stride = (actual_value - self.last_value) & _VALUE_MASK
        if observed_stride == self.stride:
            self.confidence = min(self.confidence + 1, max_confidence)
            self.usefulness = min(self.usefulness + 1, 63)
        else:
            self.stride = observed_stride
            self.confidence = 0
            self.usefulness = max(self.usefulness - 1, 0)
        self.last_value = actual_value


class StridePredictor(ValuePredictor):
    """Predicts ``last_value + stride`` for stable strides.

    Args:
        confidence_threshold: Consecutive stride confirmations required
            before predicting.
        capacity: Maximum tracked entries (least-useful evicted).
        index_function: Load-to-entry mapping (PC-based by default).
    """

    name = "stride"

    def __init__(
        self,
        confidence_threshold: int = 3,
        capacity: int = 256,
        index_function: IndexFunction = PC_INDEX,
        max_confidence: int = 15,
    ) -> None:
        super().__init__()
        if confidence_threshold < 1:
            raise PredictorError(
                f"confidence threshold must be >= 1, got {confidence_threshold}"
            )
        if capacity < 1:
            raise PredictorError(f"capacity must be >= 1, got {capacity}")
        self.confidence_threshold = confidence_threshold
        self.capacity = capacity
        self.index_function = index_function
        self.max_confidence = max_confidence
        self._entries: Dict[int, _StrideEntry] = {}

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        index = self.index_function.index_of(key)
        entry = self._entries.get(index)
        if entry is not None and entry.confidence >= self.confidence_threshold:
            prediction = Prediction(
                value=(entry.last_value + entry.stride) & _VALUE_MASK,
                confidence=entry.confidence,
                source=self.name,
            )
        else:
            prediction = None
        return self._record_lookup(prediction)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        index = self.index_function.index_of(key)
        entry = self._entries.get(index)
        if entry is None:
            if len(self._entries) >= self.capacity:
                victim = min(
                    self._entries, key=lambda i: self._entries[i].usefulness
                )
                del self._entries[victim]
                self.stats.evictions += 1
            self._entries[index] = _StrideEntry(last_value=actual_value)
            return
        entry.observe(actual_value, self.max_confidence)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self._entries.clear()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return tuple(
            (index, entry.last_value, entry.stride, entry.confidence,
             entry.usefulness)
            for index, entry in self._entries.items()
        )

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        self._entries = {
            index: _StrideEntry(
                last_value=last_value, stride=stride, confidence=confidence,
                usefulness=usefulness,
            )
            for index, last_value, stride, confidence, usefulness
            in state  # type: ignore[union-attr]
        }

    def confidence_of(self, key: AccessKey) -> int:
        """Confidence for ``key`` (0 if untracked)."""
        entry = self._entries.get(self.index_function.index_of(key))
        return entry.confidence if entry is not None else 0
