"""Value Prediction Systems (VPS).

Implements the predictor zoo the paper discusses: the baseline
(non-secure) LVP [Lipasti et al. 1996], VTAGE [Perais & Seznec 2014],
an oracle wrapper matching the paper's experimental setup, plus
stride/FCM/hybrid extensions and the "no VP" control.
"""

from repro.vp.base import AccessKey, Prediction, PredictorStats, ValuePredictor
from repro.vp.bebop import BebopPredictor
from repro.vp.composite import FilteredPredictor, HybridPredictor
from repro.vp.fcm import FcmPredictor
from repro.vp.indexing import (
    DATA_ADDRESS_INDEX,
    PC_INDEX,
    PC_PID_INDEX,
    IndexFunction,
    IndexSource,
)
from repro.vp.lvp import LastValuePredictor
from repro.vp.nopred import NoPredictor
from repro.vp.oracle import OracleTargetPredictor
from repro.vp.stride import StridePredictor
from repro.vp.table import VpTable, VptEntry
from repro.vp.vtage import VtagePredictor

__all__ = [
    "AccessKey",
    "BebopPredictor",
    "DATA_ADDRESS_INDEX",
    "FcmPredictor",
    "FilteredPredictor",
    "HybridPredictor",
    "IndexFunction",
    "IndexSource",
    "LastValuePredictor",
    "NoPredictor",
    "OracleTargetPredictor",
    "PC_INDEX",
    "PC_PID_INDEX",
    "Prediction",
    "PredictorStats",
    "StridePredictor",
    "ValuePredictor",
    "VpTable",
    "VptEntry",
    "VtagePredictor",
]
