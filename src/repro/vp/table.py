"""The Value Prediction System table of Figure 1.

Each entry tracks ``index | confidence | usefulness | value | VHist``
exactly as drawn in the paper.  When the table is full, "the entry
with the smallest usefulness value will be evicted".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.errors import PredictorError

#: Default saturation ceiling for confidence counters.
DEFAULT_MAX_CONFIDENCE = 15

#: Default saturation ceiling for usefulness counters.
DEFAULT_MAX_USEFULNESS = 63

#: Default length of the per-entry value history.
DEFAULT_VHIST_LENGTH = 4


@dataclass
class VptEntry:
    """One Value Prediction Table entry.

    Attributes:
        index: The index value that owns this entry (acts as the tag).
        value: The last observed (and thus predicted) value.
        confidence: Saturating counter of consecutive value matches;
            a fresh entry starts at 1 (the value has been seen once),
            and a mismatch resets it to 0 while installing the new
            value — the state Figure 3's diagrams show after the
            1-access "modify" step.
        usefulness: Saturating counter used for eviction; increased
            when the entry's value re-occurs, decreased on mismatch.
        vhist: The last few observed values (most recent last).
    """

    index: int
    value: int
    confidence: int = 1
    usefulness: int = 1
    vhist: Deque[int] = field(
        default_factory=lambda: deque(maxlen=DEFAULT_VHIST_LENGTH)
    )

    def observe(
        self,
        actual_value: int,
        max_confidence: int = DEFAULT_MAX_CONFIDENCE,
        max_usefulness: int = DEFAULT_MAX_USEFULNESS,
    ) -> bool:
        """Record ``actual_value``; True if it matched the stored value.

        On a match, confidence and usefulness increase (saturating).
        On a mismatch, the new value is installed, confidence resets to
        0 and usefulness decays by 1.
        """
        self.vhist.append(actual_value)
        if actual_value == self.value:
            self.confidence = min(self.confidence + 1, max_confidence)
            self.usefulness = min(self.usefulness + 1, max_usefulness)
            return True
        self.value = actual_value
        self.confidence = 0
        self.usefulness = max(self.usefulness - 1, 0)
        return False

    def snapshot(self) -> Tuple[int, int, int, int]:
        """(index, confidence, usefulness, value) — for tests/diagrams."""
        return (self.index, self.confidence, self.usefulness, self.value)


class VpTable:
    """A capacity-bounded table of :class:`VptEntry` records.

    Eviction follows the paper: "if there are not enough entries, the
    entry with the smallest usefulness value will be evicted" (ties
    broken by least-recent insertion for determinism).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise PredictorError(f"table capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, VptEntry] = {}
        self._insertion_order: Dict[int, int] = {}
        self._insert_counter = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, index: int) -> bool:
        return index in self._entries

    def __iter__(self) -> Iterator[VptEntry]:
        return iter(self._entries.values())

    def get(self, index: int) -> Optional[VptEntry]:
        """The entry owned by ``index``, or ``None``."""
        return self._entries.get(index)

    def insert(self, index: int, value: int, vhist_length: int = DEFAULT_VHIST_LENGTH
               ) -> VptEntry:
        """Allocate an entry for ``index``, evicting if necessary.

        Raises:
            PredictorError: If ``index`` already has an entry.
        """
        if index in self._entries:
            raise PredictorError(f"entry for index {index:#x} already exists")
        if len(self._entries) >= self.capacity:
            self._evict_least_useful()
        entry = VptEntry(
            index=index,
            value=value,
            vhist=deque([value], maxlen=vhist_length),
        )
        self._entries[index] = entry
        self._insertion_order[index] = self._insert_counter
        self._insert_counter += 1
        return entry

    def remove(self, index: int) -> bool:
        """Drop the entry for ``index``; True if one existed."""
        if index in self._entries:
            del self._entries[index]
            del self._insertion_order[index]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (eviction counters are preserved)."""
        self._entries.clear()
        self._insertion_order.clear()

    def _evict_least_useful(self) -> None:
        victim_index = min(
            self._entries,
            key=lambda index: (
                self._entries[index].usefulness,
                self._insertion_order[index],
            ),
        )
        del self._entries[victim_index]
        del self._insertion_order[victim_index]
        self.evictions += 1

    def snapshot(self) -> List[Tuple[int, int, int, int]]:
        """Sorted (index, confidence, usefulness, value) tuples."""
        return sorted(entry.snapshot() for entry in self._entries.values())

    # ------------------------------------------------------------------
    # Snapshot/fork protocol.  Named ``capture_state``/``restore_state``
    # because :meth:`snapshot` is the long-standing *diagnostic* view
    # (sorted, lossy: no vhist or insertion order).
    # ------------------------------------------------------------------
    def capture_state(self) -> object:
        """Full table state as immutable tuples (preserves dict order)."""
        return (
            tuple(
                (index, entry.value, entry.confidence, entry.usefulness,
                 tuple(entry.vhist), entry.vhist.maxlen)
                for index, entry in self._entries.items()
            ),
            tuple(self._insertion_order.items()),
            self._insert_counter,
            self.evictions,
        )

    def restore_state(self, state: object) -> None:
        """Restore state captured by :meth:`capture_state`."""
        entries, order, counter, evictions = state  # type: ignore[misc]
        self._entries = {
            index: VptEntry(
                index=index, value=value, confidence=confidence,
                usefulness=usefulness,
                vhist=deque(vhist, maxlen=maxlen),
            )
            for index, value, confidence, usefulness, vhist, maxlen in entries
        }
        self._insertion_order = dict(order)
        self._insert_counter = counter
        self.evictions = evictions
