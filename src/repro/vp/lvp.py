"""Last Value Predictor (LVP).

The baseline (non-secure) predictor the paper evaluates, following
Lipasti, Wilkerson and Shen's original proposal [8]: predict that a
load will return the same value it returned last time, once the value
has repeated ``confidence_threshold`` times.

Per the paper's footnote 3, with a threshold of *C* the predictor
"will output a first prediction on the confidence + 1 access": the
first access installs the entry (confidence 1) and each matching
access increments it, so after *C* accesses confidence equals *C* and
the *C+1*-th access is predicted.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.indexing import PC_INDEX, IndexFunction
from repro.vp.table import (
    DEFAULT_MAX_CONFIDENCE,
    DEFAULT_MAX_USEFULNESS,
    DEFAULT_VHIST_LENGTH,
    VpTable,
)


class LastValuePredictor(ValuePredictor):
    """The classic last-value predictor.

    Args:
        confidence_threshold: Number of observations of the same value
            required before predictions start (the paper's
            ``confidence`` parameter, default 4).
        capacity: Maximum number of table entries; the least-useful
            entry is evicted when full.
        index_function: How loads map to entries (PC-based by default).
        max_confidence: Saturation ceiling of the confidence counter.
        max_usefulness: Saturation ceiling of the usefulness counter.
        vhist_length: Per-entry value-history length.
    """

    name = "lvp"

    def __init__(
        self,
        confidence_threshold: int = 4,
        capacity: int = 256,
        index_function: IndexFunction = PC_INDEX,
        max_confidence: int = DEFAULT_MAX_CONFIDENCE,
        max_usefulness: int = DEFAULT_MAX_USEFULNESS,
        vhist_length: int = DEFAULT_VHIST_LENGTH,
    ) -> None:
        super().__init__()
        if confidence_threshold < 1:
            raise PredictorError(
                f"confidence threshold must be >= 1, got {confidence_threshold}"
            )
        if max_confidence < confidence_threshold:
            raise PredictorError(
                "max_confidence must be at least the confidence threshold"
            )
        self.confidence_threshold = confidence_threshold
        self.index_function = index_function
        self.max_confidence = max_confidence
        self.max_usefulness = max_usefulness
        self.vhist_length = vhist_length
        self.table = VpTable(capacity=capacity)

    # ------------------------------------------------------------------
    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        index = self.index_function.index_of(key)
        entry = self.table.get(index)
        if entry is not None and entry.confidence >= self.confidence_threshold:
            prediction = Prediction(
                value=entry.value, confidence=entry.confidence, source=self.name
            )
        else:
            prediction = None
        return self._record_lookup(prediction)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        index = self.index_function.index_of(key)
        entry = self.table.get(index)
        if entry is None:
            evictions_before = self.table.evictions
            self.table.insert(index, actual_value, vhist_length=self.vhist_length)
            self.stats.evictions += self.table.evictions - evictions_before
            return
        entry.observe(
            actual_value,
            max_confidence=self.max_confidence,
            max_usefulness=self.max_usefulness,
        )

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.table.clear()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return self.table.capture_state()

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        self.table.restore_state(state)

    # ------------------------------------------------------------------
    def confidence_of(self, key: AccessKey) -> int:
        """The confidence currently held for ``key`` (0 if absent)."""
        entry = self.table.get(self.index_function.index_of(key))
        return entry.confidence if entry is not None else 0

    def value_of(self, key: AccessKey) -> Optional[int]:
        """The stored last value for ``key``, or ``None``."""
        entry = self.table.get(self.index_function.index_of(key))
        return entry.value if entry is not None else None
