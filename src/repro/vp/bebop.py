"""BeBoP-style block-based value predictor.

A simplified form of Perais & Seznec's "BeBoP" infrastructure (HPCA
2015, the paper's reference [9], credited with an 11.2 % speedup):
predictor storage is organised by *fetch block* rather than by
individual PC.  A set-associative table is indexed by the block
address; each block entry carries a partial tag and per-offset
sub-entries (value, confidence, usefulness) for the loads inside the
block.

Security-wise this indexing inherits both attack surfaces the paper's
threat model names: block entries use *partial* tags (so distant
blocks can alias) and loads collide whenever block index, partial tag
and in-block offset all match — which an attacker can arrange without
matching the victim's full PC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.table import DEFAULT_MAX_CONFIDENCE, DEFAULT_MAX_USEFULNESS

_VALUE_MASK = (1 << 64) - 1


def _partial_tag(block: int, tag_bits: int) -> int:
    """A folded partial tag of the block address."""
    digest = (block * 0x9E3779B97F4A7C15) & _VALUE_MASK
    digest ^= digest >> 29
    return digest & ((1 << tag_bits) - 1)


@dataclass
class _SubEntry:
    """Per-offset predictor state inside a block entry."""

    value: int
    confidence: int = 1
    usefulness: int = 1

    def observe(self, actual_value: int, max_confidence: int) -> None:
        """Record the actual value: match strengthens, mismatch resets."""
        if actual_value == self.value:
            self.confidence = min(self.confidence + 1, max_confidence)
            self.usefulness = min(
                self.usefulness + 1, DEFAULT_MAX_USEFULNESS
            )
        else:
            self.value = actual_value
            self.confidence = 0
            self.usefulness = max(self.usefulness - 1, 0)


@dataclass
class _BlockEntry:
    """One block's predictor state: partial tag + per-offset sub-entries."""

    tag: int
    sub_entries: Dict[int, _SubEntry] = field(default_factory=dict)
    last_used: int = 0

    def total_usefulness(self) -> int:
        """Total usefulness."""
        return sum(entry.usefulness for entry in self.sub_entries.values())


class BebopPredictor(ValuePredictor):
    """Block-based last-value prediction with partial tags.

    Args:
        confidence_threshold: Matches required before predicting.
        sets: Number of table sets (block index = block mod sets).
        ways: Block entries per set (least-useful block evicted).
        block_shift: log2 of the fetch-block size in bytes (6 = 64 B).
        tag_bits: Partial-tag width; smaller tags alias more blocks.
        offsets_per_block: Maximum tracked loads per block.
    """

    name = "bebop"

    def __init__(
        self,
        confidence_threshold: int = 4,
        sets: int = 64,
        ways: int = 4,
        block_shift: int = 6,
        tag_bits: int = 10,
        offsets_per_block: int = 8,
        max_confidence: int = DEFAULT_MAX_CONFIDENCE,
    ) -> None:
        super().__init__()
        if confidence_threshold < 1:
            raise PredictorError("confidence threshold must be >= 1")
        if sets < 1 or ways < 1:
            raise PredictorError("sets and ways must be >= 1")
        if not 1 <= tag_bits <= 32:
            raise PredictorError("tag_bits must be in [1, 32]")
        if offsets_per_block < 1:
            raise PredictorError("offsets_per_block must be >= 1")
        self.confidence_threshold = confidence_threshold
        self.sets = sets
        self.ways = ways
        self.block_shift = block_shift
        self.tag_bits = tag_bits
        self.offsets_per_block = offsets_per_block
        self.max_confidence = max_confidence
        # set index -> list of block entries (at most `ways`).
        self._table: Dict[int, list] = {}
        self._tick = 0

    # ------------------------------------------------------------------
    def _locate(self, key: AccessKey) -> Tuple[int, int, int]:
        """(set index, partial tag, in-block offset) for a load."""
        block = key.pc >> self.block_shift
        offset = (key.pc >> 2) & ((1 << (self.block_shift - 2)) - 1)
        return block % self.sets, _partial_tag(block, self.tag_bits), offset

    def _find_block(self, set_index: int, tag: int) -> Optional[_BlockEntry]:
        for entry in self._table.get(set_index, []):
            if entry.tag == tag:
                self._tick += 1
                entry.last_used = self._tick
                return entry
        return None

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        set_index, tag, offset = self._locate(key)
        block = self._find_block(set_index, tag)
        prediction = None
        if block is not None:
            sub = block.sub_entries.get(offset)
            if sub is not None and sub.confidence >= self.confidence_threshold:
                prediction = Prediction(
                    value=sub.value, confidence=sub.confidence,
                    source=self.name,
                )
        return self._record_lookup(prediction)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        set_index, tag, offset = self._locate(key)
        block = self._find_block(set_index, tag)
        if block is None:
            block = self._allocate_block(set_index, tag)
        sub = block.sub_entries.get(offset)
        if sub is None:
            if len(block.sub_entries) >= self.offsets_per_block:
                victim = min(
                    block.sub_entries,
                    key=lambda off: block.sub_entries[off].usefulness,
                )
                del block.sub_entries[victim]
                self.stats.evictions += 1
            block.sub_entries[offset] = _SubEntry(value=actual_value)
            return
        sub.observe(actual_value, self.max_confidence)

    def _allocate_block(self, set_index: int, tag: int) -> _BlockEntry:
        entries = self._table.setdefault(set_index, [])
        if len(entries) >= self.ways:
            victim = min(
                entries,
                key=lambda entry: (entry.total_usefulness(), entry.last_used),
            )
            entries.remove(victim)
            self.stats.evictions += 1
        self._tick += 1
        entry = _BlockEntry(tag=tag, last_used=self._tick)
        entries.append(entry)
        return entry

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self._table.clear()
        self._tick = 0

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return (
            tuple(
                (
                    set_index,
                    tuple(
                        (
                            block.tag,
                            tuple(
                                (offset, sub.value, sub.confidence,
                                 sub.usefulness)
                                for offset, sub in block.sub_entries.items()
                            ),
                            block.last_used,
                        )
                        for block in blocks
                    ),
                )
                for set_index, blocks in self._table.items()
            ),
            self._tick,
        )

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        table, self._tick = state  # type: ignore[misc]
        self._table = {
            set_index: [
                _BlockEntry(
                    tag=tag,
                    sub_entries={
                        offset: _SubEntry(
                            value=value, confidence=confidence,
                            usefulness=usefulness,
                        )
                        for offset, value, confidence, usefulness in subs
                    },
                    last_used=last_used,
                )
                for tag, subs, last_used in blocks
            ]
            for set_index, blocks in table
        }

    # ------------------------------------------------------------------
    def confidence_of(self, key: AccessKey) -> int:
        """Confidence for ``key`` (0 when untracked)."""
        set_index, tag, offset = self._locate(key)
        block = self._find_block(set_index, tag)
        if block is None:
            return 0
        sub = block.sub_entries.get(offset)
        return sub.confidence if sub is not None else 0
