"""Finite Context Method (FCM) value predictor.

A two-level predictor (extension beyond the paper's evaluation): the
first level records the recent value history of each static load; the
second level maps a hash of that history to the value that followed it
last time.  Captures repeating value *sequences* that LVP cannot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.indexing import PC_INDEX, IndexFunction

_VALUE_MASK = (1 << 64) - 1


def _hash_history(history: Tuple[int, ...]) -> int:
    """Order-sensitive FNV-style hash of a value history."""
    digest = 0xCBF29CE484222325
    for value in history:
        digest ^= value & _VALUE_MASK
        digest = (digest * 0x100000001B3) & _VALUE_MASK
        digest ^= digest >> 29
    return digest


@dataclass
class _SecondLevelEntry:
    """Value + confidence stored for one (load, history) context."""

    value: int
    confidence: int = 1
    usefulness: int = 1


class FcmPredictor(ValuePredictor):
    """Order-``order`` finite-context-method predictor.

    Args:
        order: Length of the per-load value history used as context.
        confidence_threshold: Matches required before predicting.
        capacity: Bound on second-level entries (least-useful evicted).
        index_function: Load-to-first-level mapping.
    """

    name = "fcm"

    def __init__(
        self,
        order: int = 2,
        confidence_threshold: int = 2,
        capacity: int = 1024,
        index_function: IndexFunction = PC_INDEX,
        max_confidence: int = 15,
    ) -> None:
        super().__init__()
        if order < 1:
            raise PredictorError(f"order must be >= 1, got {order}")
        if confidence_threshold < 1:
            raise PredictorError(
                f"confidence threshold must be >= 1, got {confidence_threshold}"
            )
        self.order = order
        self.confidence_threshold = confidence_threshold
        self.capacity = capacity
        self.index_function = index_function
        self.max_confidence = max_confidence
        self._histories: Dict[int, Deque[int]] = {}
        self._contexts: Dict[Tuple[int, int], _SecondLevelEntry] = {}

    # ------------------------------------------------------------------
    def _context_key(self, index: int) -> Optional[Tuple[int, int]]:
        history = self._histories.get(index)
        if history is None or len(history) < self.order:
            return None
        return (index, _hash_history(tuple(history)))

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        index = self.index_function.index_of(key)
        context_key = self._context_key(index)
        prediction = None
        if context_key is not None:
            entry = self._contexts.get(context_key)
            if entry is not None and entry.confidence >= self.confidence_threshold:
                prediction = Prediction(
                    value=entry.value, confidence=entry.confidence, source=self.name
                )
        return self._record_lookup(prediction)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        index = self.index_function.index_of(key)
        context_key = self._context_key(index)
        if context_key is not None:
            entry = self._contexts.get(context_key)
            if entry is None:
                if len(self._contexts) >= self.capacity:
                    victim = min(
                        self._contexts,
                        key=lambda k: self._contexts[k].usefulness,
                    )
                    del self._contexts[victim]
                    self.stats.evictions += 1
                self._contexts[context_key] = _SecondLevelEntry(value=actual_value)
            elif entry.value == actual_value:
                entry.confidence = min(entry.confidence + 1, self.max_confidence)
                entry.usefulness = min(entry.usefulness + 1, 63)
            else:
                entry.value = actual_value
                entry.confidence = 0
                entry.usefulness = max(entry.usefulness - 1, 0)
        history = self._histories.setdefault(index, deque(maxlen=self.order))
        history.append(actual_value)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self._histories.clear()
        self._contexts.clear()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return (
            tuple(
                (index, tuple(history))
                for index, history in self._histories.items()
            ),
            tuple(
                (key, entry.value, entry.confidence, entry.usefulness)
                for key, entry in self._contexts.items()
            ),
        )

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        histories, contexts = state  # type: ignore[misc]
        self._histories = {
            index: deque(history, maxlen=self.order)
            for index, history in histories
        }
        self._contexts = {
            key: _SecondLevelEntry(
                value=value, confidence=confidence, usefulness=usefulness
            )
            for key, value, confidence, usefulness in contexts
        }
