"""Composite predictors: hybrid selection and prediction filtering.

Extensions modelled on the multi-predictor-and-filter design of Sheikh
and Hower (HPCA 2019, the paper's reference [12]):

* :class:`HybridPredictor` consults several component predictors and
  forwards the most confident prediction.
* :class:`FilteredPredictor` gates an inner predictor so it only
  predicts loads that have missed the cache at least ``min_misses``
  times — a coverage/table-pressure filter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor


class HybridPredictor(ValuePredictor):
    """Forwards the highest-confidence component prediction.

    All components are trained on every load; ties go to the earliest
    component in the sequence, so ordering expresses priority.
    """

    name = "hybrid"

    def __init__(self, components: Sequence[ValuePredictor]) -> None:
        super().__init__()
        if not components:
            raise PredictorError("hybrid predictor needs at least one component")
        self.components: List[ValuePredictor] = list(components)
        self.name = "hybrid(" + "+".join(c.name for c in self.components) + ")"

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        best: Optional[Prediction] = None
        for component in self.components:
            candidate = component.predict(key)
            if candidate is None:
                continue
            if best is None or candidate.confidence > best.confidence:
                best = candidate
        return self._record_lookup(best)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        for component in self.components:
            component.train(key, actual_value, prediction)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        for component in self.components:
            component.reset()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return tuple(component.snapshot() for component in self.components)

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        for component, saved in zip(self.components, state):  # type: ignore[call-overload]
            component.restore(saved)


class FilteredPredictor(ValuePredictor):
    """Predicts only for loads that have missed at least ``min_misses`` times.

    Args:
        inner: The wrapped predictor (trained on every observed load).
        min_misses: Miss-count threshold before predictions are allowed.
        index_function_of_inner: The filter counts misses per inner
            predictor index when the inner predictor exposes an
            ``index_function``; otherwise per load PC.
    """

    def __init__(self, inner: ValuePredictor, min_misses: int = 2) -> None:
        super().__init__()
        if min_misses < 0:
            raise PredictorError(f"min_misses must be >= 0, got {min_misses}")
        self.inner = inner
        self.min_misses = min_misses
        self.name = f"filtered({inner.name},{min_misses})"
        self._miss_counts: Dict[int, int] = {}

    def _filter_key(self, key: AccessKey) -> int:
        index_function = getattr(self.inner, "index_function", None)
        if index_function is not None:
            return index_function.index_of(key)
        return key.pc

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        filter_key = self._filter_key(key)
        count = self._miss_counts.get(filter_key, 0)
        if count < self.min_misses:
            # Still consult (and charge) the inner predictor's stats by
            # skipping it entirely: a filtered load sees no prediction.
            return self._record_lookup(None)
        return self._record_lookup(self.inner.predict(key))

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        filter_key = self._filter_key(key)
        self._miss_counts[filter_key] = self._miss_counts.get(filter_key, 0) + 1
        self.inner.train(key, actual_value, prediction)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self._miss_counts.clear()
        self.inner.reset()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return (self.inner.snapshot(), dict(self._miss_counts))

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        inner_state, miss_counts = state  # type: ignore[misc]
        self.inner.restore(inner_state)
        self._miss_counts = dict(miss_counts)
