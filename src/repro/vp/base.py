"""Value-predictor interfaces.

The pipeline talks to every predictor through two calls, mirroring the
paper's Figure 1:

* :meth:`ValuePredictor.predict` — consulted when a load *misses* in
  the L1 data cache (the paper's threat model is a load-based VPS
  where training and triggering require a cache miss).  Returns a
  :class:`Prediction` or ``None`` ("no prediction"); the paper is the
  first to point out that *no prediction vs. correct prediction* is
  itself an exploitable timing difference.
* :meth:`ValuePredictor.train` — called when the actual value arrives
  from memory (the "Prediction Verification" box of Figure 1).  The
  predictor updates confidence/usefulness/value state.

Predictors receive an :class:`AccessKey` carrying the load PC, the
data's virtual address and the pid; each predictor derives its table
index from the key via an :class:`~repro.vp.indexing.IndexFunction`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AccessKey:
    """Identity of one dynamic load as seen by the VPS.

    Attributes:
        pc: Program counter (virtual instruction address) of the load.
        addr: Virtual address of the data being loaded.
        pid: Process identifier of the issuing process.
    """

    pc: int
    addr: int
    pid: int = 0


@dataclass(frozen=True)
class Prediction:
    """A value prediction produced by :meth:`ValuePredictor.predict`.

    Attributes:
        value: The predicted load value.
        confidence: The entry's confidence counter at prediction time.
        source: Name of the predictor (component) that produced it.
    """

    value: int
    confidence: int
    source: str = "vp"


@dataclass
class PredictorStats:
    """Aggregate counters maintained by every predictor."""

    lookups: int = 0
    predictions: int = 0
    no_predictions: int = 0
    trains: int = 0
    correct: int = 0
    incorrect: int = 0
    evictions: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of lookups that produced a prediction."""
        if self.lookups == 0:
            return 0.0
        return self.predictions / self.lookups

    @property
    def accuracy(self) -> float:
        """Fraction of verified predictions that were correct."""
        verified = self.correct + self.incorrect
        if verified == 0:
            return 0.0
        return self.correct / verified

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.lookups = 0
        self.predictions = 0
        self.no_predictions = 0
        self.trains = 0
        self.correct = 0
        self.incorrect = 0
        self.evictions = 0

    def snapshot(self) -> tuple:
        """Counter values as an immutable tuple (snapshot/fork protocol)."""
        return (self.lookups, self.predictions, self.no_predictions,
                self.trains, self.correct, self.incorrect, self.evictions)

    def restore(self, state: tuple) -> None:
        """Restore counters captured by :meth:`snapshot`."""
        (self.lookups, self.predictions, self.no_predictions, self.trains,
         self.correct, self.incorrect, self.evictions) = state


class ValuePredictor(abc.ABC):
    """Abstract base class of all Value Prediction Systems."""

    #: Human-readable name used in reports.
    name: str = "vp"

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """Predict the value of the load identified by ``key``.

        Returns ``None`` when the predictor is not confident enough —
        the "no prediction" outcome.
        """

    @abc.abstractmethod
    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """Update predictor state with the load's actual value.

        Args:
            key: The load's identity.
            actual_value: The value the memory system returned.
            prediction: The prediction previously issued for this load
                (if any), so the predictor can credit or penalise the
                producing entry.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all predictor state (table contents and histories)."""

    # ------------------------------------------------------------------
    # Snapshot/fork protocol (see :mod:`repro.snapshot`).
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Capture the predictor's full mutable state, cheaply.

        The returned object is opaque; restoring it with
        :meth:`restore` makes the predictor byte-identical to the
        moment of capture.  Predictors that do not implement
        :meth:`_snapshot_state` raise ``NotImplementedError``, which
        the attack runner treats as "fall back to full replay" rather
        than an error.
        """
        return (self._snapshot_state(), self.stats.snapshot())

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`."""
        inner, stats_state = state  # type: ignore[misc]
        self._restore_state(inner)
        self.stats.restore(stats_state)

    def _snapshot_state(self) -> object:
        """Subclass hook: capture everything except ``stats``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/fork"
        )

    def _restore_state(self, state: object) -> None:
        """Subclass hook: restore the :meth:`_snapshot_state` payload."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/fork"
        )

    # ------------------------------------------------------------------
    # Shared accounting helpers for subclasses.
    # ------------------------------------------------------------------
    def _record_lookup(self, prediction: Optional[Prediction]) -> Optional[Prediction]:
        self.stats.lookups += 1
        if prediction is None:
            self.stats.no_predictions += 1
        else:
            self.stats.predictions += 1
        return prediction

    def _record_train(
        self, actual_value: int, prediction: Optional[Prediction]
    ) -> None:
        self.stats.trains += 1
        if prediction is not None:
            if prediction.value == actual_value:
                self.stats.correct += 1
            else:
                self.stats.incorrect += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
