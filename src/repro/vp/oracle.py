"""Oracle target-load predictor wrapper.

The paper's experimental setup uses "an oracle VTAGE" that "makes
predictions only for the target load instruction to maximize the
attacker's advantage" (Section IV-C).  :class:`OracleTargetPredictor`
reproduces that: it wraps any inner predictor, trains it on every
load, but emits predictions only for loads whose PC is in the target
set — isolating the attack's signal from unrelated predictions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor


class OracleTargetPredictor(ValuePredictor):
    """Restricts an inner predictor to a set of target load PCs.

    Args:
        inner: The predictor that actually learns and predicts.
        target_pcs: Load PCs that are allowed to receive predictions.
            The set may be extended later with :meth:`add_target`.
    """

    def __init__(
        self, inner: ValuePredictor, target_pcs: Iterable[int] = ()
    ) -> None:
        super().__init__()
        if inner is None:
            raise PredictorError("oracle wrapper requires an inner predictor")
        self.inner = inner
        self.name = f"oracle({inner.name})"
        self._targets: Set[int] = set(target_pcs)

    def add_target(self, pc: int) -> None:
        """Allow predictions for the load at ``pc``."""
        self._targets.add(pc)

    def remove_target(self, pc: int) -> None:
        """Stop predicting for the load at ``pc``."""
        self._targets.discard(pc)

    @property
    def targets(self) -> Set[int]:
        """The currently allowed target PCs."""
        return set(self._targets)

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        if key.pc not in self._targets:
            # The inner predictor is not consulted at all: an oracle
            # suppressed load behaves exactly like "no prediction".
            return self._record_lookup(None)
        return self._record_lookup(self.inner.predict(key))

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        self.inner.train(key, actual_value, prediction)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.inner.reset()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return (self.inner.snapshot(), frozenset(self._targets))

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        inner_state, targets = state  # type: ignore[misc]
        self.inner.restore(inner_state)
        self._targets = set(targets)
