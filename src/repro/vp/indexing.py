"""VPS index functions.

Per the paper's threat model (Section II), predictors are broadly
**PC-based** (index = program counter of the load) or
**data-address-based** (index = virtual address of the accessed data).
The index "can also incorporate other information, such as a process
identifier, pid, if the value predictor uses that for indexing" —
using the pid makes cross-process collisions impossible without a
shared library, which "only increases difficulties for attacks but
does not eliminate it" (footnote 5).

Using only a subset of the address bits is possible but "will
introduce conflicts between different addresses"; :class:`IndexFunction`
supports both the full-address form used by recent predictors and a
masked form so the conflict behaviour can be studied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import PredictorError
from repro.vp.base import AccessKey


class IndexSource(enum.Enum):
    """What part of the access identifies the predictor entry."""

    PC = "pc"
    DATA_ADDRESS = "data-address"


@dataclass(frozen=True)
class IndexFunction:
    """Maps an :class:`~repro.vp.base.AccessKey` to a table index.

    Attributes:
        source: PC-based or data-address-based indexing.
        include_pid: Mix the pid into the index.  When False (the
            default, matching "many known value predictors"), loads
            from different processes at the same virtual PC or address
            collide — the property the cross-process attacks rely on.
        bits: If set, keep only the low ``bits`` bits of the source
            address, introducing aliasing between distant addresses.
    """

    source: IndexSource = IndexSource.PC
    include_pid: bool = False
    bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bits is not None and self.bits < 1:
            raise PredictorError(f"index bits must be >= 1, got {self.bits}")

    def index_of(self, key: AccessKey) -> int:
        """The table index for ``key``."""
        if self.source is IndexSource.PC:
            base = key.pc
        else:
            base = key.addr
        if self.bits is not None:
            base &= (1 << self.bits) - 1
        if self.include_pid:
            # Keep pid bits disjoint from (possibly masked) address bits.
            shift = self.bits if self.bits is not None else 56
            base |= (key.pid + 1) << shift
        return base

    def collides(self, first: AccessKey, second: AccessKey) -> bool:
        """True if the two accesses map to the same predictor entry."""
        return self.index_of(first) == self.index_of(second)

    def describe(self) -> str:
        """Short human-readable description for reports."""
        parts = [self.source.value]
        if self.bits is not None:
            parts.append(f"{self.bits}b")
        if self.include_pid:
            parts.append("pid")
        return "+".join(parts)


#: The default indexing used throughout the paper's PoCs: full PC, no pid.
PC_INDEX = IndexFunction(source=IndexSource.PC, include_pid=False)

#: Data-address-based indexing, no pid.
DATA_ADDRESS_INDEX = IndexFunction(source=IndexSource.DATA_ADDRESS, include_pid=False)

#: PC-based indexing that also mixes in the pid (hardened variant).
PC_PID_INDEX = IndexFunction(source=IndexSource.PC, include_pid=True)
