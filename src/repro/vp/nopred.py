"""The "no VP" baseline: a predictor that never predicts.

Used for the paper's control experiments (the left column of
Figures 5 and 8 and the "No VP" columns of Table III): with this
predictor installed, mapped and unmapped timing distributions must be
statistically indistinguishable.
"""

from __future__ import annotations

from typing import Optional

from repro.vp.base import AccessKey, Prediction, ValuePredictor


class NoPredictor(ValuePredictor):
    """Always returns "no prediction" and learns nothing."""

    name = "no-vp"

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        return self._record_lookup(None)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        pass

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return None

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        pass
