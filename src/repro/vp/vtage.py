"""VTAGE value predictor (Perais & Seznec, HPCA 2014).

VTAGE couples a tagless last-value base component with several tagged
components indexed by the load PC hashed with increasingly long
slices of a global history register; the longest-history matching
component with sufficient confidence provides the prediction.

Deviation from the original: VTAGE uses the global *branch* history;
our programs are straight-line (control flow is resolved statically),
so the global history register here tracks hashes of recently
committed load values instead.  The structure, allocation and
confidence mechanics follow the original, which is what matters for
the paper's Section IV-D3 finding that the attacks work on VTAGE as
well as LVP (the attack loads are history-stable during train/trigger,
so they behave the same under either history definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PredictorError
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.indexing import PC_INDEX, IndexFunction
from repro.vp.table import VpTable

_VALUE_MASK = (1 << 64) - 1


def _mix(*values: int) -> int:
    """Deterministic hash combiner for component indices and tags."""
    digest = 0x9E3779B97F4A7C15
    for value in values:
        digest ^= value & _VALUE_MASK
        digest = (digest * 0xC2B2AE3D27D4EB4F) & _VALUE_MASK
        digest ^= digest >> 31
    return digest


@dataclass
class _TaggedEntry:
    """Entry of one tagged VTAGE component."""

    tag: int
    value: int
    confidence: int = 0
    usefulness: int = 0


class _TaggedComponent:
    """A direct-mapped tagged component with 2^log_size entries."""

    def __init__(self, log_size: int, history_length: int, tag_bits: int) -> None:
        self.size = 1 << log_size
        self.history_length = history_length
        self.tag_bits = tag_bits
        self.entries: Dict[int, _TaggedEntry] = {}

    def index_and_tag(self, pc_index: int, history: int) -> Tuple[int, int]:
        """Index and tag."""
        folded = history & ((1 << (4 * self.history_length)) - 1)
        digest = _mix(pc_index, folded, self.history_length)
        return digest % self.size, (digest >> 20) & ((1 << self.tag_bits) - 1)

    def lookup(self, pc_index: int, history: int) -> Optional[_TaggedEntry]:
        """Tag-checked lookup; None on a miss or tag mismatch."""
        slot, tag = self.index_and_tag(pc_index, history)
        entry = self.entries.get(slot)
        if entry is not None and entry.tag == tag:
            return entry
        return None

    def allocate(self, pc_index: int, history: int, value: int) -> bool:
        """Try to allocate; only replaces entries with zero usefulness."""
        slot, tag = self.index_and_tag(pc_index, history)
        entry = self.entries.get(slot)
        if entry is None or entry.usefulness == 0:
            self.entries[slot] = _TaggedEntry(tag=tag, value=value)
            return True
        entry.usefulness -= 1
        return False


class VtagePredictor(ValuePredictor):
    """The VTAGE predictor.

    Args:
        confidence_threshold: Confidence needed for any component
            (base or tagged) to provide a prediction.
        base_capacity: Entries in the tagless base (last-value) table.
        history_lengths: Geometric history lengths of the tagged
            components (shortest first).
        log_component_size: log2 of each tagged component's entry count.
        index_function: PC mapping for the base component and the
            component hash inputs.
    """

    name = "vtage"

    def __init__(
        self,
        confidence_threshold: int = 4,
        base_capacity: int = 256,
        history_lengths: Sequence[int] = (2, 4, 8, 16),
        log_component_size: int = 7,
        tag_bits: int = 12,
        max_confidence: int = 15,
        index_function: IndexFunction = PC_INDEX,
    ) -> None:
        super().__init__()
        if confidence_threshold < 1:
            raise PredictorError(
                f"confidence threshold must be >= 1, got {confidence_threshold}"
            )
        if not history_lengths or list(history_lengths) != sorted(history_lengths):
            raise PredictorError(
                "history_lengths must be a non-empty increasing sequence"
            )
        self.confidence_threshold = confidence_threshold
        self.max_confidence = max_confidence
        self.index_function = index_function
        self.base = VpTable(capacity=base_capacity)
        self.components: List[_TaggedComponent] = [
            _TaggedComponent(log_component_size, length, tag_bits)
            for length in history_lengths
        ]
        self._history = 0
        # Remember, per prediction, which component provided it so the
        # update can credit/penalise the right entry.
        self._last_provider: Dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------
    def _provider(self, pc_index: int) -> Tuple[Optional[int], Optional[_TaggedEntry]]:
        """Longest-history matching tagged component, if any."""
        for component_number in reversed(range(len(self.components))):
            entry = self.components[component_number].lookup(pc_index, self._history)
            if entry is not None:
                return component_number, entry
        return None, None

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        """See :meth:`repro.vp.base.ValuePredictor.predict`."""
        pc_index = self.index_function.index_of(key)
        component_number, entry = self._provider(pc_index)
        prediction: Optional[Prediction] = None
        if entry is not None and entry.confidence >= self.confidence_threshold:
            prediction = Prediction(
                value=entry.value,
                confidence=entry.confidence,
                source=f"{self.name}:t{component_number}",
            )
            self._last_provider[pc_index] = component_number
        else:
            base_entry = self.base.get(pc_index)
            if (
                base_entry is not None
                and base_entry.confidence >= self.confidence_threshold
            ):
                prediction = Prediction(
                    value=base_entry.value,
                    confidence=base_entry.confidence,
                    source=f"{self.name}:base",
                )
            self._last_provider[pc_index] = None
        return self._record_lookup(prediction)

    def train(
        self,
        key: AccessKey,
        actual_value: int,
        prediction: Optional[Prediction] = None,
    ) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.train`."""
        self._record_train(actual_value, prediction)
        pc_index = self.index_function.index_of(key)

        # Update the tagged provider (or the matching entry) first.
        component_number, entry = self._provider(pc_index)
        mispredicted = prediction is not None and prediction.value != actual_value
        if entry is not None:
            if entry.value == actual_value:
                entry.confidence = min(entry.confidence + 1, self.max_confidence)
                entry.usefulness = min(entry.usefulness + 1, 3)
            else:
                entry.value = actual_value
                entry.confidence = 0
                entry.usefulness = max(entry.usefulness - 1, 0)

        # Base component behaves like LVP.
        base_entry = self.base.get(pc_index)
        if base_entry is None:
            self.base.insert(pc_index, actual_value)
            base_correct = False
        else:
            base_correct = base_entry.observe(
                actual_value, max_confidence=self.max_confidence
            )

        # On a misprediction (or an unconfident base), try to allocate
        # the load into a longer-history tagged component.
        if mispredicted or (entry is None and not base_correct):
            start = (component_number + 1) if component_number is not None else 0
            for number in range(start, len(self.components)):
                if self.components[number].allocate(
                    pc_index, self._history, actual_value
                ):
                    break

        # Advance the global history with a hash of the observed value.
        self._history = ((self._history << 4) | (_mix(actual_value) & 0xF)) & (
            (1 << 64) - 1
        )
        self._last_provider.pop(pc_index, None)

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.base.clear()
        for component in self.components:
            component.entries.clear()
        self._history = 0
        self._last_provider.clear()

    def _snapshot_state(self) -> object:
        """See :meth:`repro.vp.base.ValuePredictor._snapshot_state`."""
        return (
            self.base.capture_state(),
            tuple(
                tuple(
                    (slot, entry.tag, entry.value, entry.confidence,
                     entry.usefulness)
                    for slot, entry in component.entries.items()
                )
                for component in self.components
            ),
            self._history,
            tuple(self._last_provider.items()),
        )

    def _restore_state(self, state: object) -> None:
        """See :meth:`repro.vp.base.ValuePredictor._restore_state`."""
        base_state, components, history, providers = state  # type: ignore[misc]
        self.base.restore_state(base_state)
        for component, entries in zip(self.components, components):
            component.entries = {
                slot: _TaggedEntry(
                    tag=tag, value=value, confidence=confidence,
                    usefulness=usefulness,
                )
                for slot, tag, value, confidence, usefulness in entries
            }
        self._history = history
        self._last_provider = dict(providers)
