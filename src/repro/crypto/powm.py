"""Modular exponentiation with the libgcrypt structure of Figure 6.

``powm`` is a left-to-right square-and-multiply with the two
properties the paper's case study relies on:

* the multiply is **unconditional** ("unconditional multiply if
  exponent is secret to mitigate FLUSH+RELOAD") — the classic cache
  side channel is closed; and
* the **pointer swap** (``tp = rp; rp = xp; xp = tp``) still happens
  only when the exponent bit is 1 (Figure 6 lines 16-20).  The *index*
  of that conditional ``tp`` access is what the value-predictor attack
  leaks, one bit per loop iteration (Figure 7).

The function returns both the result and a per-iteration trace that
records whether the swap executed — the ground truth the key-recovery
evaluation scores against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.mpi import Mpi, ONE
from repro.errors import CryptoError


@dataclass(frozen=True)
class PowmIteration:
    """Ground-truth record of one square-and-multiply iteration.

    Attributes:
        bit_index: Exponent bit position (MSB first, 0 = first
            processed bit).
        e_bit: The exponent bit value.
        swapped: Whether the conditional pointer swap executed
            (always equals ``e_bit`` — recorded separately because it
            is the *microarchitectural* event the attack observes).
    """

    bit_index: int
    e_bit: int
    swapped: bool


def exponent_bits(exponent: Mpi) -> List[int]:
    """The exponent's bits, most significant first."""
    value = exponent.to_int()
    if value == 0:
        return []
    return [int(bit) for bit in bin(value)[2:]]


def powm(base: Mpi, exponent: Mpi, modulus: Mpi) -> Tuple[Mpi, List[PowmIteration]]:
    """Compute ``base ** exponent mod modulus``; also return the trace.

    Raises:
        CryptoError: For a zero modulus.
    """
    if modulus.is_zero():
        raise CryptoError("powm requires a non-zero modulus")
    base = base.mod(modulus)
    rp = ONE.mod(modulus)  # result pointer ("rp" in Figure 6)
    trace: List[PowmIteration] = []
    for bit_index, e_bit in enumerate(exponent_bits(exponent)):
        # _gcry_mpih_sqr_n_basecase(xp, rp): square into the scratch.
        xp = rp.sqr().mod(modulus)
        # Unconditional multiply (FLUSH+RELOAD mitigation): computed
        # whether or not the bit uses it.
        multiplied = xp.mul(base).mod(modulus)
        if e_bit:
            # tp = rp; rp = xp; xp = tp — the conditional swap whose
            # access index the value predictor leaks.
            rp = multiplied
            swapped = True
        else:
            rp = xp
            swapped = False
        trace.append(
            PowmIteration(bit_index=bit_index, e_bit=e_bit, swapped=swapped)
        )
    return rp, trace


def powm_int(base: int, exponent: int, modulus: int) -> int:
    """Integer convenience wrapper around :func:`powm`."""
    result, _ = powm(
        Mpi.from_int(base), Mpi.from_int(exponent), Mpi.from_int(modulus)
    )
    return result.to_int()


def powm_base_blinded(
    base: Mpi,
    exponent: Mpi,
    modulus: Mpi,
    blinding_factor: Mpi,
) -> Tuple[Mpi, List[PowmIteration]]:
    """Base-blinded modular exponentiation.

    Message/base blinding computes ``(base * r) ** e mod m`` on a fresh
    random ``r`` each invocation and unblinds the result with
    ``r^-e``; here the caller supplies ``r`` and receives the *blinded*
    result plus the iteration trace (unblinding needs the modular
    inverse, which the attack neither has nor needs).

    The point the paper makes in Section IV-D1: blinding randomises the
    *data* flowing through the multiply, but the conditional swap
    pattern still follows the constant secret exponent bit for bit —
    so the value-predictor attack's per-iteration observable is
    untouched.  "It is not possible to extract the blinding factor, as
    it is random each time, while the secret is constant and gets
    trained into the value predictor."

    Raises:
        CryptoError: For a zero modulus or a blinding factor that is
            zero modulo the modulus.
    """
    if modulus.is_zero():
        raise CryptoError("powm requires a non-zero modulus")
    blinded_base = base.mul(blinding_factor).mod(modulus)
    if blinded_base.is_zero() and not base.is_zero():
        raise CryptoError("blinding factor must be non-zero modulo m")
    return powm(blinded_base, exponent, modulus)
