"""Compile powm iterations into victim programs for the simulator.

The RSA case study (Figures 6 and 7) runs the victim's modular
exponentiation on the simulated core, one loop iteration at a time.
Each iteration's program contains:

* the *unconditional* work — limb loads of the operands feeding the
  square and multiply, plus multiply ALU traffic — identical for both
  bit values (the FLUSH+RELOAD hardening), and
* the *conditional swap block* (Figure 6 lines 16-20): loads/stores of
  the ``tp``/``rp``/``xp`` pointer variables, emitted **only when the
  exponent bit is 1**, with the ``tp`` load pinned at a fixed PC.

That pinned load is the attack surface: the receiver's Train + Test
instance collides with its VPS index, so whether the entry was
touched during an iteration reveals the bit.  The swap block flushes
the pointer line first, standing in for the attacker-driven cache
thrashing the threat model allows ("the miss ... can be forced by a
malicious attacker that invalidates or flushes the cache").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crypto.mpi import Mpi
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AluOp
from repro.isa.program import Program
from repro.errors import CryptoError


@dataclass(frozen=True)
class RsaLayout:
    """Address/PC plan for the RSA victim and its attacker.

    Attributes:
        swap_pc: PC of the victim's conditional ``tp`` load — the
            predictor index the attacker collides with.
        victim_base_pc: Base of the victim's per-iteration code.
        attacker_base_pc: Base of the attacker's train/trigger code.
        pointer_addr: Address of the ``tp`` pointer variable.
        limb_base: Base address of the victim's operand limbs.
        attacker_addr: The attacker's own known-data address.
        victim_pid / attacker_pid: Process identifiers.
    """

    swap_pc: int = 0x2000
    victim_base_pc: int = 0x800
    attacker_base_pc: int = 0x200
    pointer_addr: int = 0x300000
    limb_base: int = 0x310000
    attacker_addr: int = 0x320000
    victim_pid: int = 1
    attacker_pid: int = 2


def victim_iteration_program(
    e_bit: int,
    layout: RsaLayout,
    work_loads: int = 8,
    work_muls: int = 6,
    iteration: int = 0,
) -> Program:
    """The victim's program for one square-and-multiply iteration.

    Args:
        e_bit: This iteration's exponent bit (drives the swap block).
        layout: Address/PC plan.
        work_loads: Limb loads modelling the square+multiply operand
            traffic (unconditional, identical for both bit values).
        work_muls: Dependent multiplies modelling the arithmetic.
        iteration: Iteration number (names the program in traces).

    Raises:
        CryptoError: If ``e_bit`` is not 0 or 1.
    """
    if e_bit not in (0, 1):
        raise CryptoError(f"e_bit must be 0 or 1, got {e_bit}")
    builder = ProgramBuilder(
        f"powm-iter{iteration}-bit{e_bit}",
        pid=layout.victim_pid,
        base_pc=layout.victim_base_pc,
    )
    # Unconditional square + multiply work (Figure 6 lines 9-15):
    # stream the operand limbs and feed a multiply chain.
    for index in range(work_loads):
        builder.load(4, imm=layout.limb_base + index * 64, tag="limb-load")
    builder.li(5, 3)
    for _ in range(work_muls):
        builder.alu(AluOp.MUL, 5, 5, src2=4, tag="mul-work")
    builder.fence()
    if e_bit:
        # The conditional swap (Figure 6 lines 16-20).  The pointer
        # line is cold (attacker-forced eviction), so the load misses
        # and touches the Value Prediction System at swap_pc.
        builder.flush(imm=layout.pointer_addr)
        builder.fence()
        builder.pin_pc(layout.swap_pc)
        builder.load(7, imm=layout.pointer_addr, tag="swap-load")  # tp = rp
        builder.store(7, imm=layout.pointer_addr + 8)              # rp = xp
        builder.fence()
    return builder.build()


def victim_programs_for_exponent(
    exponent: Mpi,
    layout: RsaLayout,
    work_loads: int = 8,
    work_muls: int = 6,
) -> List[Program]:
    """One victim program per exponent bit, MSB first."""
    from repro.crypto.powm import exponent_bits

    return [
        victim_iteration_program(
            bit, layout, work_loads=work_loads, work_muls=work_muls,
            iteration=index,
        )
        for index, bit in enumerate(exponent_bits(exponent))
    ]
