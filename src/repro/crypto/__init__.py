"""libgcrypt-style RSA victim and the exponent-leak case study."""

from repro.crypto.compile import RsaLayout, victim_iteration_program
from repro.crypto.keyrec import (
    BitEstimate,
    brute_force_budget,
    majority_vote,
    reconstruct_exponent,
    uncertain_positions,
)
from repro.crypto.leak import RsaAttackConfig, RsaAttackResult, RsaVpAttack
from repro.crypto.mpi import LIMB_BITS, Mpi
from repro.crypto.powm import (
    PowmIteration,
    exponent_bits,
    powm,
    powm_base_blinded,
    powm_int,
)

__all__ = [
    "BitEstimate",
    "LIMB_BITS",
    "Mpi",
    "PowmIteration",
    "RsaAttackConfig",
    "RsaAttackResult",
    "RsaLayout",
    "RsaVpAttack",
    "brute_force_budget",
    "exponent_bits",
    "majority_vote",
    "powm",
    "powm_base_blinded",
    "powm_int",
    "reconstruct_exponent",
    "uncertain_positions",
    "victim_iteration_program",
]
