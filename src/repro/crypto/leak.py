"""The end-to-end RSA exponent-leak attack (Figures 6 and 7).

Per exponent bit, the attacker runs a Train + Test instance around the
victim's square-and-multiply iteration:

1. **train** — the attacker trains the VPS entry at the victim's swap
   PC with its own known data (``confidence`` accesses);
2. the **victim iteration** executes; iff the exponent bit is 1, its
   conditional swap load collides with that entry and re-trains it;
3. **trigger** — the attacker's timed access observes a correct
   prediction (fast, bit 0) or a mis/no prediction (slow, bit 1).

The attacker calibrates its decision threshold by running the same
code against its *own* copy of the library with known bits — exactly
what a real attacker can do — and then decodes the victim's bits from
the per-iteration timings (the bands of Figure 7).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.channels import ThresholdDecoder
from repro.crypto.compile import RsaLayout, victim_iteration_program
from repro.crypto.mpi import Mpi
from repro.crypto.powm import exponent_bits
from repro.errors import CryptoError
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.perf.counters import COUNTERS
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.snapshot import restore_machine, snapshot_machine
from repro.stats.bandwidth import success_rate, transmission_rate_kbps
from repro.vp.lvp import LastValuePredictor
from repro.workloads import gadgets


@dataclass
class RsaAttackConfig:
    """Configuration of the RSA exponent-recovery attack.

    The default memory model is the *quiet* (low-jitter) configuration:
    Figure 7's per-iteration observations form two tight bands, which
    corresponds to a lightly loaded machine; the attacker can always
    repeat noisy runs (majority voting is evaluated separately in
    :mod:`repro.crypto.keyrec`).

    ``snapshot_leaks`` opts :meth:`RsaVpAttack.run_repeated` into the
    snapshot engine: the calibration prologue (the shared ``powm``
    setup every leak pass replays) runs once, its post-calibration
    machine state is captured via :mod:`repro.snapshot`, and each leak
    pass forks from the capture with only the jitter streams re-seeded
    — byte-identical to replaying calibration cold for every pass.
    """

    confidence: int = 4
    chain_length: int = 60
    calibration_runs: int = 8
    seed: int = 0
    sync_phase_cycles: int = 25_000
    sync_base_cycles: int = 190_000
    max_trial_cycles: Optional[int] = None
    snapshot_leaks: bool = False
    layout: RsaLayout = field(default_factory=RsaLayout)
    memory_config: Optional[MemoryConfig] = None
    core_config: Optional[CoreConfig] = None


@dataclass
class RsaAttackResult:
    """Outcome of one exponent-recovery run."""

    observations: List[float]
    decoded_bits: List[int]
    true_bits: List[int]
    threshold: float
    success_rate: float
    transmission_rate_kbps: float

    @property
    def recovered_exponent(self) -> int:
        """The exponent the attacker reconstructed."""
        value = 0
        for bit in self.decoded_bits:
            value = (value << 1) | bit
        return value


class RsaVpAttack:
    """Runs the per-iteration Train + Test attack over a whole exponent."""

    def __init__(self, config: Optional[RsaAttackConfig] = None) -> None:
        self.config = config or RsaAttackConfig()

    # ------------------------------------------------------------------
    def _fresh_core(self, seed: int) -> Core:
        memory_config = self.config.memory_config or MemoryConfig()
        memory_config = MemoryConfig(
            **{**memory_config.__dict__, "seed": seed}
        )
        memory = MemorySystem(memory_config)
        predictor = LastValuePredictor(
            confidence_threshold=self.config.confidence
        )
        core_config = self.config.core_config or CoreConfig()
        if self.config.max_trial_cycles is not None:
            core_config = dataclasses.replace(
                core_config, max_cycles=self.config.max_trial_cycles
            )
        return Core(memory, predictor, core_config)

    def _train_program(self):
        layout = self.config.layout
        return gadgets.train_program(
            "rsa-train", layout.attacker_pid, layout.attacker_base_pc,
            layout.swap_pc, layout.attacker_addr, self.config.confidence,
        )

    def _trigger_program(self):
        layout = self.config.layout
        return gadgets.timed_trigger_program(
            "rsa-trigger", layout.attacker_pid, layout.attacker_base_pc,
            layout.swap_pc, layout.attacker_addr, self.config.chain_length,
        )

    def observe_iteration(self, core: Core, e_bit: int, iteration: int) -> float:
        """Train, run one victim iteration, trigger; returns the timing."""
        core.run(self._train_program())
        core.run(victim_iteration_program(
            e_bit, self.config.layout, iteration=iteration
        ))
        result = core.run(self._trigger_program())
        return float(result.rdtsc_delta())

    # ------------------------------------------------------------------
    def calibrate(self, core: Core) -> ThresholdDecoder:
        """Derive the decode threshold from attacker-known bits.

        The attacker replays the victim code path with bits it chose
        itself (it has the library's source, per the threat model).
        """
        fast: List[float] = []
        slow: List[float] = []
        for run in range(self.config.calibration_runs):
            fast.append(self.observe_iteration(core, 0, iteration=-1))
            slow.append(self.observe_iteration(core, 1, iteration=-1))
        return ThresholdDecoder.calibrate(fast, slow, slow_means_one=True)

    def _leak_pass(self, core: Core, decoder: ThresholdDecoder,
                   bits: List[int]) -> RsaAttackResult:
        """Observe + decode every bit on an already-calibrated machine."""
        observations: List[float] = []
        start_cycle = core.cycle
        for index, e_bit in enumerate(bits):
            observations.append(self.observe_iteration(core, e_bit, index))
        sim_cycles = core.cycle - start_cycle
        decoded = [decoder.decode(value) for value in observations]
        # Three hand-offs per bit (train / victim / trigger) plus the
        # per-bit scheduling overhead, charged to rate reporting only.
        overhead = len(bits) * (
            self.config.sync_base_cycles + 3 * self.config.sync_phase_cycles
        )
        clock = (self.config.core_config or CoreConfig()).clock_ghz
        rate = transmission_rate_kbps(
            len(bits), sim_cycles + overhead, clock
        )
        return RsaAttackResult(
            observations=observations,
            decoded_bits=decoded,
            true_bits=bits,
            threshold=decoder.threshold,
            success_rate=success_rate(decoded, bits),
            transmission_rate_kbps=rate,
        )

    def run(self, exponent: Mpi) -> RsaAttackResult:
        """Recover every bit of ``exponent`` from one pass.

        Raises:
            CryptoError: For a zero exponent (no bits to leak).
        """
        bits = exponent_bits(exponent)
        if not bits:
            raise CryptoError("exponent must be non-zero")
        core = self._fresh_core(self.config.seed)
        decoder = self.calibrate(core)
        return self._leak_pass(core, decoder, bits)

    def _leak_seed(self, index: int) -> int:
        """Jitter seed of the ``index``-th repeated leak pass."""
        return self.config.seed * 1_000_003 + 104_729 + index

    def run_repeated(self, exponent: Mpi, n_leaks: int) -> List[RsaAttackResult]:
        """Repeated leak passes sharing one calibration prologue.

        Feeds :func:`repro.crypto.keyrec.majority_vote`: every pass
        replays the same calibrated attack with a different jitter
        seed.  With :attr:`RsaAttackConfig.snapshot_leaks` the
        calibration runs once and each pass forks from the captured
        post-calibration machine; otherwise calibration is replayed
        cold per pass.  Both paths observe identical machine state and
        jitter streams, so their results are byte-identical.

        Raises:
            CryptoError: For a zero exponent or ``n_leaks < 1``.
        """
        bits = exponent_bits(exponent)
        if not bits:
            raise CryptoError("exponent must be non-zero")
        if n_leaks < 1:
            raise CryptoError(f"n_leaks must be >= 1, got {n_leaks}")
        snapshot = None
        core: Optional[Core] = None
        decoder: Optional[ThresholdDecoder] = None
        if self.config.snapshot_leaks:
            core = self._fresh_core(self.config.seed)
            decoder = self.calibrate(core)
            try:
                snapshot = snapshot_machine(core.memory, core)
            except NotImplementedError:
                snapshot = None
            else:
                COUNTERS.snapshot_bytes_copied += snapshot.approx_bytes
        results: List[RsaAttackResult] = []
        for index in range(n_leaks):
            if snapshot is not None:
                assert core is not None and decoder is not None
                restore_machine(core.memory, core, snapshot)
                COUNTERS.snapshot_forks += 1
                COUNTERS.snapshot_prologue_hits += 1
                COUNTERS.snapshot_cycles_avoided += snapshot.cycle
                COUNTERS.snapshot_bytes_copied += snapshot.approx_bytes
            else:
                COUNTERS.snapshot_prologue_misses += 1
                core = self._fresh_core(self.config.seed)
                decoder = self.calibrate(core)
            core.memory.reseed_jitter(self._leak_seed(index))
            results.append(self._leak_pass(core, decoder, bits))
        return results
