"""Key reconstruction from leaked exponent bits.

The paper notes a 95.7 % per-bit success rate "is enough to
reconstruct the full key based on prior work [6]".  This module
provides the standard practical mechanisms: majority voting over
repeated leak runs, and identification of the (few) low-confidence
positions a brute-force pass would need to cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CryptoError


@dataclass(frozen=True)
class BitEstimate:
    """Aggregated evidence for one exponent bit position.

    Attributes:
        position: Bit index (MSB first).
        ones: Number of runs that decoded a 1.
        total: Number of runs observed.
    """

    position: int
    ones: int
    total: int

    @property
    def value(self) -> int:
        """Majority-vote bit (ties decode to 1)."""
        return int(self.ones * 2 >= self.total)

    @property
    def confidence(self) -> float:
        """Majority fraction in [0.5, 1.0]."""
        majority = max(self.ones, self.total - self.ones)
        return majority / self.total


def majority_vote(runs: Sequence[Sequence[int]]) -> List[BitEstimate]:
    """Combine several decoded bit strings into per-position estimates.

    Raises:
        CryptoError: If runs are empty or lengths differ.
    """
    if not runs:
        raise CryptoError("majority vote requires at least one run")
    length = len(runs[0])
    if any(len(run) != length for run in runs):
        raise CryptoError("all runs must decode the same number of bits")
    estimates = []
    for position in range(length):
        ones = sum(run[position] for run in runs)
        estimates.append(
            BitEstimate(position=position, ones=ones, total=len(runs))
        )
    return estimates


def reconstruct_exponent(estimates: Sequence[BitEstimate]) -> int:
    """The exponent value implied by the majority-vote bits."""
    value = 0
    for estimate in estimates:
        value = (value << 1) | estimate.value
    return value


def uncertain_positions(
    estimates: Sequence[BitEstimate], threshold: float = 0.75
) -> List[int]:
    """Positions whose confidence falls below ``threshold``.

    These are the candidates a brute-force completion (the "prior
    work [6]" step) would enumerate.
    """
    if not 0.5 <= threshold <= 1.0:
        raise CryptoError(f"threshold must be in [0.5, 1], got {threshold}")
    return [
        estimate.position
        for estimate in estimates
        if estimate.confidence < threshold
    ]


def brute_force_budget(
    estimates: Sequence[BitEstimate], threshold: float = 0.75
) -> int:
    """Number of candidate exponents after fixing confident bits (2^k)."""
    return 2 ** len(uncertain_positions(estimates, threshold=threshold))
