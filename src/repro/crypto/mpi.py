"""Multi-precision integers (MPI), libgcrypt-style.

A small limb-based bignum supporting exactly what
``_gcry_mpi_powm`` needs: comparison, addition, subtraction,
schoolbook multiplication and squaring, and modular reduction.  The
limb layout is little-endian with 16-bit limbs (small limbs keep the
per-operation load counts interesting for the attack model while the
arithmetic stays honest).

The arithmetic is implemented at limb granularity — the values the
paper's attack extracts are what these limb arrays hold — and verified
against Python's native integers in the test suite.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import CryptoError

#: Bits per limb.
LIMB_BITS = 16

#: Limb modulus.
LIMB_BASE = 1 << LIMB_BITS

#: Limb mask.
LIMB_MASK = LIMB_BASE - 1


class Mpi:
    """An arbitrary-precision non-negative integer with 16-bit limbs.

    Instances are immutable; arithmetic returns new objects.  The
    public API mirrors the subset of libgcrypt's ``mpi`` used by
    modular exponentiation.
    """

    __slots__ = ("_limbs",)

    def __init__(self, limbs: Iterable[int] = ()) -> None:
        normalized: List[int] = []
        for limb in limbs:
            if not 0 <= limb < LIMB_BASE:
                raise CryptoError(f"limb {limb:#x} out of range")
            normalized.append(limb)
        while normalized and normalized[-1] == 0:
            normalized.pop()
        self._limbs: Tuple[int, ...] = tuple(normalized)

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_int(cls, value: int) -> "Mpi":
        """Build an MPI from a non-negative Python integer."""
        if value < 0:
            raise CryptoError("MPI values are non-negative")
        limbs = []
        while value:
            limbs.append(value & LIMB_MASK)
            value >>= LIMB_BITS
        return cls(limbs)

    def to_int(self) -> int:
        """The Python integer this MPI represents."""
        value = 0
        for limb in reversed(self._limbs):
            value = (value << LIMB_BITS) | limb
        return value

    @property
    def limbs(self) -> Tuple[int, ...]:
        """Little-endian limb tuple (no trailing zeros)."""
        return self._limbs

    @property
    def nlimbs(self) -> int:
        """Number of significant limbs."""
        return len(self._limbs)

    def bit_length(self) -> int:
        """Number of significant bits."""
        if not self._limbs:
            return 0
        return (len(self._limbs) - 1) * LIMB_BITS + self._limbs[-1].bit_length()

    def is_zero(self) -> bool:
        """True when the value is zero."""
        return not self._limbs

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mpi):
            return NotImplemented
        return self._limbs == other._limbs

    def __hash__(self) -> int:
        return hash(self._limbs)

    def compare(self, other: "Mpi") -> int:
        """-1, 0 or 1 as self <, ==, > other."""
        if len(self._limbs) != len(other._limbs):
            return -1 if len(self._limbs) < len(other._limbs) else 1
        for mine, theirs in zip(reversed(self._limbs), reversed(other._limbs)):
            if mine != theirs:
                return -1 if mine < theirs else 1
        return 0

    def __lt__(self, other: "Mpi") -> bool:
        return self.compare(other) < 0

    # ------------------------------------------------------------------
    # Arithmetic (limb level)
    # ------------------------------------------------------------------
    def add(self, other: "Mpi") -> "Mpi":
        """Limb-wise addition with carry propagation."""
        result: List[int] = []
        carry = 0
        longer = max(len(self._limbs), len(other._limbs))
        for index in range(longer):
            total = carry
            if index < len(self._limbs):
                total += self._limbs[index]
            if index < len(other._limbs):
                total += other._limbs[index]
            result.append(total & LIMB_MASK)
            carry = total >> LIMB_BITS
        if carry:
            result.append(carry)
        return Mpi(result)

    def sub(self, other: "Mpi") -> "Mpi":
        """Limb-wise subtraction (requires self >= other)."""
        if self.compare(other) < 0:
            raise CryptoError("MPI subtraction would underflow")
        result: List[int] = []
        borrow = 0
        for index in range(len(self._limbs)):
            total = self._limbs[index] - borrow
            if index < len(other._limbs):
                total -= other._limbs[index]
            if total < 0:
                total += LIMB_BASE
                borrow = 1
            else:
                borrow = 0
            result.append(total)
        return Mpi(result)

    def mul(self, other: "Mpi") -> "Mpi":
        """Schoolbook multiplication (``_gcry_mpih_mul``)."""
        if self.is_zero() or other.is_zero():
            return Mpi()
        result = [0] * (len(self._limbs) + len(other._limbs))
        for i, a in enumerate(self._limbs):
            carry = 0
            for j, b in enumerate(other._limbs):
                total = result[i + j] + a * b + carry
                result[i + j] = total & LIMB_MASK
                carry = total >> LIMB_BITS
            result[i + len(other._limbs)] += carry
        return Mpi(result)

    def sqr(self) -> "Mpi":
        """Squaring (``_gcry_mpih_sqr_n_basecase``).

        Uses the symmetric-term optimisation (each cross product
        counted once, then doubled) rather than delegating to
        :meth:`mul`.
        """
        if self.is_zero():
            return Mpi()
        n = len(self._limbs)
        result = [0] * (2 * n)
        # Cross terms a_i * a_j (i < j), accumulated once.
        for i in range(n):
            carry = 0
            for j in range(i + 1, n):
                total = result[i + j] + self._limbs[i] * self._limbs[j] + carry
                result[i + j] = total & LIMB_MASK
                carry = total >> LIMB_BITS
            result[i + n] += carry
        # Double the cross terms.
        carry = 0
        for index in range(2 * n):
            total = result[index] * 2 + carry
            result[index] = total & LIMB_MASK
            carry = total >> LIMB_BITS
        # Add the diagonal squares.
        carry = 0
        for i in range(n):
            square = self._limbs[i] * self._limbs[i]
            low = 2 * i
            total = result[low] + (square & LIMB_MASK) + carry
            result[low] = total & LIMB_MASK
            carry = total >> LIMB_BITS
            total = result[low + 1] + (square >> LIMB_BITS) + carry
            result[low + 1] = total & LIMB_MASK
            carry = total >> LIMB_BITS
            offset = low + 2
            while carry and offset < 2 * n:
                total = result[offset] + carry
                result[offset] = total & LIMB_MASK
                carry = total >> LIMB_BITS
                offset += 1
        return Mpi(result)

    def mod(self, modulus: "Mpi") -> "Mpi":
        """Modular reduction by shift-and-subtract long division."""
        if modulus.is_zero():
            raise CryptoError("division by zero modulus")
        if self.compare(modulus) < 0:
            return self
        remainder = Mpi(self._limbs)
        shift = remainder.bit_length() - modulus.bit_length()
        while shift >= 0:
            candidate = modulus.shift_left(shift)
            if remainder.compare(candidate) >= 0:
                remainder = remainder.sub(candidate)
            shift -= 1
        return remainder

    def shift_left(self, bits: int) -> "Mpi":
        """self << bits, at limb granularity where possible."""
        if bits < 0:
            raise CryptoError("negative shift")
        if self.is_zero() or bits == 0:
            return self
        limb_shift, bit_shift = divmod(bits, LIMB_BITS)
        limbs = [0] * limb_shift
        carry = 0
        for limb in self._limbs:
            total = (limb << bit_shift) | carry
            limbs.append(total & LIMB_MASK)
            carry = total >> LIMB_BITS
        if carry:
            limbs.append(carry)
        return Mpi(limbs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mpi({self.to_int():#x})"


#: The constant one, used as powm's accumulator seed.
ONE = Mpi((1,))
