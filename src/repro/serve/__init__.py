"""Attack-evaluation-as-a-service: daemon, queue, supervisor, client.

The :mod:`repro.serve` package turns the sweep engine into a
long-running service.  Its layers, bottom up:

* :mod:`repro.serve.supervisor` — a supervised persistent worker pool
  (heartbeats, hang detection, restart backoff, job timeouts) shared
  with ``repro all --workers``;
* :mod:`repro.serve.jobqueue` — a bounded, journaled job queue with
  backpressure and crash recovery;
* :mod:`repro.serve.cache` — a TTL result cache layered over the
  checkpoint journal, keyed by ``(program hash, machine config,
  policy)``;
* :mod:`repro.serve.daemon` — the asyncio daemon speaking JSON-lines
  over a UNIX socket plus a minimal local HTTP mirror;
* :mod:`repro.serve.client` — the synchronous client behind
  ``repro submit`` / ``repro jobs``.

Everything the service computes flows through the same pure-cell
machinery as the batch CLI, so a served verdict is byte-identical to a
clean serial run — the chaos bench asserts exactly that.
"""

from repro.serve.supervisor import (  # noqa: F401
    SupervisorPolicy,
    TaskOutcome,
    WorkerSupervisor,
)

__all__ = [
    "SupervisorPolicy",
    "TaskOutcome",
    "WorkerSupervisor",
]
