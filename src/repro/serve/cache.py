"""TTL result cache layered over the checkpoint journal.

Lookup ladder, cheapest first:

1. **Fresh memory hit** — the verdict was computed (or re-read)
   within ``ttl_s``; served instantly, counted as
   ``serve_cache_hits``.
2. **Journal hit** — the checkpoint store holds the cell's record
   (this run or any previous one); re-read, re-stamped into memory,
   counted as ``serve_cache_journal_hits``.  Journal records are
   authoritative: results are pure functions of the job key, so a
   journal hit can never be *wrong*, only cold.
3. **Stale memory hit** — only consulted when the caller allows it
   (degraded mode): a TTL-expired memory entry is served with an
   explicit ``stale`` marker and its age, counted as
   ``serve_cache_stale``.
4. **Miss** — counted as ``serve_cache_misses``; the daemon enqueues
   a simulation.

The TTL exists to bound *memory*, not correctness: expired entries
fall back to the journal read, and the stale path only matters when
the journal layer is unavailable or load must be shed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import HarnessError
from repro.harness.checkpoint import CheckpointStore
from repro.perf.counters import COUNTERS
from repro.perf.observe import now


class ResultCache:
    """Memory TTL layer over a :class:`CheckpointStore` journal."""

    def __init__(self, store: CheckpointStore, ttl_s: float = 300.0,
                 max_entries: int = 1024) -> None:
        if ttl_s <= 0:
            raise HarnessError(f"ttl_s must be > 0, got {ttl_s}")
        if max_entries < 1:
            raise HarnessError(f"max_entries must be >= 1, got {max_entries}")
        self.store = store
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._memory: Dict[str, Tuple[float, Dict[str, Any]]] = {}

    def _cell_id(self, key: str) -> str:
        return f"serve/{key}"

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        if key not in self._memory and len(self._memory) >= self.max_entries:
            # FIFO eviction: oldest stamp out first.  Evicted entries
            # survive in the journal, so eviction costs a file read,
            # never a simulation.
            oldest = min(self._memory, key=lambda k: self._memory[k][0])
            del self._memory[oldest]
        self._memory[key] = (now(), payload)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Install a freshly computed verdict (journal already holds it)."""
        self._remember(key, payload)

    def lookup(
        self, key: str, allow_stale: bool = False
    ) -> Optional[Dict[str, Any]]:
        """One verdict for ``key``, or None on a miss.

        The returned dict carries the cached payload plus serving
        metadata: ``source`` (``"memory"`` | ``"journal"`` |
        ``"stale"``), ``stale`` and ``age_s``.
        """
        stamped = self._memory.get(key)
        age = now() - stamped[0] if stamped is not None else None
        if stamped is not None and age is not None and age <= self.ttl_s:
            COUNTERS.serve_cache_hits += 1
            return {"payload": stamped[1], "source": "memory",
                    "stale": False, "age_s": age}
        cell_id = self._cell_id(key)
        if self.store.has(cell_id):
            payload = self.store.load(cell_id)
            self._remember(key, payload)
            COUNTERS.serve_cache_journal_hits += 1
            return {"payload": payload, "source": "journal",
                    "stale": False, "age_s": 0.0}
        if stamped is not None and allow_stale:
            COUNTERS.serve_cache_stale += 1
            return {"payload": stamped[1], "source": "stale",
                    "stale": True, "age_s": age}
        COUNTERS.serve_cache_misses += 1
        return None

    def __len__(self) -> int:
        return len(self._memory)
