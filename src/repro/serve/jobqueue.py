"""Bounded, journaled job queue with backpressure and crash recovery.

Every accepted job is journaled as one atomic JSON file under the
queue directory, updated in place on each state transition::

    queued -> running -> done | failed
           \\-> cancelled            (drain/interrupt)

The journal is the queue's crash story: :meth:`JobQueue.recover` loads
it on daemon start and re-enqueues every job that was ``queued`` or
``running`` when the previous process died.  Because job results are
pure functions of the job key, a recovered job either completes from
the checkpoint journal without re-simulation (the cell finished before
the crash) or re-runs to the byte-identical verdict.

Admission is bounded: :meth:`JobQueue.admit` raises
:class:`QueueFullError` carrying a ``retry_after_s`` hint when
``capacity`` unfinished jobs are already held — backpressure the
daemon translates into a reject-with-retry-after response instead of
unbounded memory growth.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import HarnessError
from repro.harness.checkpoint import atomic_write_json
from repro.serve.protocol import job_key  # noqa: F401  (re-export context)

#: Job states considered unfinished (count against capacity, recovered
#: after a crash).
OPEN_STATES = ("queued", "running")

#: Terminal job states.
CLOSED_STATES = ("done", "failed", "cancelled")


class QueueFullError(HarnessError):
    """Admission refused: the queue holds ``capacity`` open jobs."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobQueue:
    """FIFO of open jobs, journaled one atomic file per job.

    Not thread-safe by itself — the daemon serialises access through
    its event loop.
    """

    def __init__(self, directory: str, capacity: int) -> None:
        if capacity < 1:
            raise HarnessError(f"capacity must be >= 1, got {capacity}")
        self.directory = directory
        self.capacity = capacity
        os.makedirs(directory, exist_ok=True)
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._pending: Deque[str] = deque()
        self._seq = 0

    # -- journal -------------------------------------------------------
    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.directory, f"{job_id}.json")

    def _persist(self, job: Dict[str, Any]) -> None:
        atomic_write_json(self._job_path(job["job_id"]), job)

    def recover(self) -> List[Dict[str, Any]]:
        """Load the journal; re-enqueue open jobs (crash recovery).

        Returns the recovered open jobs in original admission order.
        Unreadable job files are renamed aside (``*.corrupt``) — a
        torn write can only have hit a job record mid-transition, and
        the client will resubmit idempotently by key.
        """
        records: List[Dict[str, Any]] = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    job = json.load(handle)
                if not isinstance(job, dict) or "job_id" not in job:
                    raise HarnessError(f"malformed job record {name!r}")
            except (OSError, ValueError, HarnessError):
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                continue
            records.append(job)
        records.sort(key=lambda job: int(job.get("seq", 0)))
        recovered: List[Dict[str, Any]] = []
        for job in records:
            self._jobs[job["job_id"]] = job
            self._seq = max(self._seq, int(job.get("seq", 0)) + 1)
            if job.get("state") in OPEN_STATES:
                job["state"] = "queued"
                job["recovered"] = True
                self._persist(job)
                self._pending.append(job["job_id"])
                recovered.append(job)
        return recovered

    # -- admission -----------------------------------------------------
    def open_count(self) -> int:
        """Jobs currently queued or running."""
        return sum(
            1 for job in self._jobs.values()
            if job.get("state") in OPEN_STATES
        )

    def admit(
        self,
        job_id: str,
        record: Dict[str, Any],
        retry_after_s: float,
    ) -> Dict[str, Any]:
        """Accept one job, or push back when full.

        Raises:
            QueueFullError: At capacity; carries ``retry_after_s``.
        """
        existing = self._jobs.get(job_id)
        if existing is not None and existing.get("state") in OPEN_STATES:
            # Idempotent resubmit of an open job: coalesce.
            return existing
        if self.open_count() >= self.capacity:
            raise QueueFullError(
                f"queue full ({self.capacity} open job(s)); retry in "
                f"{retry_after_s:.1f}s",
                retry_after_s=retry_after_s,
            )
        job = {**record, "job_id": job_id, "state": "queued",
               "seq": self._seq}
        self._seq += 1
        self._jobs[job_id] = job
        self._persist(job)
        self._pending.append(job_id)
        return job

    def next_queued(self) -> Optional[Dict[str, Any]]:
        """Pop the oldest queued job and mark it running."""
        while self._pending:
            job_id = self._pending.popleft()
            job = self._jobs.get(job_id)
            if job is not None and job.get("state") == "queued":
                job["state"] = "running"
                self._persist(job)
                return job
        return None

    # -- transitions ---------------------------------------------------
    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job record, or None."""
        return self._jobs.get(job_id)

    def mark(self, job_id: str, state: str, **extra: Any) -> Dict[str, Any]:
        """Transition one job and journal the new state.

        Raises:
            HarnessError: Unknown job or unknown state.
        """
        if state not in OPEN_STATES + CLOSED_STATES:
            raise HarnessError(f"unknown job state {state!r}")
        job = self._jobs.get(job_id)
        if job is None:
            raise HarnessError(f"unknown job {job_id!r}")
        job["state"] = state
        job.update(extra)
        self._persist(job)
        if state == "queued" and job_id not in self._pending:
            self._pending.append(job_id)
        return job

    def requeue_running(self) -> int:
        """Demote running jobs to queued (drain: journal says resume)."""
        count = 0
        for job in self._jobs.values():
            if job.get("state") == "running":
                self.mark(job["job_id"], "queued")
                count += 1
        return count

    def jobs(self) -> List[Dict[str, Any]]:
        """Every known job, admission-ordered."""
        return sorted(
            self._jobs.values(), key=lambda job: int(job.get("seq", 0))
        )
