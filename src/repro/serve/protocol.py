"""Wire format and job identity for the evaluation daemon.

One protocol serves both transports:

* **UNIX socket** — newline-delimited JSON requests/responses
  (``{"op": "submit", "spec": {...}}\\n``);
* **HTTP mirror** — the same operations under ``POST /submit``,
  ``GET /jobs``, ``GET /jobs/<id>``, ``GET /stats``, ``GET /healthz``.

Job identity is content-addressed: :func:`job_key` hashes the
canonicalised ``(attack spec, execution policy)`` pair — the exact
inputs a cell result is a pure function of — so two clients asking the
same question share one simulation, one journal record, and one cache
entry.  The key doubles as the checkpoint-journal cell id
(``serve/<key>``), which is what makes daemon restarts resume
in-flight jobs byte-identically: the journal *is* the cache's durable
layer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.channels import ChannelType
from repro.core.variants import ALL_VARIANTS
from repro.errors import HarnessError
from repro.harness.parallel import CellSpec

#: Spec fields a client may submit, with defaults matching
#: :class:`repro.harness.parallel.CellSpec`.
_SPEC_DEFAULTS: Dict[str, Any] = {
    "kind": "experiment",
    "variant": "",
    "channel": "timing-window",
    "predictor": "lvp",
    "n_runs": 100,
    "seed": 0,
    "exponent": None,
    "snapshot_trials": False,
    "audit_snapshots": False,
}

#: Execution-policy names a job may request.
POLICY_NAMES = ("compat", "robust")


def normalize_spec(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and canonicalise a submitted job spec.

    Returns a dict holding *every* spec field (defaults filled in), so
    hashing it is stable regardless of which fields the client spelled
    out.

    Raises:
        HarnessError: Unknown fields, unknown variant/channel, or
            out-of-range parameters.
    """
    unknown = sorted(set(raw) - set(_SPEC_DEFAULTS) - {"policy"})
    if unknown:
        raise HarnessError(f"unknown spec field(s): {unknown}")
    spec = {**_SPEC_DEFAULTS, **{k: v for k, v in raw.items()
                                 if k != "policy"}}
    if spec["kind"] not in ("experiment", "rsa"):
        raise HarnessError(f"unknown job kind {spec['kind']!r}")
    if spec["kind"] == "experiment":
        names = [variant.name for variant in ALL_VARIANTS]
        if spec["variant"] not in names:
            raise HarnessError(
                f"unknown attack variant {spec['variant']!r}; "
                f"choose from {names}"
            )
        channels = [channel.value for channel in ChannelType]
        if spec["channel"] not in channels:
            raise HarnessError(
                f"unknown channel {spec['channel']!r}; "
                f"choose from {channels}"
            )
        if spec["predictor"] not in ("lvp", "vtage", "none"):
            raise HarnessError(
                f"unknown predictor {spec['predictor']!r}"
            )
    n_runs = spec["n_runs"]
    if not isinstance(n_runs, int) or n_runs < 1:
        raise HarnessError(f"n_runs must be a positive int, got {n_runs!r}")
    if not isinstance(spec["seed"], int):
        raise HarnessError(f"seed must be an int, got {spec['seed']!r}")
    return spec


def normalize_policy(raw: Optional[str]) -> str:
    """Validate a requested execution-policy name (default compat)."""
    policy = raw or "compat"
    if policy not in POLICY_NAMES:
        raise HarnessError(
            f"unknown policy {policy!r}; choose from {POLICY_NAMES}"
        )
    return policy


def job_key(spec: Dict[str, Any], policy: str) -> str:
    """Content-addressed identity of one job.

    The digest covers the full normalised spec (program + machine
    configuration, trial counts, seed) and the execution policy — the
    complete input set of the pure cell function — so identical
    questions collide onto one cache entry and differing ones cannot.
    """
    material = json.dumps(
        {"spec": spec, "policy": policy}, sort_keys=True
    )
    return hashlib.blake2b(material.encode(), digest_size=16).hexdigest()


def spec_to_cell(spec: Dict[str, Any], key: str) -> CellSpec:
    """The :class:`CellSpec` executing one job (journal id from key)."""
    return CellSpec(
        cell_id=f"serve/{key}",
        kind=str(spec["kind"]),
        variant=str(spec["variant"]),
        channel=str(spec["channel"]) if spec["kind"] == "experiment" else "",
        predictor=str(spec["predictor"]),
        n_runs=int(spec["n_runs"]),
        seed=int(spec["seed"]),
        exponent=spec["exponent"],
        snapshot_trials=bool(spec["snapshot_trials"]),
        audit_snapshots=bool(spec["audit_snapshots"]),
    )


# ----------------------------------------------------------------------
# JSON-lines framing
# ----------------------------------------------------------------------

#: Upper bound on one request line; a client that exceeds it is
#: misbehaving (or not speaking the protocol at all).
MAX_LINE_BYTES = 1 << 20


def encode_message(payload: Dict[str, Any]) -> bytes:
    """One newline-terminated JSON message."""
    return json.dumps(payload, sort_keys=True).encode() + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one message line.

    Raises:
        HarnessError: Malformed JSON or a non-object message.
    """
    if len(line) > MAX_LINE_BYTES:
        raise HarnessError("message exceeds maximum line length")
    try:
        payload = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise HarnessError(f"malformed message: {error}") from None
    if not isinstance(payload, dict):
        raise HarnessError("message must be a JSON object")
    return payload


def error_response(message: str, **extra: Any) -> Dict[str, Any]:
    """A uniform error payload."""
    return {"ok": False, "error": message, **extra}


def parse_http_request(
    data: bytes,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse a minimal HTTP/1.1 request: (method, path, headers, body).

    Only what the mirror needs: request line, headers,
    ``Content-Length``-delimited body.  Anything else is a protocol
    error.

    Raises:
        HarnessError: On malformed requests.
    """
    head, sep, body = data.partition(b"\r\n\r\n")
    if not sep:
        raise HarnessError("malformed HTTP request: no header terminator")
    lines = head.split(b"\r\n")
    try:
        method, path, _version = lines[0].decode().split(" ", 2)
    except (ValueError, UnicodeDecodeError):
        raise HarnessError("malformed HTTP request line") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers, body


def http_response(
    status: int,
    payload: Dict[str, Any],
    reason: Optional[str] = None,
) -> bytes:
    """A JSON HTTP response."""
    reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
               404: "Not Found", 429: "Too Many Requests",
               503: "Service Unavailable"}
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    head = (
        f"HTTP/1.1 {status} {reason or reasons.get(status, 'Status')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode() + body
