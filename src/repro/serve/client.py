"""Synchronous UNIX-socket client for the evaluation daemon.

One connection per request — the protocol is a single JSON line each
way, so connection reuse buys nothing and per-request connects keep
the client trivially safe to share across threads (each call owns its
socket).

The daemon root is all a client needs::

    client = ServeClient("/path/to/daemon/root")
    response = client.submit({"variant": "spectre-lvp"}, wait=True)
"""

from __future__ import annotations

import os
import socket
from typing import Any, Dict, List, Optional

from repro.errors import HarnessError
from repro.serve.daemon import SOCKET_FILE
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
)


class ServeClient:
    """Talk to one :class:`repro.serve.daemon.ReproDaemon`."""

    def __init__(self, root: str, timeout_s: float = 330.0) -> None:
        self.socket_path = (
            root if root.endswith(".sock")
            else os.path.join(root, SOCKET_FILE)
        )
        self.timeout_s = timeout_s

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip: send a request line, read the response line.

        Raises:
            HarnessError: Daemon not reachable, or it hung up without
                answering.
        """
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout_s)
                sock.connect(self.socket_path)
                sock.sendall(encode_message(payload))
                line = self._readline(sock)
        except OSError as error:
            raise HarnessError(
                f"daemon not reachable at {self.socket_path!r}: {error}"
            ) from None
        if not line:
            raise HarnessError("daemon closed the connection mid-request")
        return decode_message(line)

    @staticmethod
    def _readline(sock: socket.socket) -> bytes:
        chunks: List[bytes] = []
        size = 0
        while size < MAX_LINE_BYTES:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            size += len(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    # -- operations ----------------------------------------------------

    def submit(
        self,
        spec: Dict[str, Any],
        policy: Optional[str] = None,
        wait: bool = False,
        timeout_s: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit one attack-cell job (optionally block for the verdict)."""
        request: Dict[str, Any] = {"op": "submit", "spec": spec}
        if policy is not None:
            request["policy"] = policy
        if wait:
            request["wait"] = True
            request["timeout_s"] = timeout_s
        return self.request(request)

    def status(self, job_id: str) -> Dict[str, Any]:
        """The current journal record of one job."""
        return self.request({"op": "status", "job_id": job_id})

    def wait(self, job_id: str, timeout_s: float = 300.0) -> Dict[str, Any]:
        """Block until a job settles (or the timeout lapses)."""
        return self.request(
            {"op": "wait", "job_id": job_id, "timeout_s": timeout_s}
        )

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job the daemon knows about, admission-ordered."""
        response = self.request({"op": "jobs"})
        if not response.get("ok"):
            raise HarnessError(str(response.get("error")))
        return list(response["jobs"])

    def stats(self) -> Dict[str, Any]:
        """Service counters (queue depth, cache rates, supervision)."""
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self.request({"op": "shutdown"})
