"""The attack-evaluation daemon: asyncio front, supervised pool back.

``repro serve`` runs one :class:`ReproDaemon` over a root directory::

    <root>/serve.sock          UNIX socket (JSON lines)
    <root>/serve.json          endpoints file (socket path, HTTP port)
    <root>/state/jobs/         journaled job queue (crash recovery)
    <root>/state/checkpoint/   checkpoint journal = durable result cache

Request ladder for a submitted job:

1. cache lookup (memory TTL, then checkpoint journal) — a hit answers
   without simulating;
2. admission to the bounded journaled queue — when full, the client
   gets a reject with a ``retry_after_s`` hint (backpressure, never
   unbounded growth);
3. dispatch to the supervised worker pool
   (:mod:`repro.serve.supervisor`) — heartbeats, hang detection,
   restart backoff, per-job timeouts, deterministic redispatch.

Degradation ladder, in order of escalating trouble:

* **healthy** — misses simulate, hits serve from cache;
* **backpressure** — queue at capacity: reject-with-retry-after;
* **shedding** — the supervisor's restart budget is exhausted (or the
  daemon is draining): cached results still serve, including
  TTL-expired entries marked ``stale`` with their age; everything
  needing a simulation is refused;
* **drain** — on SIGTERM: stop accepting, finish in-flight work
  (bounded by the supervisor's drain timeout), demote the rest to
  ``queued`` in the journal, exit 0.  A restarted daemon recovers the
  queue journal and serves every already-journaled cell without
  re-simulation — byte-identical, because the journal is the cache.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro._version import __version__
from repro.errors import HarnessError, ReproError
from repro.harness.checkpoint import CheckpointStore, atomic_write_json
from repro.harness.faults import FaultProfile
from repro.harness.parallel import execute_spec
from repro.harness.runner import (
    CellClassification,
    ExecutionPolicy,
    ResilientExecutor,
    SupervisedCell,
)
from repro.perf.counters import COUNTERS, PerfCounters
from repro.perf.observe import now
from repro.serve.cache import ResultCache
from repro.serve.jobqueue import JobQueue, QueueFullError
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    http_response,
    job_key,
    normalize_policy,
    normalize_spec,
    parse_http_request,
    spec_to_cell,
)
from repro.serve.supervisor import (
    SupervisorPolicy,
    TaskOutcome,
    WorkerSupervisor,
)
from repro.sim import (
    clear_fallback_journal,
    fallback_histogram,
    fallback_journal,
    record_fallbacks,
)

#: Name of the endpoints discovery file under the daemon root.
ENDPOINTS_FILE = "serve.json"

#: Name of the UNIX socket under the daemon root.
SOCKET_FILE = "serve.sock"


@dataclass(frozen=True)
class ServePolicy:
    """Daemon-level knobs (supervision knobs ride along)."""

    workers: int = 2
    queue_limit: int = 16
    cache_ttl_s: float = 300.0
    job_timeout_s: Optional[float] = 600.0
    max_dispatches: int = 5
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 2.0
    restart_budget: Optional[int] = 16
    drain_timeout_s: float = 30.0
    http: bool = True
    http_host: str = "127.0.0.1"
    http_port: int = 0  # 0: ephemeral, recorded in serve.json

    def supervisor_policy(self) -> SupervisorPolicy:
        """The matching worker-pool policy."""
        return SupervisorPolicy(
            workers=self.workers,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            job_timeout_s=self.job_timeout_s,
            max_dispatches=self.max_dispatches,
            restart_budget=self.restart_budget,
            drain_timeout_s=self.drain_timeout_s,
        )


# ----------------------------------------------------------------------
# Worker side (module-level, picklable)
# ----------------------------------------------------------------------

_SERVE_EXECUTORS: Dict[str, ResilientExecutor] = {}
_SERVE_FAULTS: Any = None


def _init_serve_worker(
    fault_profile_obj: Optional[FaultProfile], fault_seed: int
) -> None:
    """Per-worker init: lazy executor registry, one per policy name."""
    global _SERVE_EXECUTORS, _SERVE_FAULTS
    _SERVE_EXECUTORS = {}
    _SERVE_FAULTS = (fault_profile_obj, fault_seed)
    COUNTERS.reset()
    clear_fallback_journal()


def _serve_executor(policy_name: str) -> ResilientExecutor:
    executor = _SERVE_EXECUTORS.get(policy_name)
    if executor is None:
        from repro.harness.faults import FaultInjector

        profile, seed = _SERVE_FAULTS
        policy = (
            ExecutionPolicy.robust() if policy_name == "robust"
            else ExecutionPolicy.compat()
        )
        executor = ResilientExecutor(
            policy,
            injector=(
                FaultInjector(profile, seed=seed)
                if profile is not None else None
            ),
            store=None,
        )
        _SERVE_EXECUTORS[policy_name] = executor
    return executor


def _run_serve_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job in a worker; return payload + telemetry."""
    spec = spec_to_cell(payload["spec"], payload["key"])
    executor = _serve_executor(str(payload["policy"]))
    before = COUNTERS.snapshot()
    fallback_mark = len(fallback_journal())
    started = now()
    cell = execute_spec(spec, executor)
    busy_s = now() - started
    failed = cell.classification is CellClassification.FAILED
    return {
        "cell_id": spec.cell_id,
        "failed": failed,
        "payload": None if failed else cell.to_payload(),
        "note": cell.note,
        "counters": PerfCounters.delta(before, COUNTERS.snapshot()),
        "fallbacks": fallback_journal()[fallback_mark:],
        "busy_s": busy_s,
    }


def verdict_summary(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Compact client-facing verdict of one journaled cell payload."""
    cell = SupervisedCell.from_payload(payload)
    summary: Dict[str, Any] = {
        "classification": cell.classification.value,
    }
    result = cell.result
    if result is None:
        return summary
    if hasattr(result, "pvalue"):
        summary["kind"] = "experiment"
        summary["pvalue"] = float(result.pvalue)
        summary["effective"] = bool(result.attack_succeeds)
    else:
        summary["kind"] = "rsa"
        summary["success_rate"] = float(result.success_rate)
    return summary


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------

class ReproDaemon:
    """One long-running evaluation service over a root directory."""

    def __init__(
        self,
        root: str,
        policy: Optional[ServePolicy] = None,
        fault_profile_obj: Optional[FaultProfile] = None,
        fault_seed: int = 0,
    ) -> None:
        self.root = root
        self.policy = policy or ServePolicy()
        os.makedirs(os.path.join(root, "state"), exist_ok=True)
        self.socket_path = os.path.join(root, SOCKET_FILE)
        self.endpoints_path = os.path.join(root, ENDPOINTS_FILE)
        self.store = CheckpointStore.open(
            os.path.join(root, "state", "checkpoint"),
            {"version": __version__, "serve": True},
            resume=True,
        )
        self.queue = JobQueue(
            os.path.join(root, "state", "jobs"),
            capacity=self.policy.queue_limit,
        )
        self.cache = ResultCache(self.store, ttl_s=self.policy.cache_ttl_s)
        self.supervisor = WorkerSupervisor(
            self.policy.supervisor_policy(),
            run_fn=_run_serve_job,
            init_fn=_init_serve_worker,
            init_args=(fault_profile_obj, fault_seed),
            fault_profile=fault_profile_obj,
            fault_seed=fault_seed,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop = asyncio.Event()
        self._draining = False
        self._waiters: Dict[str, asyncio.Event] = {}
        self._busy_samples: Deque[float] = deque(maxlen=32)
        self._started_at = 0.0

    # -- degradation ladder --------------------------------------------

    @property
    def shedding(self) -> bool:
        """True when jobs requiring simulation must be refused."""
        return self._draining or not self.supervisor.healthy

    def retry_after_s(self) -> float:
        """Backpressure hint: expected time for one queue slot to free."""
        mean_busy = (
            sum(self._busy_samples) / len(self._busy_samples)
            if self._busy_samples else 1.0
        )
        estimate = (
            mean_busy * max(1, self.queue.open_count())
            / max(1, self.policy.workers)
        )
        return min(30.0, max(0.2, estimate))

    # -- lifecycle -----------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent; signal-handler safe)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    async def run(
        self, ready: Optional[threading.Event] = None
    ) -> int:
        """Serve until SIGTERM/SIGINT (or a shutdown op), then drain."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._started_at = now()
        self.supervisor.start()
        recovered = self.queue.recover()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        unix_server = await asyncio.start_unix_server(
            self._handle_unix, path=self.socket_path
        )
        http_server = None
        http_port: Optional[int] = None
        if self.policy.http:
            http_server = await asyncio.start_server(
                self._handle_http,
                host=self.policy.http_host,
                port=self.policy.http_port,
            )
            http_port = http_server.sockets[0].getsockname()[1]
        atomic_write_json(self.endpoints_path, {
            "socket": self.socket_path,
            "http_host": self.policy.http_host if http_server else None,
            "http_port": http_port,
            "pid": os.getpid(),
            "version": __version__,
        })
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # Hosted in a non-main thread (tests) or an embedding
                # loop: callers drive request_shutdown() instead.
                break
        if recovered:
            self._pump()
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            self._draining = True
            # Drain: the supervisor finishes in-flight jobs (bounded),
            # cancels the rest; cancelled jobs are demoted to "queued"
            # in the journal so a restart resumes them.
            self.supervisor.shutdown()
            await loop.run_in_executor(None, self.supervisor.join, 60.0)
            self.queue.requeue_running()
            unix_server.close()
            await unix_server.wait_closed()
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            for waiter in self._waiters.values():
                waiter.set()
        return 0

    # -- job flow ------------------------------------------------------

    def _waiter(self, job_id: str) -> asyncio.Event:
        event = self._waiters.get(job_id)
        if event is None:
            event = asyncio.Event()
            self._waiters[job_id] = event
        return event

    def _resolve(self, job_id: str) -> None:
        event = self._waiters.pop(job_id, None)
        if event is not None:
            event.set()

    def _pump(self) -> None:
        """Dispatch queued jobs (journal-served ones short-circuit)."""
        while True:
            job = self.queue.next_queued()
            if job is None:
                return
            job_id = job["job_id"]
            cell_id = f"serve/{job_id}"
            if self.store.has(cell_id):
                # Completed by a previous daemon incarnation (or a
                # concurrent duplicate): serve the journal verbatim —
                # this is the no-re-simulation restart path.
                payload = self.store.load(cell_id)
                self.cache.put(job_id, payload)
                COUNTERS.serve_cache_journal_hits += 1
                self.queue.mark(
                    job_id, "done", verdict=verdict_summary(payload),
                    served_from="journal",
                )
                self._resolve(job_id)
                continue
            task_payload = {
                "spec": job["spec"],
                "policy": job["policy"],
                "key": job_id,
            }
            self.supervisor.submit(
                cell_id, task_payload, self._outcome_threadsafe
            )

    def _outcome_threadsafe(self, outcome: TaskOutcome) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._on_outcome, outcome)

    def _on_outcome(self, outcome: TaskOutcome) -> None:
        job_id = outcome.task_id[len("serve/"):]
        job = self.queue.get(job_id)
        if job is None:
            return
        if outcome.status == "done":
            result = outcome.value
            COUNTERS.add(result["counters"])
            shipped = [
                (str(cell_name), str(reason))
                for cell_name, reason in result.get("fallbacks") or []
            ]
            if shipped:
                record_fallbacks(shipped)
            self._busy_samples.append(float(result["busy_s"]))
            if result["failed"]:
                self.queue.mark(
                    job_id, "failed",
                    error=f"cell failed permanently: {result['note']}",
                )
            else:
                payload = result["payload"]
                self.store.save(outcome.task_id, payload)
                self.cache.put(job_id, payload)
                self.queue.mark(
                    job_id, "done", verdict=verdict_summary(payload),
                    served_from="simulation",
                )
        elif outcome.status == "cancelled":
            # Drain or interrupt: back to queued — the journal now says
            # "resume me"; a restarted daemon picks the job up.
            if job.get("state") == "running":
                self.queue.mark(job_id, "queued")
            return
        else:  # "error" | "lost"
            self.queue.mark(
                job_id, "failed",
                error=f"{outcome.status}: {outcome.error}",
            )
        self._resolve(job_id)
        self._pump()

    # -- operations ----------------------------------------------------

    def _job_response(self, job: Dict[str, Any]) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "ok": True,
            "job_id": job["job_id"],
            "state": job["state"],
        }
        for key in ("verdict", "error", "served_from", "recovered"):
            if key in job:
                response[key] = job[key]
        if job["state"] == "done":
            cached = self.cache.lookup(job["job_id"])
            if cached is not None:
                response["result"] = cached["payload"]
        return response

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        spec = normalize_spec(dict(request.get("spec") or {}))
        policy = normalize_policy(request.get("policy"))
        key = job_key(spec, policy)
        cached = self.cache.lookup(key, allow_stale=self.shedding)
        if cached is not None:
            return {
                "ok": True,
                "job_id": key,
                "state": "done",
                "cached": True,
                "source": cached["source"],
                "stale": cached["stale"],
                "age_s": cached["age_s"],
                "verdict": verdict_summary(cached["payload"]),
                "result": cached["payload"],
            }
        if self.shedding:
            COUNTERS.serve_jobs_shed += 1
            return error_response(
                "shedding load (supervisor unhealthy or draining); "
                "no cached result for this job",
                reason="shedding",
            )
        try:
            job = self.queue.admit(
                key,
                {"spec": spec, "policy": policy},
                retry_after_s=self.retry_after_s(),
            )
        except QueueFullError as error:
            COUNTERS.serve_jobs_rejected += 1
            return error_response(
                str(error), reason="queue-full",
                retry_after_s=error.retry_after_s,
            )
        COUNTERS.serve_jobs_accepted += 1
        self._pump()
        return {
            "ok": True,
            "job_id": key,
            "state": job["state"],
            "cached": False,
            "queue_open": self.queue.open_count(),
        }

    async def _op_wait(
        self, job_id: str, timeout_s: float
    ) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        if job is None:
            return error_response(f"unknown job {job_id!r}")
        if job["state"] in ("queued", "running"):
            try:
                await asyncio.wait_for(
                    self._waiter(job_id).wait(), timeout=timeout_s
                )
            except asyncio.TimeoutError:
                return error_response(
                    f"timeout waiting for job {job_id!r}",
                    reason="timeout", state=self.queue.get(job_id)["state"],
                )
            job = self.queue.get(job_id)
        return self._job_response(job)

    def stats_payload(self) -> Dict[str, Any]:
        """Service counters for ``stats`` / ``repro perf``."""
        jobs = self.queue.jobs()
        states: Dict[str, int] = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        counters = COUNTERS.snapshot()
        vector_trials = int(counters.get("batched_vector_trials", 0))
        fallback_trials = int(counters.get("batched_fallback_trials", 0))
        covered = vector_trials + fallback_trials
        return {
            "ok": True,
            "uptime_s": now() - self._started_at,
            "draining": self._draining,
            "shedding": self.shedding,
            "queue": {
                "capacity": self.policy.queue_limit,
                "open": self.queue.open_count(),
                "states": states,
            },
            "cache": {
                "entries": len(self.cache),
                "ttl_s": self.policy.cache_ttl_s,
            },
            "supervisor": self.supervisor.stats(),
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("serve_") or name in (
                    "trials", "simulated_cycles",
                )
            },
            "backend": {
                "vectorized_fraction": (
                    vector_trials / covered if covered else None
                ),
                "vector_trials": vector_trials,
                "fallback_trials": fallback_trials,
                "fallback_reasons": fallback_histogram(),
            },
            "serve_cache_hit_rate": COUNTERS.serve_cache_hit_rate,
            "serve_mean_queue_wait_ms": COUNTERS.serve_mean_queue_wait_ms,
        }

    async def _dispatch_op(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "submit":
            response = self._op_submit(request)
            if response.get("ok") and request.get("wait") and (
                response["state"] in ("queued", "running")
            ):
                return await self._op_wait(
                    response["job_id"],
                    float(request.get("timeout_s", 300.0)),
                )
            return response
        if op == "status":
            job = self.queue.get(str(request.get("job_id", "")))
            if job is None:
                return error_response("unknown job")
            return self._job_response(job)
        if op == "wait":
            return await self._op_wait(
                str(request.get("job_id", "")),
                float(request.get("timeout_s", 300.0)),
            )
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [dict(job) for job in self.queue.jobs()],
            }
        if op == "stats":
            return self.stats_payload()
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "state": "draining"}
        return error_response(f"unknown op {op!r}")

    # -- transports ----------------------------------------------------

    async def _handle_unix(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._dispatch_op(
                        decode_message(line)
                    )
                except ReproError as error:
                    response = error_response(str(error))
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
            method, path, headers, _ = parse_http_request(head)
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            status, payload = await self._http_route(method, path, body)
            writer.write(http_response(status, payload))
            await writer.drain()
        except (ReproError, ValueError) as error:
            try:
                writer.write(http_response(
                    400, error_response(str(error))
                ))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _http_route(
        self, method: str, path: str, body: bytes
    ) -> Any:
        if method == "GET" and path == "/healthz":
            if self.shedding:
                return 503, {"ok": False, "shedding": True,
                             "draining": self._draining}
            return 200, {"ok": True, "healthy": True}
        if method == "GET" and path == "/stats":
            return 200, self.stats_payload()
        if method == "GET" and path == "/jobs":
            return 200, await self._dispatch_op({"op": "jobs"})
        if method == "GET" and path.startswith("/jobs/"):
            response = await self._dispatch_op(
                {"op": "status", "job_id": path[len("/jobs/"):]}
            )
            return (200 if response.get("ok") else 404), response
        if method == "POST" and path == "/submit":
            request = decode_message(body or b"{}")
            request["op"] = "submit"
            response = await self._dispatch_op(request)
            if response.get("ok"):
                status = 200 if response["state"] == "done" else 202
            elif response.get("reason") == "queue-full":
                status = 429
            elif response.get("reason") == "shedding":
                status = 503
            else:
                status = 400
            return status, response
        return 404, error_response(f"no route {method} {path}")
