"""Supervised persistent worker pool with heartbeats and restarts.

The pool is the robustness keystone shared by ``repro all --workers``
(:mod:`repro.harness.parallel`) and the ``repro serve`` daemon
(:mod:`repro.serve.daemon`).  It differs from a bare
``ProcessPoolExecutor`` in exactly the ways a long-running service
needs:

* **Heartbeats** — every worker beats over its pipe on a fixed
  interval; a lapsed heartbeat deadline means the worker is hung (not
  merely slow) and it is killed and replaced.
* **Per-job wall-clock timeouts** — ``max_trial_cycles`` bounds a trial
  in *simulated* time; the supervisor adds the process-level analogue,
  killing workers whose current job exceeds its wall-clock budget.
* **Automatic restart with capped exponential backoff** — a crashing
  worker slot backs off ``base * 2**streak`` (capped) between
  respawns; an optional total restart budget acts as a circuit
  breaker, flipping the pool unhealthy so the daemon can shed load.
* **Deterministic redispatch** — a job interrupted by a process-level
  fault is re-sent *unchanged*: cell results are pure functions of
  ``(cell_id, seed, policy, fault profile)``, so the redispatch
  produces the byte-identical payload a clean run would (unlike
  cell-level retries, which deliberately reseed).  The chaos bench
  asserts this end to end.

The parent never simulates and never blocks on a single worker: one
monitor thread multiplexes every worker pipe with
:func:`multiprocessing.connection.wait`, so a hung worker cannot stall
dispatch to the others.  All host-time reads go through
:func:`repro.perf.observe.now` (deadlines only — nothing simulated
ever sees them).

Process-level fault injection (``worker-kill`` / ``worker-hang`` /
``worker-slow`` profiles) happens *inside the worker*, before the job
runs, so the injected carnage exercises precisely the supervision
machinery above while leaving the simulation untouched.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.errors import HarnessError, ReproError
from repro.harness.faults import FaultInjector, FaultProfile
from repro.perf.counters import COUNTERS
from repro.perf.observe import now

#: Exit code used by injected worker kills (distinguishable from real
#: crashes in logs; the supervisor treats both identically).
INJECTED_KILL_EXIT = 137


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs for one :class:`WorkerSupervisor`.

    Attributes:
        workers: Worker process count (>= 1).
        heartbeat_interval_s: Worker beat period.
        heartbeat_timeout_s: Parent-side deadline: a worker silent for
            this long is declared hung and killed.  Must exceed the
            interval with margin.
        job_timeout_s: Wall-clock budget per job *dispatch*; ``None``
            disables process-level timeouts.
        max_dispatches: Total dispatch attempts per job before the
            supervisor gives it up as lost.
        restart_backoff_base_s: First-respawn delay after a worker
            death; doubles per consecutive failure of the same slot.
        restart_backoff_cap_s: Upper bound on the backoff delay.
        restart_budget: Total restarts allowed across the pool before
            the circuit breaker opens (``healthy`` goes False and dead
            slots stay down).  ``None`` means unlimited.
        drain_timeout_s: How long :meth:`WorkerSupervisor.shutdown`
            waits for in-flight jobs before killing their workers.
    """

    workers: int = 2
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 2.0
    job_timeout_s: Optional[float] = None
    max_dispatches: int = 5
    restart_backoff_base_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    restart_budget: Optional[int] = None
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise HarnessError(f"workers must be >= 1, got {self.workers}")
        if self.heartbeat_interval_s <= 0:
            raise HarnessError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= 2 * self.heartbeat_interval_s:
            raise HarnessError(
                "heartbeat_timeout_s must exceed twice the interval "
                f"({self.heartbeat_timeout_s} vs "
                f"{self.heartbeat_interval_s})"
            )
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise HarnessError("job_timeout_s must be > 0 when set")
        if self.max_dispatches < 1:
            raise HarnessError("max_dispatches must be >= 1")
        if self.restart_backoff_base_s < 0 or self.restart_backoff_cap_s < 0:
            raise HarnessError("restart backoff must be >= 0")
        if self.restart_budget is not None and self.restart_budget < 0:
            raise HarnessError("restart_budget must be >= 0 when set")


@dataclass(frozen=True)
class TaskOutcome:
    """Terminal state of one submitted task.

    ``status`` is one of:

    * ``"done"`` — ``run_fn`` returned ``value``;
    * ``"error"`` — ``run_fn`` raised a :class:`ReproError`
      (deterministic task failure; not redispatched);
    * ``"lost"`` — the dispatch budget was exhausted by worker deaths,
      hangs, or timeouts, or no worker could be revived;
    * ``"cancelled"`` — the task was still pending or in flight when
      the supervisor was interrupted or drained.
    """

    task_id: str
    status: str
    value: Any = None
    error: Optional[str] = None
    dispatches: int = 0
    queue_wait_s: float = 0.0


@dataclass
class _Task:
    task_id: str
    payload: Any
    callback: Callable[[TaskOutcome], None]
    dispatches: int = 0
    enqueued_at: float = 0.0
    first_dispatch_at: Optional[float] = None


@dataclass
class _Slot:
    """One worker slot: a process that is respawned in place."""

    index: int
    proc: Any = None
    conn: Any = None
    state: str = "down"  # down | starting | idle | busy | dead
    task: Optional[_Task] = None
    last_hb: float = 0.0
    task_deadline: Optional[float] = None
    restart_at: Optional[float] = None
    fail_streak: int = 0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _worker_main(
    conn: Any,
    init_fn: Optional[Callable[..., None]],
    init_args: Tuple[Any, ...],
    run_fn: Callable[[Any], Any],
    profile: Optional[FaultProfile],
    fault_seed: int,
    heartbeat_interval_s: float,
) -> None:
    """Worker process entry: beat, receive tasks, run, reply.

    Process-level faults are drawn here, deterministically keyed by
    ``(profile, seed, task_id, dispatch)``, *before* the task runs —
    so an injected kill or hang never leaves a partially-perturbed
    simulation behind.
    """
    # The parent coordinates interrupts; a Ctrl-C must not take the
    # workers down mid-write of a reply.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    stop_beats = threading.Event()
    send_lock = threading.Lock()

    def _beat() -> None:
        while not stop_beats.wait(heartbeat_interval_s):
            try:
                with send_lock:
                    conn.send(("hb",))
            except OSError:
                return

    # Beat from the first instant so a slow init_fn is never mistaken
    # for a hang.
    threading.Thread(target=_beat, daemon=True).start()
    if init_fn is not None:
        init_fn(*init_args)
    injector = (
        FaultInjector(profile, seed=fault_seed)
        if profile is not None and profile.perturbs_process else None
    )
    with send_lock:
        conn.send(("ready",))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, task_id, payload, dispatch = message
        fault = injector.process_fault(task_id, dispatch) if injector else None
        if fault == "kill":
            os._exit(INJECTED_KILL_EXIT)
        if fault == "hang":
            # A real hang stops the beats too: freeze completely so the
            # parent's heartbeat deadline is what detects us.
            stop_beats.set()
            time.sleep(3600.0)
            os._exit(INJECTED_KILL_EXIT)
        if fault == "slow":
            time.sleep(profile.worker_slow_delay_s)  # type: ignore[union-attr]
        try:
            value = run_fn(payload)
        except ReproError as exc:
            with send_lock:
                conn.send((
                    "task-error", task_id,
                    f"{type(exc).__name__}: {exc}",
                ))
        else:
            with send_lock:
                conn.send(("done", task_id, value))
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

@dataclass
class SupervisorStats:
    """Monotonic telemetry of one supervisor's lifetime."""

    submitted: int = 0
    done: int = 0
    errors: int = 0
    lost: int = 0
    cancelled: int = 0
    redispatches: int = 0
    worker_restarts: int = 0
    heartbeat_misses: int = 0
    job_timeouts: int = 0
    queue_wait_s: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe snapshot."""
        return {
            "submitted": self.submitted,
            "done": self.done,
            "errors": self.errors,
            "lost": self.lost,
            "cancelled": self.cancelled,
            "redispatches": self.redispatches,
            "worker_restarts": self.worker_restarts,
            "heartbeat_misses": self.heartbeat_misses,
            "job_timeouts": self.job_timeouts,
            "queue_wait_s": self.queue_wait_s,
            "mean_queue_wait_ms": (
                self.queue_wait_s * 1000.0 / self.done if self.done else 0.0
            ),
        }


class WorkerSupervisor:
    """Supervises a persistent pool of worker processes.

    ``init_fn(*init_args)`` runs once in each (re)spawned worker;
    ``run_fn(payload)`` executes one task and its return value is
    shipped back to the parent.  Both must be module-level picklable
    callables.  Results are delivered by invoking each task's callback
    with a :class:`TaskOutcome` **on the monitor thread** — callbacks
    must be quick and thread-safe (append to a queue, set an event,
    ``call_soon_threadsafe``...).

    Thread-safe: :meth:`submit`, :meth:`interrupt`, :meth:`shutdown`
    and :meth:`stats` may be called from any thread.
    """

    def __init__(
        self,
        policy: SupervisorPolicy,
        run_fn: Callable[[Any], Any],
        init_fn: Optional[Callable[..., None]] = None,
        init_args: Tuple[Any, ...] = (),
        fault_profile: Optional[FaultProfile] = None,
        fault_seed: int = 0,
    ) -> None:
        self.policy = policy
        self._run_fn = run_fn
        self._init_fn = init_fn
        self._init_args = init_args
        self._fault_profile = fault_profile
        self._fault_seed = fault_seed
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        self._ctx = get_context("fork") if "fork" in methods else get_context()
        self._slots = [_Slot(index=i) for i in range(policy.workers)]
        self._pending: Deque[_Task] = deque()
        self._inbox: Deque[Tuple[str, Any]] = deque()
        self._inbox_lock = threading.Lock()
        self._wake_r, self._wake_w = os.pipe()
        self._monitor: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._phase = "new"  # new | running | draining | interrupted | stopped
        self._drain_deadline: Optional[float] = None
        self._restarts_total = 0
        self.stats_data = SupervisorStats()
        self._stats_lock = threading.Lock()

    # -- public API ----------------------------------------------------

    @property
    def healthy(self) -> bool:
        """False once the restart budget is exhausted (breaker open)."""
        budget = self.policy.restart_budget
        return budget is None or self._restarts_total <= budget

    def start(self) -> "WorkerSupervisor":
        """Spawn the workers and the monitor thread."""
        if self._phase != "new":
            raise HarnessError("supervisor already started")
        self._phase = "running"
        for slot in self._slots:
            self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def submit(
        self,
        task_id: str,
        payload: Any,
        callback: Callable[[TaskOutcome], None],
    ) -> None:
        """Queue one task; its callback fires exactly once."""
        if self._phase not in ("new", "running"):
            raise HarnessError(
                f"supervisor is {self._phase}; not accepting tasks"
            )
        task = _Task(task_id=task_id, payload=payload, callback=callback,
                     enqueued_at=now())
        with self._stats_lock:
            self.stats_data.submitted += 1
        self._post(("submit", task))

    def interrupt(self) -> None:
        """Cancel everything (pending and in flight) and stop workers."""
        self._post(("interrupt", None))

    def shutdown(self) -> None:
        """Drain: finish in-flight tasks (bounded), then stop workers.

        Pending (never-dispatched) tasks are cancelled — for the
        daemon they remain journaled in the job queue and are
        recovered on restart.
        """
        self._post(("shutdown", None))

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the monitor thread to finish tearing down."""
        self._stopped.wait(timeout)

    def stats(self) -> Dict[str, Any]:
        """JSON-safe telemetry snapshot (thread-safe)."""
        with self._stats_lock:
            payload = self.stats_data.to_payload()
        payload["healthy"] = self.healthy
        payload["restarts_total"] = self._restarts_total
        payload["workers"] = self.policy.workers
        payload["workers_live"] = sum(
            1 for s in self._slots if s.state in ("starting", "idle", "busy")
        )
        return payload

    # -- monitor internals ---------------------------------------------

    def _post(self, command: Tuple[str, Any]) -> None:
        with self._inbox_lock:
            self._inbox.append(command)
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn, self._init_fn, self._init_args, self._run_fn,
                self._fault_profile, self._fault_seed,
                self.policy.heartbeat_interval_s,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.state = "starting"
        slot.task = None
        slot.last_hb = now()
        slot.task_deadline = None
        slot.restart_at = None

    def _kill_slot(self, slot: _Slot) -> None:
        if slot.proc is not None:
            try:
                slot.proc.kill()
            except (OSError, AttributeError, ValueError):
                pass
            slot.proc.join(1.0)
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        slot.proc = None
        slot.conn = None

    def _bump(self, field_name: str, amount: float = 1) -> None:
        with self._stats_lock:
            setattr(self.stats_data, field_name,
                    getattr(self.stats_data, field_name) + amount)

    def _deliver(self, task: _Task, outcome: TaskOutcome) -> None:
        if outcome.status == "done":
            self._bump("done")
            self._bump("queue_wait_s", outcome.queue_wait_s)
            COUNTERS.serve_jobs_done += 1
            COUNTERS.serve_queue_wait_us += int(
                outcome.queue_wait_s * 1_000_000
            )
        elif outcome.status == "error":
            self._bump("errors")
        elif outcome.status == "lost":
            self._bump("lost")
        else:
            self._bump("cancelled")
        try:
            task.callback(outcome)
        except Exception:
            # A broken callback must not take the monitor down; the
            # supervisor's contract is "callback fires once", not
            # "callback succeeds".
            pass

    def _queue_wait(self, task: _Task) -> float:
        if task.first_dispatch_at is None:
            return 0.0
        return task.first_dispatch_at - task.enqueued_at

    def _fail_task(self, task: _Task, status: str, error: str) -> None:
        self._deliver(task, TaskOutcome(
            task_id=task.task_id, status=status, error=error,
            dispatches=task.dispatches,
            queue_wait_s=self._queue_wait(task),
        ))

    def _requeue_or_fail(self, task: _Task, why: str) -> None:
        if task.dispatches >= self.policy.max_dispatches:
            self._fail_task(
                task, "lost",
                f"dispatch budget exhausted after {task.dispatches} "
                f"attempts (last: {why})",
            )
            return
        self._bump("redispatches")
        COUNTERS.serve_job_redispatches += 1
        self._pending.appendleft(task)

    def _on_slot_death(self, slot: _Slot, why: str) -> None:
        task = slot.task
        slot.task = None
        slot.task_deadline = None
        self._kill_slot(slot)
        slot.fail_streak += 1
        if task is not None:
            self._requeue_or_fail(task, why)
        if self._phase in ("draining", "interrupted"):
            slot.state = "dead"
            return
        self._restarts_total += 1
        if not self.healthy:
            slot.state = "dead"
            return
        backoff = min(
            self.policy.restart_backoff_cap_s,
            self.policy.restart_backoff_base_s * (2 ** (slot.fail_streak - 1)),
        )
        slot.state = "down"
        slot.restart_at = now() + backoff
        self._bump("worker_restarts")
        COUNTERS.serve_worker_restarts += 1

    def _pump_slot(self, slot: _Slot) -> None:
        """Drain every message the slot's pipe currently holds."""
        while True:
            try:
                if not slot.conn.poll():
                    return
                message = slot.conn.recv()
            except (EOFError, OSError):
                self._on_slot_death(slot, "worker process died")
                return
            kind = message[0]
            slot.last_hb = now()
            if kind == "hb":
                continue
            if kind == "ready":
                slot.state = "idle"
                continue
            task = slot.task
            slot.task = None
            slot.task_deadline = None
            slot.state = "idle"
            slot.fail_streak = 0
            if task is None:
                continue  # late reply from a task already written off
            if kind == "done":
                _, task_id, value = message
                self._deliver(task, TaskOutcome(
                    task_id=task_id, status="done", value=value,
                    dispatches=task.dispatches,
                    queue_wait_s=self._queue_wait(task),
                ))
            elif kind == "task-error":
                _, _task_id, error = message
                self._fail_task(task, "error", error)

    def _dispatch(self) -> None:
        if self._phase != "running":
            return
        for slot in self._slots:
            if not self._pending:
                return
            if slot.state != "idle":
                continue
            task = self._pending.popleft()
            task.dispatches += 1
            if task.first_dispatch_at is None:
                task.first_dispatch_at = now()
            try:
                slot.conn.send((
                    "task", task.task_id, task.payload, task.dispatches - 1,
                ))
            except (OSError, BrokenPipeError):
                self._on_slot_death(slot, "pipe broke on dispatch")
                continue
            slot.state = "busy"
            slot.task = task
            if self.policy.job_timeout_s is not None:
                slot.task_deadline = now() + self.policy.job_timeout_s

    def _check_deadlines(self) -> None:
        current = now()
        for slot in self._slots:
            if slot.state not in ("starting", "idle", "busy"):
                continue
            if current - slot.last_hb > self.policy.heartbeat_timeout_s:
                self._bump("heartbeat_misses")
                COUNTERS.serve_heartbeat_misses += 1
                self._on_slot_death(slot, "heartbeat deadline lapsed")
                continue
            if (slot.task_deadline is not None
                    and current > slot.task_deadline):
                self._bump("job_timeouts")
                COUNTERS.serve_job_timeouts += 1
                self._on_slot_death(slot, "job wall-clock timeout")

    def _restart_due(self) -> None:
        if self._phase != "running":
            return
        current = now()
        for slot in self._slots:
            if slot.state == "down" and slot.restart_at is not None:
                if current >= slot.restart_at:
                    self._spawn(slot)

    def _fail_pending_if_stranded(self) -> None:
        """No live worker and none coming back: fail queued tasks."""
        if not self._pending or self._phase != "running":
            return
        revivable = any(
            slot.state in ("starting", "idle", "busy", "down")
            for slot in self._slots
        )
        if revivable:
            return
        while self._pending:
            self._fail_task(
                self._pending.popleft(), "lost",
                "no live workers and restart budget exhausted",
            )

    def _cancel_all(self, include_in_flight: bool) -> None:
        while self._pending:
            task = self._pending.popleft()
            self._fail_task(task, "cancelled", "supervisor interrupted")
        if include_in_flight:
            for slot in self._slots:
                if slot.task is not None:
                    task = slot.task
                    slot.task = None
                    slot.task_deadline = None
                    self._fail_task(
                        task, "cancelled", "supervisor interrupted"
                    )

    def _process_inbox(self) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                kind, arg = self._inbox.popleft()
            if kind == "submit":
                if self._phase == "running":
                    self._pending.append(arg)
                else:
                    self._fail_task(
                        arg, "cancelled", f"supervisor {self._phase}"
                    )
            elif kind == "interrupt":
                self._phase = "interrupted"
            elif kind == "shutdown":
                if self._phase == "running":
                    self._phase = "draining"
                    self._drain_deadline = (
                        now() + self.policy.drain_timeout_s
                    )
                    self._cancel_all(include_in_flight=False)

    def _next_timeout(self) -> float:
        deadlines: List[float] = []
        for slot in self._slots:
            if slot.state in ("starting", "idle", "busy"):
                deadlines.append(
                    slot.last_hb + self.policy.heartbeat_timeout_s
                )
            if slot.task_deadline is not None:
                deadlines.append(slot.task_deadline)
            if slot.state == "down" and slot.restart_at is not None:
                deadlines.append(slot.restart_at)
        if self._drain_deadline is not None:
            deadlines.append(self._drain_deadline)
        if not deadlines:
            return 0.5
        return max(0.0, min(0.5, min(deadlines) - now()))

    def _monitor_loop(self) -> None:
        try:
            while True:
                self._process_inbox()
                if self._phase == "interrupted":
                    break
                self._restart_due()
                self._dispatch()
                self._fail_pending_if_stranded()
                if self._phase == "draining":
                    in_flight = any(s.task is not None for s in self._slots)
                    if not in_flight or now() >= (
                        self._drain_deadline or 0.0
                    ):
                        break
                readers = [
                    slot.conn for slot in self._slots
                    if slot.conn is not None
                ]
                readers.append(self._wake_r)
                ready = mp_connection.wait(
                    readers, timeout=self._next_timeout()
                )
                if self._wake_r in ready:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                for slot in list(self._slots):
                    if slot.conn is not None and slot.conn in ready:
                        self._pump_slot(slot)
                self._check_deadlines()
        finally:
            self._teardown()

    def _teardown(self) -> None:
        self._cancel_all(include_in_flight=True)
        for slot in self._slots:
            if slot.conn is not None and slot.state == "idle":
                try:
                    slot.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            self._kill_slot(slot)
            slot.state = "dead"
        self._phase = "stopped"
        self._stopped.set()
