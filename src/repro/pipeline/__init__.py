"""Cycle-driven out-of-order pipeline with value prediction.

The processor of the paper's Figure 1.  :class:`~repro.pipeline.core.Core`
executes :class:`~repro.isa.program.Program` objects against a shared
:class:`~repro.memory.hierarchy.MemorySystem` and a
:class:`~repro.vp.base.ValuePredictor`.
"""

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import EA_MASK, Core
from repro.pipeline.reference import ReferenceExecutor
from repro.pipeline.trace import LoadEvent, RunResult
from repro.pipeline.uop import MicroOp, UopState

__all__ = [
    "Core",
    "CoreConfig",
    "EA_MASK",
    "LoadEvent",
    "MicroOp",
    "ReferenceExecutor",
    "RunResult",
    "UopState",
]
