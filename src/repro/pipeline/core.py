"""The out-of-order core with an integrated Value Prediction System.

This is the pipeline of the paper's Figure 1.  The mechanisms the
attacks rely on are modelled at cycle granularity:

* Loads that **miss** in L1 consult the VPS ("load-based VPS" — the
  paper's threat model).  A prediction broadcasts a *speculative*
  value to dependents after :attr:`CoreConfig.predict_latency` cycles,
  long before the actual data returns from memory.
* When the data returns, the **Prediction Verification** step trains
  the predictor and compares.  A correct prediction commits normally;
  a misprediction squashes every younger instruction ("not only the
  predicted load but also dependent instructions to be squashed and
  reissued") and refetch resumes after
  :attr:`CoreConfig.squash_penalty` cycles.
* Instructions executed under an unverified prediction still perform
  real cache fills (unless a delay-side-effect defense is active), so
  a squashed transient load leaves a footprint — the paper's
  persistent channel.

The resulting trigger-step timings order exactly as the paper
describes: *correct prediction* (dependents overlap the miss) <
*no prediction* (dependents serialize after the miss) <
*misprediction* (miss, squash penalty, then re-execution).

Timing fidelity note: the simulator advances cycle by cycle but skips
runs of provably idle cycles (e.g. while all in-flight loads wait on
DRAM); this is a pure speed optimisation and does not change any
event's cycle number.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import islice
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import PipelineError, SimulationError
from repro.perf.counters import COUNTERS
from repro.isa.instructions import (
    NUM_REGISTERS,
    AluOp,
    Opcode,
)
from repro.isa.program import PlacedInstruction, Program
from repro.memory.hierarchy import MemorySystem
from repro.pipeline.config import CoreConfig
from repro.pipeline.trace import LoadEvent, RunResult
from repro.pipeline.uop import MicroOp, UopState
from repro.vp.base import AccessKey, ValuePredictor
from repro.vp.nopred import NoPredictor

#: Effective addresses are masked into the private virtual range so
#: attacker-controlled arithmetic can never overflow the address map.
EA_MASK = (1 << 40) - 1

_VALUE_MASK = (1 << 64) - 1


def _alu_compute(alu_op: AluOp, lhs: int, rhs: int) -> int:
    """Evaluate an ALU operation on 64-bit values."""
    if alu_op is AluOp.ADD:
        result = lhs + rhs
    elif alu_op is AluOp.SUB:
        result = lhs - rhs
    elif alu_op is AluOp.XOR:
        result = lhs ^ rhs
    elif alu_op is AluOp.AND:
        result = lhs & rhs
    elif alu_op is AluOp.OR:
        result = lhs | rhs
    elif alu_op is AluOp.MUL:
        result = lhs * rhs
    elif alu_op is AluOp.SHL:
        result = lhs << (rhs & 63)
    elif alu_op is AluOp.SHR:
        result = (lhs & _VALUE_MASK) >> (rhs & 63)
    else:  # pragma: no cover - exhaustive over AluOp
        raise PipelineError(f"unhandled ALU op {alu_op}")
    return result & _VALUE_MASK


class Core:
    """A single out-of-order core.

    The core's memory system and predictor persist across
    :meth:`run` calls — that persistence is the shared
    microarchitectural state the sender and receiver communicate
    through.  The cycle counter is likewise global and monotonic, so
    RDTSC readings taken in different runs share a timebase.

    Args:
        memory: Shared memory hierarchy.
        predictor: The Value Prediction System (use
            :class:`~repro.vp.nopred.NoPredictor` or
            ``config.value_prediction=False`` for the "no VP" control).
        config: Core parameters.
    """

    def __init__(
        self,
        memory: MemorySystem,
        predictor: Optional[ValuePredictor] = None,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.memory = memory
        self.predictor = predictor if predictor is not None else NoPredictor()
        self.config = config or CoreConfig()
        self.cycle = 0
        self.total_squashes = 0
        self.total_retired = 0
        self._seq = 0

    def reset(self, predictor: Optional[ValuePredictor] = None) -> None:
        """Restore the core to its just-constructed state.

        Part of the warm-machine reset protocol: zeroes the cycle
        counter (so RDTSC timebases match a cold core), the sequence
        counter and the aggregate statistics, and optionally installs a
        fresh predictor chain.  The memory system is reset separately
        via :meth:`repro.memory.hierarchy.MemorySystem.reset` — after
        both, a reused core is observationally identical to
        ``Core(memory, predictor, config)`` on a fresh hierarchy.
        """
        if predictor is not None:
            self.predictor = predictor
        self.cycle = 0
        self.total_squashes = 0
        self.total_retired = 0
        self._seq = 0

    def snapshot(self) -> object:
        """Capture the core's persistent state (snapshot/fork protocol).

        Between :meth:`run_concurrent` calls the core holds no
        in-flight pipeline state — every ``_RunState`` (ROB, rename
        map, store buffer, event heap) is created inside
        ``run_concurrent`` and discarded when it returns — so the
        persistent state is exactly the four counters that survive
        across runs.  Snapshots are only meaningful at this run
        boundary; the predictor and memory hierarchy are captured
        separately (:mod:`repro.snapshot`).
        """
        return (self.cycle, self.total_squashes, self.total_retired,
                self._seq)

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`."""
        (self.cycle, self.total_squashes, self.total_retired,
         self._seq) = state  # type: ignore[misc]

    # ------------------------------------------------------------------
    def run(self, program: Program) -> RunResult:
        """Execute ``program`` to completion and return its results."""
        return self.run_concurrent([program])[0]

    def run_concurrent(self, programs: Sequence[Program]) -> List[RunResult]:
        """Execute several programs simultaneously, SMT-style.

        Each program gets its own hardware context (ROB, rename map,
        store buffer) but all contexts share the **execution ports**
        each cycle, the memory hierarchy, and the Value Prediction
        System.  Port sharing is what creates the paper's *volatile*
        (contention) channel: a co-runner can observe another context's
        transient execution through the latency of its own port-bound
        operations.

        Contexts that finish early simply stop consuming resources;
        the call returns when every program has retired its HALT.
        Per-context end cycles record when *that* context drained.
        """
        if not programs:
            raise SimulationError("run_concurrent needs at least one program")
        states = [
            _RunState(self, program, program.dynamic_trace())
            for program in programs
        ]
        start_cycle = self.cycle
        end_cycles: List[Optional[int]] = [None] * len(states)
        safety_limit = start_cycle + self.config.max_cycles

        def unfinished(state: "_RunState") -> bool:
            return state.fetch_index < len(state.trace) or bool(state.rob)

        # One port-budget object is reused for the whole run; a fresh
        # allocation per simulated cycle dominated the allocator in
        # profiles of long sweeps.
        ports = _PortBudget(self.config)

        while any(unfinished(state) for state in states):
            if self.cycle > safety_limit:
                names = ", ".join(program.name for program in programs)
                raise SimulationError(
                    f"programs [{names}] exceeded "
                    f"{self.config.max_cycles} cycles (livelock?)"
                )
            progress = False
            for state in states:
                if unfinished(state):
                    progress |= state.complete_and_verify()
                    progress |= state.commit()
            # Round-robin issue priority between contexts, as in real
            # SMT cores: without it the first context would never feel
            # contention and the volatile channel would be one-sided.
            ports.refill(self.config)
            offset = self.cycle % len(states)
            for state in states[offset:] + states[:offset]:
                if unfinished(state):
                    progress |= state.issue(ports)
            for state in states:
                if unfinished(state):
                    progress |= state.dispatch()
            for index, state in enumerate(states):
                if end_cycles[index] is None and not unfinished(state):
                    end_cycles[index] = self.cycle
            if progress:
                self.cycle += 1
            else:
                candidates = [
                    state.next_event_cycle()
                    for state in states if unfinished(state)
                ]
                candidates = [c for c in candidates if c is not None]
                next_cycle = min(candidates) if candidates else None
                if next_cycle is None or next_cycle <= self.cycle:
                    details = "; ".join(
                        f"{state.program.name}: {state.describe_stall()}"
                        for state in states if unfinished(state)
                    )
                    raise SimulationError(
                        f"pipeline deadlock at cycle {self.cycle}: {details}"
                    )
                self.cycle = next_cycle

        COUNTERS.simulated_cycles += self.cycle - start_cycle
        results = []
        for index, state in enumerate(states):
            self.total_retired += state.retired
            self.total_squashes += state.squashes
            results.append(RunResult(
                program_name=state.program.name,
                pid=state.program.pid,
                start_cycle=start_cycle,
                end_cycle=(
                    end_cycles[index]
                    if end_cycles[index] is not None else self.cycle
                ),
                retired=state.retired,
                squashes=state.squashes,
                rdtsc_values=state.rdtsc_values,
                registers={
                    reg: value
                    for reg, value in enumerate(state.arch_regs)
                    if value != 0
                },
                load_events=state.load_events,
            ))
        return results


class _PortBudget:
    """Per-cycle execution-port availability, shared by all contexts."""

    __slots__ = ("alu", "mul", "mem")

    def __init__(self, config: CoreConfig) -> None:
        self.refill(config)

    def refill(self, config: CoreConfig) -> None:
        """Restore the full budget at the start of a cycle."""
        self.alu = config.alu_ports
        self.mul = config.mul_ports
        self.mem = config.mem_ports


class _RunState:
    """Per-run mutable pipeline state (ROB, rename map, buffers)."""

    __slots__ = (
        "core", "config", "memory", "predictor", "program", "trace",
        "pid", "rob", "rename", "arch_regs", "store_buffer",
        "fetch_index", "dispatch_stall_until", "fence_active",
        "retired", "squashes", "rdtsc_values", "load_events",
        "unverified_predictions", "deferred_fills", "pending_issue",
        "issued_uops", "_earliest_completion", "_event_heap",
    )

    def __init__(self, core: Core, program: Program,
                 trace: Tuple[PlacedInstruction, ...]) -> None:
        self.core = core
        self.config = core.config
        self.memory = core.memory
        self.predictor = core.predictor
        self.program = program
        self.trace = trace
        self.pid = program.pid

        # The ROB is a deque: commit retires from the left every cycle,
        # and list.pop(0) was a measurable share of long sweeps.
        self.rob: Deque[MicroOp] = deque()
        self.rename: Dict[int, MicroOp] = {}
        self.arch_regs: List[int] = [0] * NUM_REGISTERS
        self.store_buffer: List[MicroOp] = []
        self.fetch_index = 0
        self.dispatch_stall_until = 0
        self.fence_active = 0

        self.retired = 0
        self.squashes = 0
        self.rdtsc_values: List[Tuple[int, int]] = []
        self.load_events: List[LoadEvent] = []

        # seq -> predicted load whose verification is still pending.
        self.unverified_predictions: Dict[int, MicroOp] = {}
        # src seq -> uops whose deferred fill waits on that prediction.
        self.deferred_fills: Dict[int, List[MicroOp]] = {}
        # Ops dispatched but not yet issued, in program order (a
        # scan-cost optimisation: the issue stage walks this instead of
        # the whole ROB).
        self.pending_issue: List[MicroOp] = []
        # Ops issued but not yet completed (the complement of
        # pending_issue): completion scans walk this short list instead
        # of the whole ROB, which for long dependent-chain windows is
        # mostly DISPATCHED ops that cannot complete anyway.
        self.issued_uops: List[MicroOp] = []
        # Earliest pending completion among ISSUED ops, or None; lets
        # completion scans exit immediately on quiet cycles.
        self._earliest_completion: Optional[int] = None
        # Min-heap of future event cycles (value-ready and completion
        # times, as scheduled).  next_event_cycle() pops it lazily
        # instead of scanning the whole ROB.  Entries are never removed
        # on squash, so the heap may hold *stale* cycles; waking at a
        # stale cycle is a harmless no-progress visit — no event is
        # recorded there and the loop immediately skips onward, so
        # every recorded cycle number is identical to the scan version.
        self._event_heap: List[int] = []

    def _note_completion_time(self, when: int) -> None:
        heappush(self._event_heap, when)
        if (
            self._earliest_completion is None
            or when < self._earliest_completion
        ):
            self._earliest_completion = when

    def _recompute_earliest_completion(self) -> None:
        earliest: Optional[int] = None
        for uop in self.issued_uops:
            if uop.state is UopState.ISSUED and uop.complete_cycle is not None:
                if earliest is None or uop.complete_cycle < earliest:
                    earliest = uop.complete_cycle
        self._earliest_completion = earliest

    # ------------------------------------------------------------------
    # Stage: completion and prediction verification
    # ------------------------------------------------------------------
    def complete_and_verify(self) -> bool:
        """Move finished ops to COMPLETED; verify predictions in order."""
        cycle = self.core.cycle
        if (
            self._earliest_completion is None
            or self._earliest_completion > cycle
        ):
            return False
        progress = False
        while True:
            candidate: Optional[MicroOp] = None
            for uop in self.issued_uops:
                if uop.state is not UopState.ISSUED:
                    continue
                if uop.complete_cycle is None or uop.complete_cycle > cycle:
                    continue
                if candidate is None or (
                    (uop.complete_cycle, uop.seq)
                    < (candidate.complete_cycle, candidate.seq)
                ):
                    candidate = uop
            if candidate is None:
                self.issued_uops = [
                    uop for uop in self.issued_uops
                    if uop.state is UopState.ISSUED
                ]
                self._recompute_earliest_completion()
                return progress
            progress = True
            self._finish(candidate)

    def _finish(self, uop: MicroOp) -> None:
        """Complete one op; for predicted loads, verify and maybe squash."""
        uop.state = UopState.COMPLETED
        if not uop.is_load:
            return
        squashed_count = 0
        if not uop.forwarded and uop.vps_key is not None:
            # The VPS observes the returning value (miss loads always;
            # hit loads under train_on_hit / predict_on_hit).
            assert uop.actual_value is not None
            if uop.prediction is not None:
                self.predictor.train(
                    uop.vps_key, uop.actual_value, uop.prediction
                )
                self.unverified_predictions.pop(uop.seq, None)
                if uop.prediction.value == uop.actual_value:
                    uop.verified = True
                    self._resolve_deferred_fills(uop, correct=True)
                else:
                    uop.verified = False
                    uop.result = uop.actual_value
                    uop.value_ready_cycle = uop.complete_cycle
                    squashed_count = self._squash_younger(uop)
            else:
                self.predictor.train(uop.vps_key, uop.actual_value, None)
        self._record_load_event(uop, squashed_count)

    def _record_load_event(self, uop: MicroOp, squashed_count: int) -> None:
        assert uop.issue_cycle is not None and uop.complete_cycle is not None
        self.load_events.append(
            LoadEvent(
                seq=uop.seq,
                pc=uop.pc,
                addr=uop.addr if uop.addr is not None else 0,
                issue_cycle=uop.issue_cycle,
                complete_cycle=uop.complete_cycle,
                latency=uop.complete_cycle - uop.issue_cycle,
                l1_hit=bool(uop.l1_hit),
                forwarded=uop.forwarded,
                predicted=uop.prediction is not None,
                prediction_correct=uop.verified,
                value=uop.result if uop.result is not None else 0,
                squashed_dependents=squashed_count,
            )
        )

    # ------------------------------------------------------------------
    # Squash machinery
    # ------------------------------------------------------------------
    def _squash_younger(self, load: MicroOp) -> int:
        """Squash everything younger than ``load``; returns the count."""
        self.squashes += 1
        survivors: Deque[MicroOp] = deque()
        squashed: List[MicroOp] = []
        for uop in self.rob:
            if uop.seq > load.seq:
                uop.state = UopState.SQUASHED
                squashed.append(uop)
            else:
                survivors.append(uop)
        self.rob = survivors
        self.store_buffer = [
            store for store in self.store_buffer
            if store.state is not UopState.SQUASHED
        ]
        self.pending_issue = [
            uop for uop in self.pending_issue
            if uop.state is not UopState.SQUASHED
        ]
        self.issued_uops = [
            uop for uop in self.issued_uops
            if uop.state is UopState.ISSUED
        ]
        self._recompute_earliest_completion()
        for uop in squashed:
            self.unverified_predictions.pop(uop.seq, None)
        for src_seq in list(self.deferred_fills):
            remaining = [
                uop for uop in self.deferred_fills[src_seq]
                if uop.state is not UopState.SQUASHED
            ]
            if remaining:
                self.deferred_fills[src_seq] = remaining
            else:
                del self.deferred_fills[src_seq]
        # Rebuild the rename map from the surviving window.
        self.rename = {}
        for uop in self.rob:
            if uop.state is UopState.RETIRED:
                continue
            destination = uop.instr.destination_register()
            if destination is not None:
                self.rename[destination] = uop
        self.fence_active = sum(
            1 for uop in self.rob if uop.instr.op is Opcode.FENCE
        )
        # Refetch resumes after the squash penalty.
        self.fetch_index = load.trace_index + 1
        self.dispatch_stall_until = max(
            self.dispatch_stall_until,
            self.core.cycle + self.config.squash_penalty,
        )
        return len(squashed)

    def _resolve_deferred_fills(self, verified_load: MicroOp, correct: bool) -> None:
        """Release (or re-key) fills gated on ``verified_load``."""
        waiting = self.deferred_fills.pop(verified_load.seq, [])
        if not waiting or not correct:
            return
        parent_seq = verified_load.spec_src
        parent_unverified = (
            parent_seq is not None and parent_seq in self.unverified_predictions
        )
        for uop in waiting:
            if uop.state is UopState.SQUASHED:
                continue
            if parent_unverified:
                uop.spec_src = parent_seq
                self.deferred_fills.setdefault(parent_seq, []).append(uop)
            elif uop.pending_fill_paddr is not None and not self.config.invisispec:
                assert uop.addr is not None
                self.memory.apply_deferred_fill(
                    uop.pending_fill_paddr, self.pid, uop.addr
                )
                uop.pending_fill_paddr = None

    # ------------------------------------------------------------------
    # Stage: commit
    # ------------------------------------------------------------------
    def commit(self) -> bool:
        """Retire completed head-of-ROB ops; execute serialising ops there."""
        cycle = self.core.cycle
        progress = False
        budget = self.config.commit_width
        while budget > 0 and self.rob:
            head = self.rob[0]
            if head.state is UopState.DISPATCHED and head.serial_op:
                # RDTSC / FENCE execute once they reach the head with
                # the machine drained (in-order ancestors retired).
                head.state = UopState.COMPLETED
                head.value_ready_cycle = cycle
                head.complete_cycle = cycle
                if head.instr.op is Opcode.RDTSC:
                    head.result = cycle
                progress = True
            if head.state is not UopState.COMPLETED:
                break
            if head.complete_cycle is not None and head.complete_cycle > cycle:
                break
            self._retire(head)
            self.rob.popleft()
            budget -= 1
            progress = True
        return progress

    def _retire(self, uop: MicroOp) -> None:
        uop.state = UopState.RETIRED
        destination = uop.instr.destination_register()
        if destination is not None:
            self.arch_regs[destination] = uop.result if uop.result is not None else 0
            if self.rename.get(destination) is uop:
                del self.rename[destination]
        if uop.instr.op is Opcode.RDTSC:
            self.rdtsc_values.append((uop.pc, uop.result or 0))
        elif uop.instr.op is Opcode.FENCE:
            self.fence_active -= 1
        elif uop.is_store:
            assert uop.addr is not None and uop.result is not None
            self.memory.store(self.pid, uop.addr, uop.result)
            if uop in self.store_buffer:
                self.store_buffer.remove(uop)
        elif uop.is_load and uop.pending_fill_paddr is not None:
            # InvisiSpec-style deferred fill lands at commit.
            assert uop.addr is not None
            self.memory.apply_deferred_fill(
                uop.pending_fill_paddr, self.pid, uop.addr
            )
            uop.pending_fill_paddr = None
        self.retired += 1

    # ------------------------------------------------------------------
    # Stage: issue/execute
    # ------------------------------------------------------------------
    def issue(self, ports: Optional["_PortBudget"] = None) -> bool:
        """Issue ready ops to the (possibly shared) execution ports."""
        cycle = self.core.cycle
        budget = self.config.issue_width
        if ports is None:
            ports = _PortBudget(self.config)
        progress = False
        memory_blocked = False
        leftovers: List[MicroOp] = []

        for index, uop in enumerate(self.pending_issue):
            if budget <= 0:
                leftovers.extend(self.pending_issue[index:])
                break
            if uop.state is not UopState.DISPATCHED:
                # Issued earlier, completed via commit() (serialising
                # ops), or squashed: drop from the pending list.
                continue
            op = uop.instr.op
            if uop.serial_op:
                leftovers.append(uop)  # handled at the ROB head by commit()
                continue
            if uop.mem_op:
                if memory_blocked:
                    leftovers.append(uop)
                    continue
                # ready_hint is checked inline before the call: the
                # compare alone rejects most waiting ops and the
                # function-call overhead was itself hot.
                if (
                    uop.ready_hint > cycle
                    or not uop.ready_for_issue(cycle)
                    or ports.mem <= 0
                ):
                    memory_blocked = True
                    leftovers.append(uop)
                    continue
                ports.mem -= 1
                budget -= 1
                progress = True
                self._issue_memory(uop, cycle)
                continue
            if uop.ready_hint > cycle or not uop.ready_for_issue(cycle):
                leftovers.append(uop)
                continue
            if op in (Opcode.NOP, Opcode.HALT):
                uop.state = UopState.ISSUED
                uop.issue_cycle = cycle
                uop.value_ready_cycle = cycle + 1
                uop.complete_cycle = cycle + 1
                self.issued_uops.append(uop)
                self._note_completion_time(cycle + 1)
                budget -= 1
                progress = True
                continue
            if op is Opcode.LI:
                uop.state = UopState.ISSUED
                uop.issue_cycle = cycle
                uop.result = uop.instr.imm & _VALUE_MASK
                latency = self.config.alu_latency
                uop.value_ready_cycle = cycle + latency
                uop.complete_cycle = cycle + latency
                self.issued_uops.append(uop)
                self._note_completion_time(cycle + latency)
                budget -= 1
                progress = True
                continue
            # ALU
            needs_mul = uop.instr.alu_op is AluOp.MUL
            if (needs_mul and ports.mul <= 0) or (
                not needs_mul and ports.alu <= 0
            ):
                leftovers.append(uop)
                continue
            lhs = uop.source_value(uop.instr.src1, self._arch_read)
            if uop.instr.src2 is not None:
                rhs = uop.source_value(uop.instr.src2, self._arch_read)
            else:
                rhs = uop.instr.imm
            uop.result = _alu_compute(uop.instr.alu_op, lhs, rhs)
            uop.spec_src = self._speculative_source(uop)
            latency = (
                self.config.mul_latency if needs_mul else self.config.alu_latency
            )
            uop.state = UopState.ISSUED
            uop.issue_cycle = cycle
            uop.value_ready_cycle = cycle + latency
            uop.complete_cycle = cycle + latency
            self.issued_uops.append(uop)
            self._note_completion_time(cycle + latency)
            if needs_mul:
                ports.mul -= 1
            else:
                ports.alu -= 1
            budget -= 1
            progress = True
        self.pending_issue = leftovers
        return progress

    def _arch_read(self, reg: int) -> int:
        return self.arch_regs[reg]

    def _speculative_source(self, uop: MicroOp) -> Optional[int]:
        """Youngest unverified predicted load this op depends on."""
        best: Optional[int] = None
        for producer in uop.sources.values():
            if producer is None:
                continue
            candidate: Optional[int] = None
            if (
                producer.is_load
                and producer.prediction is not None
                and producer.verified is None
            ):
                candidate = producer.seq
            elif (
                producer.spec_src is not None
                and producer.spec_src in self.unverified_predictions
            ):
                candidate = producer.spec_src
            if candidate is not None and (best is None or candidate > best):
                best = candidate
        return best

    def _effective_address(self, uop: MicroOp) -> int:
        base = 0
        if uop.instr.src1 is not None:
            base = uop.source_value(uop.instr.src1, self._arch_read)
        return (base + uop.instr.imm) & EA_MASK

    def _issue_memory(self, uop: MicroOp, cycle: int) -> None:
        op = uop.instr.op
        uop.state = UopState.ISSUED
        uop.issue_cycle = cycle
        self.issued_uops.append(uop)
        uop.addr = self._effective_address(uop)
        uop.spec_src = self._speculative_source(uop)

        if op is Opcode.FLUSH:
            self.memory.flush(self.pid, uop.addr)
            done = cycle + self.memory.config.flush_latency
            uop.value_ready_cycle = done
            uop.complete_cycle = done
            self._note_completion_time(done)
            return

        if op is Opcode.STORE:
            uop.result = uop.source_value(uop.instr.src2, self._arch_read)
            uop.value_ready_cycle = cycle + 1
            uop.complete_cycle = cycle + 1
            self._note_completion_time(cycle + 1)
            self.store_buffer.append(uop)
            return

        # LOAD ----------------------------------------------------------
        forwarding_store = self._forwarding_store(uop)
        if forwarding_store is not None:
            uop.forwarded = True
            uop.l1_hit = True
            uop.result = forwarding_store.result
            uop.actual_value = forwarding_store.result
            done = cycle + self.memory.config.l1_hit_latency
            uop.value_ready_cycle = done
            uop.complete_cycle = done
            self._note_completion_time(done)
            return

        defer_for_dtype = (
            self.config.delay_speculative_fills and uop.spec_src is not None
        )
        fill = not (self.config.invisispec or defer_for_dtype)
        result = self.memory.load(self.pid, uop.addr, fill=fill)
        if not fill:
            uop.pending_fill_paddr = result.paddr
            if defer_for_dtype and not self.config.invisispec:
                self.deferred_fills.setdefault(uop.spec_src, []).append(uop)
        uop.l1_hit = result.l1_hit
        uop.actual_value = result.value

        if result.l1_hit:
            done = cycle + result.latency
            if self.config.train_on_hit or self.config.predict_on_hit:
                uop.vps_key = AccessKey(pc=uop.pc, addr=uop.addr, pid=self.pid)
            if (
                self.config.predict_on_hit
                and self.config.value_prediction
            ):
                # Footnote 2's non-load-based VPS: prediction happens
                # regardless of hit/miss.  Mispredicted hits still
                # squash, so the attacks need no cache flushing.
                prediction = self.predictor.predict(uop.vps_key)
                if prediction is not None:
                    uop.prediction = prediction
                    uop.result = prediction.value
                    uop.value_ready_cycle = min(
                        cycle + self.config.predict_latency, done
                    )
                    uop.complete_cycle = done
                    heappush(self._event_heap, uop.value_ready_cycle)
                    self._note_completion_time(done)
                    self.unverified_predictions[uop.seq] = uop
                    return
            uop.result = result.value
            uop.value_ready_cycle = done
            uop.complete_cycle = done
            self._note_completion_time(done)
            return

        # L1 miss: the Value Prediction System is engaged.
        uop.vps_key = AccessKey(pc=uop.pc, addr=uop.addr, pid=self.pid)
        memory_return = cycle + result.latency
        prediction = None
        if self.config.value_prediction:
            prediction = self.predictor.predict(uop.vps_key)
        if prediction is not None:
            uop.prediction = prediction
            uop.result = prediction.value
            uop.value_ready_cycle = cycle + self.config.predict_latency
            uop.complete_cycle = memory_return
            heappush(self._event_heap, uop.value_ready_cycle)
            self.unverified_predictions[uop.seq] = uop
        else:
            uop.result = result.value
            uop.value_ready_cycle = memory_return
            uop.complete_cycle = memory_return
        self._note_completion_time(memory_return)

    def _forwarding_store(self, load: MicroOp) -> Optional[MicroOp]:
        """Youngest older in-flight store to the same address."""
        best: Optional[MicroOp] = None
        for store in self.store_buffer:
            if store.seq < load.seq and store.addr == load.addr:
                if best is None or store.seq > best.seq:
                    best = store
        return best

    # ------------------------------------------------------------------
    # Stage: dispatch (fetch/decode/rename compressed into one stage)
    # ------------------------------------------------------------------
    def dispatch(self) -> bool:
        """Fetch/rename up to fetch_width trace entries into the ROB."""
        cycle = self.core.cycle
        if cycle < self.dispatch_stall_until:
            return False
        if self.fence_active > 0:
            return False
        budget = self.config.fetch_width
        progress = False
        while (
            budget > 0
            and self.fetch_index < len(self.trace)
            and len(self.rob) < self.config.rob_size
        ):
            placed = self.trace[self.fetch_index]
            uop = MicroOp(
                seq=self.core._seq,
                trace_index=self.fetch_index,
                pc=placed.pc,
                instr=placed.instruction,
            )
            self.core._seq += 1
            for reg in placed.instruction.source_registers():
                uop.sources[reg] = self.rename.get(reg)
            destination = placed.instruction.destination_register()
            if destination is not None:
                self.rename[destination] = uop
            self.rob.append(uop)
            self.pending_issue.append(uop)
            self.fetch_index += 1
            budget -= 1
            progress = True
            if placed.instruction.op is Opcode.FENCE:
                self.fence_active += 1
                break
        return progress

    # ------------------------------------------------------------------
    # Idle-skip support
    # ------------------------------------------------------------------
    def next_event_cycle(self) -> Optional[int]:
        """Earliest scheduled future cycle at which state can change.

        Backed by the event min-heap instead of a full-ROB scan; past
        (and therefore possibly stale) entries are popped lazily.  May
        return a stale cycle belonging to a squashed op — the caller's
        no-progress loop treats such a wakeup as a skippable quiet
        cycle, so timing is unaffected (see ``_event_heap``).
        """
        cycle = self.core.cycle
        heap = self._event_heap
        while heap and heap[0] <= cycle:
            heappop(heap)
        best: Optional[int] = heap[0] if heap else None
        if self.dispatch_stall_until > cycle and self.fetch_index < len(self.trace):
            if best is None or self.dispatch_stall_until < best:
                best = self.dispatch_stall_until
        return best

    def describe_stall(self) -> str:
        """Diagnostic string for deadlock errors."""
        states = {}
        for uop in islice(self.rob, 8):
            states[f"seq{uop.seq}:{uop.instr.op.value}"] = uop.state.value
        return (
            f"fetch_index={self.fetch_index}/{len(self.trace)} "
            f"rob={len(self.rob)} fence_active={self.fence_active} "
            f"stall_until={self.dispatch_stall_until} head_states={states}"
        )
