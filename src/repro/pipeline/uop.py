"""Dynamic micro-operation state tracked in the reorder buffer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.vp.base import Prediction


class UopState(enum.Enum):
    """Lifecycle of a micro-op inside the window."""

    DISPATCHED = "dispatched"   #: in the ROB, waiting for operands/port
    ISSUED = "issued"           #: executing on a port
    COMPLETED = "completed"     #: result final (loads: verified)
    RETIRED = "retired"         #: committed architecturally
    SQUASHED = "squashed"       #: killed by a value-misprediction squash


@dataclass(slots=True)
class MicroOp:
    """One in-flight dynamic instruction.

    Declared with ``slots=True``: a sweep allocates tens of millions of
    micro-ops, and slotted instances cut both per-op memory and
    attribute-access time in the cycle loop's hottest paths.

    Attributes:
        seq: Global dynamic sequence number (program order).
        trace_index: Position in the program's dynamic trace, used to
            restart fetch after a squash.
        pc: The instruction's program counter.
        instr: The static instruction.
        sources: Source register -> producing :class:`MicroOp` (or
            ``None`` when the value comes from the architectural file).
        value_ready_cycle: Cycle at which the result value becomes
            available to consumers.  For a value-predicted load this
            precedes :attr:`complete_cycle` — that early availability
            *is* value prediction's performance benefit and the
            paper's attack surface.
        complete_cycle: Cycle at which the op is done for retirement
            purposes (loads: actual data returned and verified).
        result: Result value (speculative for predicted loads until
            verification).
        addr: Effective virtual address (memory ops).
        l1_hit: Load hit L1 (no VPS involvement).
        prediction: The VPS prediction issued for this load, if any.
        verified: Prediction verification outcome (None until known).
        spec_src: Sequence number of the nearest *unverified* predicted
            load this op transitively depends on; drives the D-type
            deferred-fill bookkeeping.
        pending_fill_paddr: Physical address whose fill was deferred.
        forwarded: Load was satisfied by store-to-load forwarding.
    """

    seq: int
    trace_index: int
    pc: int
    instr: Instruction
    state: UopState = UopState.DISPATCHED
    sources: Dict[int, Optional["MicroOp"]] = field(default_factory=dict)
    value_ready_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    result: Optional[int] = None
    addr: Optional[int] = None
    l1_hit: Optional[bool] = None
    prediction: Optional[Prediction] = None
    verified: Optional[bool] = None
    spec_src: Optional[int] = None
    pending_fill_paddr: Optional[int] = None
    forwarded: bool = False
    issue_cycle: Optional[int] = None
    actual_value: Optional[int] = None
    vps_key: Optional[object] = None
    #: Static opcode classification, precomputed at fetch so the issue
    #: scan reads a slot instead of re-deriving it from the instruction
    #: every cycle (the scan touches every waiting uop every active
    #: cycle, which made these property calls the hottest line of long
    #: dependent-chain windows).
    mem_op: bool = False
    serial_op: bool = False
    #: Lower bound on the earliest cycle at which every source operand
    #: can be available; maintained by :meth:`ready_for_issue`.
    ready_hint: int = 0

    def __post_init__(self) -> None:
        op = self.instr.op
        self.mem_op = op in (Opcode.LOAD, Opcode.STORE, Opcode.FLUSH)
        self.serial_op = op in (Opcode.FENCE, Opcode.RDTSC)

    @property
    def is_load(self) -> bool:
        """True for load operations."""
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        """True for store operations."""
        return self.instr.is_store

    def value_available(self, cycle: int) -> bool:
        """True if the result can feed consumers at ``cycle``."""
        return self.value_ready_cycle is not None and self.value_ready_cycle <= cycle

    def sources_ready(self, cycle: int) -> bool:
        """True if every source operand is available at ``cycle``."""
        for producer in self.sources.values():
            if producer is None:
                continue
            if producer.state is UopState.SQUASHED:
                return False
            if not producer.value_available(cycle):
                return False
        return True

    def ready_for_issue(self, cycle: int) -> bool:
        """:meth:`sources_ready`, memoized with a monotone lower bound.

        ``ready_hint`` caches a lower bound on the earliest cycle at
        which every source can be available, so the issue scan skips
        waiting uops with one integer compare instead of re-walking
        their source producers every cycle.  The bound is sound
        because availability times only move in one direction: a
        producer's ``value_ready_cycle`` is fixed when it issues and
        is only ever *delayed* afterwards (value-misprediction
        verification), an unissued producer seen at ``cycle`` cannot
        feed a consumer before ``cycle + 1`` (unit minimum latency),
        and a squash discards every younger uop, so stale hints die
        with the objects that hold them.
        """
        if cycle < self.ready_hint:
            return False
        hint = 0
        for producer in self.sources.values():
            if producer is None:
                continue
            if producer.state is UopState.SQUASHED:
                return False
            ready = producer.value_ready_cycle
            if ready is None:
                ready = cycle + 1
            if ready > cycle and ready > hint:
                hint = ready
        if hint > cycle:
            self.ready_hint = hint
            return False
        return True

    def source_value(self, reg: int, arch_read) -> int:
        """Value of source register ``reg`` (producer result or file)."""
        producer = self.sources.get(reg)
        if producer is None:
            return arch_read(reg)
        assert producer.result is not None, "consumer issued before producer"
        return producer.result
