"""Run results and per-event records produced by the core."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class LoadEvent:
    """One dynamic load, as observed by the pipeline.

    Attributes:
        seq: Dynamic sequence number.
        pc: Load PC.
        addr: Effective virtual address.
        issue_cycle: Cycle the load issued to a memory port.
        complete_cycle: Cycle the actual data was available/verified.
        latency: ``complete_cycle - issue_cycle``.
        l1_hit: The access hit in L1 (VPS not engaged).
        forwarded: Satisfied by store-to-load forwarding.
        predicted: A value prediction was issued for this load.
        prediction_correct: Verification outcome (``None`` when no
            prediction was made).
        value: The architectural value loaded.
        squashed_dependents: Number of younger ops squashed by this
            load's misprediction (0 otherwise).
    """

    seq: int
    pc: int
    addr: int
    issue_cycle: int
    complete_cycle: int
    latency: int
    l1_hit: bool
    forwarded: bool
    predicted: bool
    prediction_correct: Optional[bool]
    value: int
    squashed_dependents: int = 0


@dataclass
class RunResult:
    """Outcome of executing one program on the core.

    The receiver's measurements live in :attr:`rdtsc_values`: each
    entry is ``(pc, cycle)`` for a committed RDTSC instruction, in
    program order.  Timing windows are differences between consecutive
    readings (:meth:`rdtsc_delta`).
    """

    program_name: str
    pid: int
    start_cycle: int
    end_cycle: int
    retired: int
    squashes: int
    rdtsc_values: List[Tuple[int, int]] = field(default_factory=list)
    registers: Dict[int, int] = field(default_factory=dict)
    load_events: List[LoadEvent] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Total cycles the run occupied."""
        return self.end_cycle - self.start_cycle

    def rdtsc_delta(self, first: int = 0, second: int = 1) -> int:
        """Difference between the ``second`` and ``first`` RDTSC readings.

        Raises:
            IndexError: If fewer RDTSC values were recorded.
        """
        return self.rdtsc_values[second][1] - self.rdtsc_values[first][1]

    def rdtsc_deltas(self) -> List[int]:
        """Consecutive differences between all RDTSC readings."""
        values = [value for _, value in self.rdtsc_values]
        return [b - a for a, b in zip(values, values[1:])]

    def loads_at_pc(self, pc: int) -> List[LoadEvent]:
        """All load events whose PC equals ``pc``."""
        return [event for event in self.load_events if event.pc == pc]

    def loads_tagged(self, program, tag: str) -> List[LoadEvent]:
        """Load events whose PC carries ``tag`` in ``program``."""
        pcs = set(program.pcs_tagged(tag))
        return [event for event in self.load_events if event.pc in pcs]

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.retired / self.cycles
