"""Core (pipeline) configuration.

Latencies and widths loosely follow a gem5 O3CPU-class core, which is
what the paper's experiments ran on.  Absolute values are not meant to
match the authors' testbed — the reproduction targets the *structure*
of the timing differences (correct prediction < no prediction <
misprediction, separated by the dependent-chain latency and the squash
penalty respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PipelineError


@dataclass
class CoreConfig:
    """Parameters of the out-of-order core.

    Attributes:
        fetch_width: Instructions dispatched into the ROB per cycle.
        issue_width: Maximum instructions issued to ports per cycle.
        commit_width: Maximum instructions retired per cycle.
        rob_size: Reorder-buffer capacity.
        alu_ports: Number of simple-ALU issue ports.
        mul_ports: Number of long-latency (multiply) ports.
        mem_ports: Number of load/store/flush ports.
        alu_latency: Cycles for simple ALU operations.
        mul_latency: Cycles for multiplies/shifts on the long port.
        predict_latency: Cycles between detecting an L1 miss and the
            Value Prediction System's speculative value broadcast.
        squash_penalty: Refetch/redecode delay after a value
            misprediction squash, before dispatch resumes.
        value_prediction: Master enable for the VPS (False = "no VP").
        train_on_hit: Train the VPS on cache hits too.  The paper's
            threat model is a *load-based* VPS where training requires
            a cache miss, so this defaults to False.
        predict_on_hit: Consult the VPS on cache hits as well — the
            paper's footnote 2 "non load-based VPS", whose attacks can
            be "triggered without causing cache misses".  Implies
            training on hits.  A misprediction on a hit still squashes,
            so the timing-window signal survives even when the
            attacker cannot flush.
        delay_speculative_fills: D-type defense — cache fills of loads
            that depend on an unverified value prediction are buffered
            and only applied once the prediction verifies correct
            (dropped on squash).
        invisispec: InvisiSpec-like baseline — *every* load's fill is
            deferred until the load commits.
        clock_ghz: Nominal clock used only to convert cycles into
            seconds for transmission-rate (Kbps) reporting.
        max_cycles: Safety bound; exceeding it raises
            :class:`~repro.errors.SimulationError`.
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 128
    alu_ports: int = 2
    mul_ports: int = 1
    mem_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 4
    predict_latency: int = 2
    squash_penalty: int = 14
    value_prediction: bool = True
    train_on_hit: bool = False
    predict_on_hit: bool = False
    delay_speculative_fills: bool = False
    invisispec: bool = False
    clock_ghz: float = 2.0
    max_cycles: int = 5_000_000

    def __post_init__(self) -> None:
        positive = (
            "fetch_width", "issue_width", "commit_width", "rob_size",
            "alu_ports", "mem_ports", "alu_latency", "mul_latency",
            "max_cycles",
        )
        for name in positive:
            if getattr(self, name) < 1:
                raise PipelineError(f"{name} must be >= 1")
        for name in ("mul_ports", "predict_latency", "squash_penalty"):
            if getattr(self, name) < 0:
                raise PipelineError(f"{name} must be >= 0")
        if self.clock_ghz <= 0:
            raise PipelineError("clock_ghz must be positive")
