"""Reference functional executor.

Executes a program's dynamic trace strictly in order with no timing
model.  The out-of-order core — with value speculation, squashes and
store-to-load forwarding — must produce exactly the same
*architectural* results (final registers and memory contents); the
property-based test suite checks that equivalence on randomly
generated programs.

RDTSC is the one architecturally timing-dependent instruction; the
reference executor returns 0 for it, and comparisons simply skip
registers written by RDTSC.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa.instructions import NUM_REGISTERS, Opcode
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.pipeline.core import EA_MASK, _alu_compute

_VALUE_MASK = (1 << 64) - 1


class ReferenceExecutor:
    """In-order, untimed executor sharing a core's memory system."""

    def __init__(self, memory: MemorySystem) -> None:
        self.memory = memory

    def run(self, program: Program) -> Tuple[Dict[int, int], Set[int]]:
        """Execute ``program``; returns (final registers, rdtsc regs).

        Registers are reported as a dense dict over all register
        numbers; the second element lists registers whose final value
        came from RDTSC (timing-dependent, excluded from comparisons).
        """
        regs: List[int] = [0] * NUM_REGISTERS
        rdtsc_tainted: Set[int] = set()

        for placed in program.dynamic_trace():
            instr = placed.instruction
            op = instr.op
            if op in (Opcode.NOP, Opcode.FENCE, Opcode.HALT):
                continue
            if op is Opcode.RDTSC:
                regs[instr.dst] = 0
                rdtsc_tainted.add(instr.dst)
                continue
            if op is Opcode.LI:
                regs[instr.dst] = instr.imm & _VALUE_MASK
                rdtsc_tainted.discard(instr.dst)
                continue
            if op is Opcode.ALU:
                lhs = regs[instr.src1]
                rhs = regs[instr.src2] if instr.src2 is not None else instr.imm
                regs[instr.dst] = _alu_compute(instr.alu_op, lhs, rhs)
                rdtsc_tainted.discard(instr.dst)
                continue
            base = regs[instr.src1] if instr.src1 is not None else 0
            address = (base + instr.imm) & EA_MASK
            if op is Opcode.LOAD:
                regs[instr.dst] = self.memory.read_value(program.pid, address)
                rdtsc_tainted.discard(instr.dst)
            elif op is Opcode.STORE:
                self.memory.write_value(
                    program.pid, address, regs[instr.src2]
                )
            elif op is Opcode.FLUSH:
                pass  # no architectural effect
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled opcode {op}")
        return {reg: regs[reg] for reg in range(NUM_REGISTERS)}, rdtsc_tainted
