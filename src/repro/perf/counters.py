"""Deterministic perf counters (no clock, no RNG — pure bookkeeping).

A single process-global :data:`COUNTERS` instance accumulates cache
and throughput statistics.  Everything here is a plain integer
increment, so enabling the counters can never perturb a result; the
parallel sweep engine snapshots them per worker task and aggregates
the deltas in the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class PerfCounters:
    """Counters for the program/uop caches and simulation throughput.

    Attributes:
        program_cache_hits / program_cache_misses: Lookups of the
            memoized attack-program factories
            (:func:`repro.perf.memo.memoize_program`).
        trace_cache_hits / trace_cache_misses: Lookups of the decoded
            dynamic-uop trace (:meth:`repro.isa.program.Program.dynamic_trace`).
        trials: Attack trials executed (one hypothesis run each).
        warm_resets: Trials served by the warm-machine reset protocol
            instead of cold construction.
        simulated_cycles: Total simulated cycles consumed by completed
            ``Core`` runs.
        program_cache_evictions: Entries dropped from memoized program
            factories when a cache exceeded its size bound.
        snapshot_forks: Trials served by restoring a post-prologue
            machine capture (:mod:`repro.snapshot`).
        snapshot_prologue_hits / snapshot_prologue_misses: Per
            snapshot-protocol trial: did a memoized prologue capture
            exist (hit → fork) or did the prologue run for real (miss
            → capture trial or full-replay fallback)?
        snapshot_audit_replays: Cold replays performed by the
            ``--audit-snapshots`` equivalence audit.
        snapshot_cycles_avoided: Simulated prologue cycles skipped by
            forks (the capture's cycle count, once per fork).
        snapshot_bytes_copied: Approximate bytes structurally copied by
            captures and restores (deterministic estimate, see
            :func:`repro.snapshot.approx_state_bytes`).
        sequential_looks: Interim/final boundary looks taken by the
            group-sequential engine (:mod:`repro.stats.sequential`).
        sequential_early_stops: Cells whose verdict crossed an interim
            alpha-spending boundary before the fixed-N cap.
        sequential_trials_avoided: Trials (both hypotheses) never
            simulated thanks to early stopping: ``2 * (n_max -
            effective_n)`` per early-stopped cell.
        sequential_cycles_avoided: Deterministic estimate of the
            simulated cycles those avoided trials would have cost
            (avoided trials x the cell's mean trial cycles, truncated).
        escalation_trials_reused: Trials kept across adaptive
            inconclusive-band escalations under the streaming
            extension protocol — each of these used to be re-simulated
            from scratch by the legacy 2xN re-run.
        serve_jobs_accepted / serve_jobs_rejected / serve_jobs_shed:
            Daemon admission outcomes — enqueued, bounced with
            retry-after (queue full), or refused because the daemon
            was shedding load (supervisor unhealthy).
        serve_jobs_done: Jobs that produced a verdict (fresh or from
            a journal replay).
        serve_cache_hits / serve_cache_journal_hits /
        serve_cache_stale / serve_cache_misses: Result-cache lookups:
            fresh in-memory hit, checkpoint-journal hit, stale result
            served during degradation, and misses that cost a
            simulation.
        serve_worker_restarts: Worker processes respawned by the
            supervisor after a crash, hang, or timeout kill.
        serve_heartbeat_misses: Workers killed because their heartbeat
            deadline lapsed (hang detection).
        serve_job_timeouts: Jobs whose per-dispatch wall-clock budget
            expired (the worker was killed and the job redispatched).
        serve_job_redispatches: Job dispatches beyond the first,
            i.e. deterministic retries after a process-level fault.
        serve_queue_wait_us: Total microseconds jobs spent queued
            before their first dispatch (mean = this / jobs done;
            integer microseconds keep the counters clock-free in
            aggregate form).
        batched_chunks / batched_fallback_chunks: Lockstep chunks the
            batched backend vectorized vs replayed on the scalar path
            after a divergence.
        batched_vector_trials / batched_fallback_trials: Trials
            executed in numpy lanes vs through the scalar fallback
            (statically ineligible configs count as fallback too);
            their sum is every trial the batched backend handled.
        batched_lane_cycles: Lane-cycles simulated by the lockstep
            engine (the scalar-equivalent cycle count; also folded
            into ``simulated_cycles`` so budgets are backend-neutral).
        batched_lanes_retired / batched_lanes_squashed: Uop-lanes
            retired and squash-lanes taken across all vectorized
            chunks (a column retiring in L lanes counts L).
        pool_passes_recorded / pool_passes_replayed: Lane-pool
            hypothesis passes that ran under a tape recorder vs were
            served entirely off a cached tape (no machine at all).
        pool_replay_divergences: Replays abandoned because a recorded
            guard evaluated differently under the new seeds (the pass
            re-ran interpretively; a counted slowdown, never an error).
        pool_tapes_invalid: Recording attempts aborted mid-pass
            because the trace left the tape's envelope (e.g. a
            predictor lane split); the key is marked non-recordable.
        pool_lanes_offered / pool_lanes_filled: Lanes of demand the
            pool was asked for vs lanes it executed through a pooled
            resource; mean occupancy is ``filled / offered`` and is
            1.0 by construction under demand-driven admission — the
            pair exists so regressions are asserted, not trusted.
        pool_lane_refills: Lanes admitted into an *already recorded*
            pass (replayed lanes): later looks of the recording cell,
            compatible cells, or other jobs sharing the pool.
        pool_trials_clipped: Trials a fill-every-lane scheduler would
            have dispatched past a decisive interim look that the
            pool's look-boundary clipping never admitted.
        pool_warm_mems: Interpretive pool passes that reused a pooled
            memory hierarchy via ``reset(seed)`` instead of building
            caches from scratch.
    """

    program_cache_hits: int = 0
    program_cache_misses: int = 0
    program_cache_evictions: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    trials: int = 0
    warm_resets: int = 0
    simulated_cycles: int = 0
    snapshot_forks: int = 0
    snapshot_prologue_hits: int = 0
    snapshot_prologue_misses: int = 0
    snapshot_audit_replays: int = 0
    snapshot_cycles_avoided: int = 0
    snapshot_bytes_copied: int = 0
    sequential_looks: int = 0
    sequential_early_stops: int = 0
    sequential_trials_avoided: int = 0
    sequential_cycles_avoided: int = 0
    escalation_trials_reused: int = 0
    serve_jobs_accepted: int = 0
    serve_jobs_rejected: int = 0
    serve_jobs_shed: int = 0
    serve_jobs_done: int = 0
    serve_cache_hits: int = 0
    serve_cache_journal_hits: int = 0
    serve_cache_stale: int = 0
    serve_cache_misses: int = 0
    serve_worker_restarts: int = 0
    serve_heartbeat_misses: int = 0
    serve_job_timeouts: int = 0
    serve_job_redispatches: int = 0
    serve_queue_wait_us: int = 0
    batched_chunks: int = 0
    batched_fallback_chunks: int = 0
    batched_vector_trials: int = 0
    batched_fallback_trials: int = 0
    batched_lane_cycles: int = 0
    batched_lanes_retired: int = 0
    batched_lanes_squashed: int = 0
    pool_passes_recorded: int = 0
    pool_passes_replayed: int = 0
    pool_replay_divergences: int = 0
    pool_tapes_invalid: int = 0
    pool_lanes_offered: int = 0
    pool_lanes_filled: int = 0
    pool_lane_refills: int = 0
    pool_trials_clipped: int = 0
    pool_warm_mems: int = 0

    def snapshot(self) -> Dict[str, int]:
        """The counter values as a plain dict (JSON- and pickle-safe)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def add(self, delta: Dict[str, int]) -> None:
        """Accumulate a snapshot delta (e.g. returned by a worker)."""
        for name, value in delta.items():
            setattr(self, name, getattr(self, name) + int(value))

    @staticmethod
    def delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """Per-counter difference between two snapshots (zeros omitted)."""
        moved = {name: after[name] - before.get(name, 0) for name in after}
        return {name: value for name, value in moved.items() if value}

    # -- derived rates -------------------------------------------------
    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def program_cache_hit_rate(self) -> float:
        """Hit rate of the memoized program factories (0 when idle)."""
        return self._rate(self.program_cache_hits, self.program_cache_misses)

    @property
    def trace_cache_hit_rate(self) -> float:
        """Hit rate of the decoded uop-trace cache (0 when idle)."""
        return self._rate(self.trace_cache_hits, self.trace_cache_misses)

    @property
    def snapshot_fork_hit_rate(self) -> float:
        """Fraction of snapshot-protocol trials served by a fork."""
        return self._rate(
            self.snapshot_prologue_hits, self.snapshot_prologue_misses
        )

    @property
    def serve_cache_hit_rate(self) -> float:
        """Fraction of daemon lookups served without a simulation."""
        served = (self.serve_cache_hits + self.serve_cache_journal_hits
                  + self.serve_cache_stale)
        return self._rate(served, self.serve_cache_misses)

    @property
    def batched_mean_lane_width(self) -> float:
        """Mean lanes per vectorized chunk (0 when none ran)."""
        if not self.batched_chunks:
            return 0.0
        return self.batched_vector_trials / (2.0 * self.batched_chunks)

    @property
    def batched_vectorized_fraction(self) -> float:
        """Fraction of batched-backend trials that ran in lanes."""
        return self._rate(
            self.batched_vector_trials, self.batched_fallback_trials
        )

    @property
    def pool_occupancy(self) -> float:
        """Mean lane occupancy of the pool scheduler (0 when idle)."""
        if not self.pool_lanes_offered:
            return 0.0
        return self.pool_lanes_filled / self.pool_lanes_offered

    @property
    def serve_mean_queue_wait_ms(self) -> float:
        """Mean milliseconds a completed job waited before dispatch."""
        if not self.serve_jobs_done:
            return 0.0
        return self.serve_queue_wait_us / 1000.0 / self.serve_jobs_done


#: The process-global counter instance.
COUNTERS = PerfCounters()
