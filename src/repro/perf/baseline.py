"""Performance observability baseline: the ``repro perf`` command.

Four measurements, all on the host that runs them:

* **warm batching** — one representative attack cell executed twice,
  with the warm-machine reset protocol on and off, to quantify the
  single-core gain from reusing the Core/MemorySystem pair across
  trials (and to re-check that both modes agree bit-for-bit);
* **snapshot fork** — the same cell under the legacy and the snapshot
  trial protocols (:mod:`repro.snapshot`): fork hit rate, simulated
  cycles avoided, bytes copied, plus an audited equivalence pass;
* **serial sweep** — a small supervised sweep through
  :func:`repro.harness.parallel.run_cells` at ``workers=1``:
  cells/second, simulated cycles/second, and the program/trace cache
  hit rates from :mod:`repro.perf.counters`;
* **parallel sweep** — the same sweep on a process pool: speedup over
  the serial pass and worker utilization.

The numbers are host-dependent by nature, so they are *observability*,
not artifacts: nothing simulated reads them, and the determinism lint
keeps it that way (host-time reads live in :mod:`repro.perf.observe`).
Results merge into a benchmark snapshot JSON
(:data:`DEFAULT_SNAPSHOT`) so regressions are visible across commits,
and ``--profile`` dumps a cProfile of the serial pass for drill-down.
"""

from __future__ import annotations

import cProfile
import dataclasses
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.core.channels import ChannelType
from repro.harness.checkpoint import CheckpointStore
from repro.harness.parallel import (
    CellSpec,
    SweepStats,
    _variant_by_name,
    run_cells,
    sweep_specs,
)
from repro.harness.runner import ExecutionPolicy
from repro.perf.observe import Stopwatch, write_bench_snapshot

#: Default benchmark snapshot the CLI merges its sections into.
DEFAULT_SNAPSHOT = "benchmarks/BENCH_parallel.json"

#: Representative cell for the warm-batching microbenchmark: the
#: paper's flagship Train + Test attack over the timing-window channel.
_WARM_VARIANT = "Train + Test"
_WARM_CHANNEL = ChannelType.TIMING_WINDOW
_WARM_PREDICTOR = "lvp"


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def measure_warm_batching(
    n_runs: int = 40, seed: int = 0,
) -> Dict[str, Any]:
    """Time one cell with and without warm-machine trial batching.

    Runs a short untimed warm-up first so both timed passes see hot
    program/trace caches and the comparison isolates machine
    construction cost.  Also asserts the two modes agree, turning every
    ``repro perf`` invocation into a cheap determinism spot-check.
    Pinned to the scalar backend: the warm-machine reset protocol is a
    scalar-loop mechanism (the batched backend builds lockstep
    machines per chunk instead).
    """
    from repro.harness.experiment import run_cell

    variant = _variant_by_name(_WARM_VARIANT)

    def one(batch: bool):
        return run_cell(
            variant, _WARM_CHANNEL, _WARM_PREDICTOR,
            n_runs=n_runs, seed=seed, batch_trials=batch,
            backend="scalar",
        )

    one(True)  # warm-up: populate gadget/trace caches
    timings: Dict[str, float] = {}
    pvalues: Dict[str, float] = {}
    for label, batch in (("cold", False), ("warm", True)):
        watch = Stopwatch()
        with watch:
            result = one(batch)
        timings[label] = watch.elapsed
        pvalues[label] = float(result.pvalue)
    if pvalues["cold"] != pvalues["warm"]:
        raise AssertionError(
            "warm-batched cell diverged from cold-machine cell: "
            f"{pvalues['warm']} != {pvalues['cold']}"
        )
    return {
        "cell": f"{_WARM_VARIANT} / {_WARM_CHANNEL.value} / {_WARM_PREDICTOR}",
        "n_runs": n_runs,
        "cold_s": timings["cold"],
        "warm_s": timings["warm"],
        "speedup": (
            timings["cold"] / timings["warm"] if timings["warm"] > 0 else 0.0
        ),
        "identical": True,
    }


def measure_backend(
    n_runs: int = 40, seed: int = 0, backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Trial-loop backend section: throughput plus lane accounting.

    Times the representative cell under the scalar reference backend
    and under the selected backend (``repro.sim``), asserts the two
    verdicts agree, and reports the lockstep lane counters from
    :mod:`repro.perf.counters` — mean lane width, lanes retired vs
    squashed, vectorized vs scalar-fallback trial counts, and
    nanoseconds per simulated cycle per lane — so a regression in the
    lane mask logic shows up here without reaching for a profiler.
    """
    from repro.harness.experiment import run_cell
    from repro.perf.counters import COUNTERS, PerfCounters
    from repro.sim import BackendUnavailableError, resolve_backend_name

    name = resolve_backend_name(backend)
    variant = _variant_by_name(_WARM_VARIANT)
    cell = f"{_WARM_VARIANT} / {_WARM_CHANNEL.value} / {_WARM_PREDICTOR}"

    def one(backend_name: str):
        return run_cell(
            variant, _WARM_CHANNEL, _WARM_PREDICTOR,
            n_runs=n_runs, seed=seed, backend=backend_name,
        )

    try:
        one(name)  # warm-up: gadget/trace caches + the numpy import
    except BackendUnavailableError as exc:
        return {
            "backend": name, "cell": cell, "n_runs": n_runs,
            "available": False, "error": str(exc),
        }
    watch = Stopwatch()
    with watch:
        reference = one("scalar")
    scalar_s = watch.elapsed
    before = COUNTERS.snapshot()
    watch = Stopwatch()
    with watch:
        result = one(name)
    backend_s = watch.elapsed
    delta = PerfCounters.delta(before, COUNTERS.snapshot())
    if float(result.pvalue) != float(reference.pvalue):
        raise AssertionError(
            f"backend {name!r} diverged from scalar: "
            f"{result.pvalue} != {reference.pvalue}"
        )
    chunks = delta.get("batched_chunks", 0)
    vector_trials = delta.get("batched_vector_trials", 0)
    fallback_trials = delta.get("batched_fallback_trials", 0)
    lane_cycles = delta.get("batched_lane_cycles", 0)
    covered = vector_trials + fallback_trials
    return {
        "backend": name,
        "cell": cell,
        "n_runs": n_runs,
        "available": True,
        "scalar_s": scalar_s,
        "backend_s": backend_s,
        "speedup": scalar_s / backend_s if backend_s > 0 else 0.0,
        "identical": True,
        "trials": delta.get("trials", 0),
        "mean_lane_width": (
            vector_trials / (2.0 * chunks) if chunks else 0.0
        ),
        "lanes_retired": delta.get("batched_lanes_retired", 0),
        "lanes_squashed": delta.get("batched_lanes_squashed", 0),
        "vector_trials": vector_trials,
        "fallback_trials": fallback_trials,
        "vectorized_fraction": vector_trials / covered if covered else 0.0,
        "ns_per_cycle_per_lane": (
            backend_s * 1e9 / lane_cycles if lane_cycles else 0.0
        ),
    }


def measure_snapshot_fork(
    n_runs: int = 40, seed: int = 0, audit_runs: int = 8,
) -> Dict[str, Any]:
    """Time one cell under the legacy and the snapshot trial protocols.

    The speedup compares the PR 3 warm-batched reset protocol against
    forking trials from the memoized post-prologue capture
    (:mod:`repro.snapshot`).  A short audited pass afterwards replays
    every fork cold and raises on any divergence, so the number comes
    with a per-invocation equivalence check.  Pinned to the scalar
    backend: the snapshot/fork engine is a scalar-loop mechanism (the
    batched backend forks lanes from one prologue in-lockstep and
    never touches the fork counters this section reports).
    """
    from repro.harness.experiment import run_cell
    from repro.perf.counters import COUNTERS, PerfCounters

    variant = _variant_by_name(_WARM_VARIANT)

    def one(**overrides):
        return run_cell(
            variant, _WARM_CHANNEL, _WARM_PREDICTOR,
            n_runs=n_runs, seed=seed, backend="scalar", **overrides,
        )

    one(snapshot_trials=True)  # warm-up: populate gadget/trace caches
    watch = Stopwatch()
    with watch:
        one()
    legacy_s = watch.elapsed
    before = COUNTERS.snapshot()
    watch = Stopwatch()
    with watch:
        one(snapshot_trials=True)
    fork_s = watch.elapsed
    delta = PerfCounters.delta(before, COUNTERS.snapshot())
    hits = delta.get("snapshot_prologue_hits", 0)
    misses = delta.get("snapshot_prologue_misses", 0)
    # Untimed equivalence audit: raises AttackError on any divergence.
    run_cell(
        variant, _WARM_CHANNEL, _WARM_PREDICTOR,
        n_runs=min(n_runs, max(audit_runs, 2)), seed=seed,
        snapshot_trials=True, audit_snapshots=True,
    )
    return {
        "cell": f"{_WARM_VARIANT} / {_WARM_CHANNEL.value} / {_WARM_PREDICTOR}",
        "n_runs": n_runs,
        "legacy_s": legacy_s,
        "fork_s": fork_s,
        "speedup": legacy_s / fork_s if fork_s > 0 else 0.0,
        "forks": delta.get("snapshot_forks", 0),
        "fork_hit_rate": _rate(hits, misses),
        "cycles_avoided": delta.get("snapshot_cycles_avoided", 0),
        "bytes_copied": delta.get("snapshot_bytes_copied", 0),
        "audited": True,
    }


def measure_sequential(n_runs: int = 60, seed: int = 0) -> Dict[str, Any]:
    """Time one decisive cell fixed-N vs group-sequential.

    Both passes stream the identical per-trial seed schedule, so the
    sequential pass's samples are a byte-exact prefix of the fixed-N
    pass's and the verdicts must agree — asserted per invocation, which
    makes every ``repro perf`` run a cheap equivalence spot-check of
    the early-stopping engine.
    """
    from repro.harness.experiment import cell_runner, run_cell
    from repro.harness.runner import (
        AdaptivePolicy,
        SequentialPolicy,
        run_sequential_cell,
    )
    from repro.perf.counters import COUNTERS, PerfCounters

    variant = _variant_by_name(_WARM_VARIANT)

    run_cell(  # warm-up: populate gadget/trace caches
        variant, _WARM_CHANNEL, _WARM_PREDICTOR, n_runs=4, seed=seed
    )
    watch = Stopwatch()
    with watch:
        fixed = run_cell(
            variant, _WARM_CHANNEL, _WARM_PREDICTOR,
            n_runs=n_runs, seed=seed,
        )
    fixed_s = watch.elapsed

    before = COUNTERS.snapshot()
    watch = Stopwatch()
    with watch:
        outcome = run_sequential_cell(
            cell_runner(
                variant, _WARM_CHANNEL, _WARM_PREDICTOR,
                n_runs=n_runs, seed=seed,
            ),
            SequentialPolicy().design_for(n_runs),
            AdaptivePolicy(),
        )
    sequential_s = watch.elapsed
    delta = PerfCounters.delta(before, COUNTERS.snapshot())
    if outcome.result.attack_succeeds != fixed.attack_succeeds:
        raise AssertionError(
            "sequential verdict diverged from fixed-N: "
            f"{outcome.result.attack_succeeds} != {fixed.attack_succeeds}"
        )
    return {
        "cell": f"{_WARM_VARIANT} / {_WARM_CHANNEL.value} / {_WARM_PREDICTOR}",
        "n_runs": n_runs,
        "fixed_s": fixed_s,
        "sequential_s": sequential_s,
        "speedup": fixed_s / sequential_s if sequential_s > 0 else 0.0,
        "effective_n": outcome.effective_n,
        "stopped_early": bool(outcome.record["stopped_early"]),
        "looks": len(outcome.record["looks"]),
        "trials_avoided": delta.get("sequential_trials_avoided", 0),
        "cycles_avoided": delta.get("sequential_cycles_avoided", 0),
        "verdict_identical": True,
    }


def measure_schedule(n_runs: int = 24, seed: int = 0) -> Dict[str, Any]:
    """Cross-cell lane pool vs per-cell batched on a sequential sweep.

    Runs the full Table III cell set group-sequentially three times —
    per-cell batched, pool with cold tapes (recording pass), pool with
    warm tapes (steady state) — and asserts every cell payload is
    byte-identical across all three.  The occupancy and refill
    counters come from the warm pass, so the reported numbers describe
    the scheduler in the regime it exists for: a long-lived process
    (a sweep, a daemon) whose compatible dispatches share recorded
    passes.
    """
    import dataclasses
    import json

    from repro.harness.parallel import execute_spec, sweep_specs
    from repro.harness.runner import (
        ExecutionPolicy,
        ResilientExecutor,
        SequentialPolicy,
    )
    from repro.perf.counters import COUNTERS, PerfCounters
    from repro.sim.schedule import pool_backend

    specs = sweep_specs("table3", n_runs=n_runs, seed=seed)

    def sweep(backend_name: str) -> Tuple[float, List[str]]:
        policy = dataclasses.replace(
            ExecutionPolicy.compat(),
            sequential=SequentialPolicy(),
            backend=backend_name,
        )
        executor = ResilientExecutor(policy, store=None)
        payloads: List[str] = []
        watch = Stopwatch()
        with watch:
            for spec in specs:
                cell = execute_spec(spec, executor)
                payloads.append(
                    json.dumps(cell.to_payload(), sort_keys=True)
                )
        return watch.elapsed, payloads

    pool_backend().reset()
    sweep("batched")  # warm-up: program/trace caches for both sides
    batched_s, batched_payloads = sweep("batched")
    cold_s, cold_payloads = sweep("pool")
    before = COUNTERS.snapshot()
    warm_s, warm_payloads = sweep("pool")
    delta = PerfCounters.delta(before, COUNTERS.snapshot())
    if cold_payloads != batched_payloads:
        raise AssertionError(
            "pool (recording pass) payloads diverged from batched"
        )
    if warm_payloads != batched_payloads:
        raise AssertionError(
            "pool (warm tapes) payloads diverged from batched"
        )
    offered = delta.get("pool_lanes_offered", 0)
    filled = delta.get("pool_lanes_filled", 0)
    return {
        "cells": len(specs),
        "n_runs": n_runs,
        "batched_s": batched_s,
        "pool_cold_s": cold_s,
        "pool_warm_s": warm_s,
        "speedup_cold": batched_s / cold_s if cold_s > 0 else 0.0,
        "speedup_warm": batched_s / warm_s if warm_s > 0 else 0.0,
        "occupancy": filled / offered if offered else 0.0,
        "lanes_offered": offered,
        "lanes_filled": filled,
        "lane_refills": delta.get("pool_lane_refills", 0),
        "passes_replayed": delta.get("pool_passes_replayed", 0),
        "passes_recorded": delta.get("pool_passes_recorded", 0),
        "replay_divergences": delta.get("pool_replay_divergences", 0),
        "trials_clipped": delta.get("pool_trials_clipped", 0),
        "warm_mems": delta.get("pool_warm_mems", 0),
        "payload_identical": True,
    }


def measure_serve(
    n_runs: int = 6, seed: int = 0, clients: int = 3, workers: int = 2,
) -> Dict[str, Any]:
    """Throughput + cache behaviour of the evaluation daemon.

    Hosts a :class:`repro.serve.daemon.ReproDaemon` in-process, then
    drives it with ``clients`` concurrent threads all asking for the
    same small cell set — the synthetic multi-client load the results
    cache exists for.  The first client to ask for a cell pays the
    simulation; the rest should hit the cache, and the reported hit
    rate says whether they did.
    """
    import asyncio
    import threading

    from repro.perf.counters import COUNTERS, PerfCounters
    from repro.serve.client import ServeClient
    from repro.serve.daemon import ReproDaemon, ServePolicy

    specs = [
        {"variant": variant, "channel": _WARM_CHANNEL.value,
         "predictor": _WARM_PREDICTOR, "n_runs": n_runs, "seed": seed}
        for variant in ("Train + Hit", "Train + Test", "Test + Hit")
    ]
    scratch = tempfile.mkdtemp(prefix="repro-serve-perf-")
    before = COUNTERS.snapshot()
    try:
        daemon = ReproDaemon(scratch, ServePolicy(
            workers=workers,
            queue_limit=max(8, clients * len(specs)),
            job_timeout_s=120.0,
        ))
        ready = threading.Event()
        host = threading.Thread(
            target=lambda: asyncio.run(daemon.run(ready)), daemon=True
        )
        host.start()
        if not ready.wait(30.0):
            raise AssertionError("serve daemon did not come up")

        errors: List[str] = []

        def one_client(index: int) -> None:
            client = ServeClient(scratch)
            for spec in specs:
                response = client.submit(spec, wait=True, timeout_s=120.0)
                if not response.get("ok") or response.get("state") != "done":
                    errors.append(f"client {index}: {response}")

        watch = Stopwatch()
        with watch:
            threads = [
                threading.Thread(target=one_client, args=(index,))
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        ServeClient(scratch).shutdown()
        host.join(30.0)
        if errors:
            raise AssertionError(
                f"serve perf pass failed: {errors[:3]}"
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    delta = PerfCounters.delta(before, COUNTERS.snapshot())
    served = (
        delta.get("serve_cache_hits", 0)
        + delta.get("serve_cache_journal_hits", 0)
        + delta.get("serve_cache_stale", 0)
    )
    done = delta.get("serve_jobs_done", 0)
    return {
        "clients": clients,
        "workers": workers,
        "cells": len(specs),
        "requests": clients * len(specs),
        "n_runs": n_runs,
        "elapsed_s": watch.elapsed,
        "jobs_accepted": delta.get("serve_jobs_accepted", 0),
        "jobs_rejected": delta.get("serve_jobs_rejected", 0),
        "jobs_shed": delta.get("serve_jobs_shed", 0),
        "jobs_done": done,
        "cache_hits": delta.get("serve_cache_hits", 0),
        "cache_journal_hits": delta.get("serve_cache_journal_hits", 0),
        "cache_misses": delta.get("serve_cache_misses", 0),
        "cache_hit_rate": _rate(served, delta.get("serve_cache_misses", 0)),
        "worker_restarts": delta.get("serve_worker_restarts", 0),
        "heartbeat_misses": delta.get("serve_heartbeat_misses", 0),
        "job_timeouts": delta.get("serve_job_timeouts", 0),
        "mean_queue_wait_ms": (
            delta.get("serve_queue_wait_us", 0) / 1000.0 / done
            if done else 0.0
        ),
    }


def _sweep_pass(
    specs: Sequence[CellSpec],
    workers: int,
    profiler: Optional[cProfile.Profile] = None,
    backend: Optional[str] = None,
) -> SweepStats:
    """One full prefill pass against a throwaway checkpoint store."""
    scratch = tempfile.mkdtemp(prefix="repro-perf-")
    try:
        store = CheckpointStore.open(
            str(Path(scratch) / "checkpoint"),
            {"version": __version__, "perf": True}, resume=False,
        )
        policy = dataclasses.replace(
            ExecutionPolicy.compat(), backend=backend
        )
        if profiler is not None:
            profiler.enable()
        try:
            return run_cells(specs, store, policy, workers=workers)
        finally:
            if profiler is not None:
                profiler.disable()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def perf_baseline(
    *,
    n_runs: int = 12,
    seed: int = 0,
    workers: int = 1,
    artifacts: Sequence[str] = ("fig5", "fig8"),
    snapshot_path: Optional[str] = DEFAULT_SNAPSHOT,
    profile_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure the sweep engine's throughput baseline.

    ``backend`` selects the trial-loop backend (:mod:`repro.sim`) for
    the sweep passes and the backend section; ``None`` follows
    ``$REPRO_BACKEND`` and defaults to scalar.

    Returns the report dict; when ``snapshot_path`` is set, also merges
    it under the ``"repro_perf"`` section of that benchmark JSON.
    """
    say = progress or (lambda message: None)
    specs = sweep_specs(artifacts, n_runs=n_runs, seed=seed)

    say("warm batching: 1 cell, batch_trials on/off ...")
    warm = measure_warm_batching(n_runs=max(n_runs, 20), seed=seed)

    say("backend: 1 cell, scalar vs selected trial-loop backend ...")
    backend_section = measure_backend(
        n_runs=max(n_runs, 20), seed=seed, backend=backend,
    )

    say("snapshot fork: 1 cell, snapshot_trials on/off + audit ...")
    snapshot_fork = measure_snapshot_fork(n_runs=max(n_runs, 20), seed=seed)

    say("sequential: 1 cell, fixed-N vs group-sequential ...")
    sequential = measure_sequential(n_runs=max(n_runs, 20), seed=seed)

    say("lane pool: Table III sweep, per-cell batched vs pool ...")
    schedule = measure_schedule(n_runs=max(n_runs, 20), seed=seed)

    say("serve daemon: 3 clients x 3 cells, shared cache ...")
    serve = measure_serve(n_runs=min(n_runs, 8), seed=seed)

    if profile_path:
        # Separate pass: the profiler's tracing overhead would inflate
        # the serial time and with it the reported parallel speedup.
        say(f"profiled sweep: {len(specs)} cells ...")
        profiler = cProfile.Profile()
        _sweep_pass(specs, workers=1, profiler=profiler, backend=backend)
        profiler.dump_stats(profile_path)
        say(f"profile written to {profile_path}")

    say(f"serial sweep: {len(specs)} cells ...")
    serial = _sweep_pass(specs, workers=1, backend=backend)

    parallel: Optional[SweepStats] = None
    if workers > 1:
        say(f"parallel sweep: {len(specs)} cells, {workers} workers ...")
        parallel = _sweep_pass(specs, workers=workers, backend=backend)

    counters = serial.counters
    report: Dict[str, Any] = {
        "version": __version__,
        "n_runs": n_runs,
        "seed": seed,
        "artifacts": list(artifacts),
        "cells": len(specs),
        "warm_batching": warm,
        "backend": backend_section,
        "snapshot_fork": snapshot_fork,
        "sequential": sequential,
        "schedule": schedule,
        "serve": serve,
        "serial": {
            **serial.to_payload(),
            "program_cache_hit_rate": _rate(
                counters.get("program_cache_hits", 0),
                counters.get("program_cache_misses", 0),
            ),
            "trace_cache_hit_rate": _rate(
                counters.get("trace_cache_hits", 0),
                counters.get("trace_cache_misses", 0),
            ),
        },
        "parallel": None,
    }
    if parallel is not None:
        report["parallel"] = {
            **parallel.to_payload(),
            "speedup": (
                serial.elapsed_s / parallel.elapsed_s
                if parallel.elapsed_s > 0 else 0.0
            ),
        }
    if snapshot_path:
        write_bench_snapshot(Path(snapshot_path), "repro_perf", report)
        say(f"snapshot merged into {snapshot_path}")
    return report


def _coverage_lines(payload: Dict[str, Any]) -> List[str]:
    """Sweep-wide batched-backend coverage, if the sweep used it.

    Reads the ``vectorized_fraction`` / ``fallback_reasons`` keys a
    :class:`~repro.harness.parallel.SweepStats` payload carries; the
    events are aggregated across pool workers, so the fraction is the
    true sweep-wide number, not the parent process's view.
    """
    fraction = payload.get("vectorized_fraction")
    if fraction is None:
        return []
    lines = [f"  batched backend: {fraction * 100:.1f}% trials vectorized"]
    reasons = payload.get("fallback_reasons") or {}
    for reason, count in sorted(
        reasons.items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(f"    {count:4d} fallback(s): {reason}")
    return lines


def render_perf_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`perf_baseline` report."""
    lines: List[str] = []
    lines.append(
        f"repro perf — sweep engine baseline "
        f"(v{report['version']}, n_runs={report['n_runs']}, "
        f"seed={report['seed']})"
    )
    warm = report["warm_batching"]
    lines.append("")
    lines.append(f"warm batching ({warm['cell']}, n_runs={warm['n_runs']}):")
    lines.append(
        f"  cold machines : {warm['cold_s']:7.3f} s   "
        f"warm reuse: {warm['warm_s']:7.3f} s   "
        f"speedup {warm['speedup']:.2f}x"
        + ("   [results identical]" if warm["identical"] else "")
    )
    backend = report.get("backend")
    if backend is not None:
        lines.append("")
        lines.append(
            f"trial-loop backend ({backend['backend']}, "
            f"{backend['cell']}, n_runs={backend['n_runs']}):"
        )
        if not backend.get("available", True):
            lines.append(f"  unavailable: {backend['error']}")
        else:
            lines.append(
                f"  scalar        : {backend['scalar_s']:7.3f} s   "
                f"{backend['backend']:10s}: {backend['backend_s']:7.3f} s   "
                f"speedup {backend['speedup']:.2f}x"
                + ("   [results identical]" if backend["identical"] else "")
            )
            lines.append(
                f"  {backend['vector_trials']} vectorized / "
                f"{backend['fallback_trials']} fallback trials "
                f"({backend['vectorized_fraction'] * 100:.1f}% vectorized), "
                f"mean lane width {backend['mean_lane_width']:.1f}"
            )
            lines.append(
                f"  {backend['lanes_retired']} lanes retired, "
                f"{backend['lanes_squashed']} squashed, "
                f"{backend['ns_per_cycle_per_lane']:.2f} ns/cycle/lane"
            )
    fork = report.get("snapshot_fork")
    if fork is not None:
        lines.append("")
        lines.append(
            f"snapshot fork ({fork['cell']}, n_runs={fork['n_runs']}):"
        )
        lines.append(
            f"  legacy warm   : {fork['legacy_s']:7.3f} s   "
            f"fork trials: {fork['fork_s']:7.3f} s   "
            f"speedup {fork['speedup']:.2f}x"
            + ("   [audit passed]" if fork.get("audited") else "")
        )
        lines.append(
            f"  {fork['forks']} forks, "
            f"{fork['fork_hit_rate'] * 100:.1f}% fork hit rate, "
            f"{fork['cycles_avoided'] / 1e6:.2f}M cycles avoided, "
            f"{fork['bytes_copied'] / 1e6:.2f} MB copied"
        )
    sequential = report.get("sequential")
    if sequential is not None:
        lines.append("")
        lines.append(
            f"group-sequential ({sequential['cell']}, "
            f"n_runs={sequential['n_runs']}):"
        )
        stopped = (
            "stopped early" if sequential.get("stopped_early")
            else "ran to the cap"
        )
        lines.append(
            f"  fixed-N       : {sequential['fixed_s']:7.3f} s   "
            f"sequential: {sequential['sequential_s']:7.3f} s   "
            f"speedup {sequential['speedup']:.2f}x"
            + ("   [verdicts identical]"
               if sequential.get("verdict_identical") else "")
        )
        lines.append(
            f"  effective n {sequential['effective_n']}"
            f"/{sequential['n_runs']} after {sequential['looks']} look(s) "
            f"({stopped}), {sequential['trials_avoided']} trials avoided, "
            f"{sequential['cycles_avoided'] / 1e6:.2f}M cycles avoided"
        )
    schedule = report.get("schedule")
    if schedule is not None:
        lines.append("")
        lines.append(
            f"lane pool ({schedule['cells']} Table III cells, "
            f"sequential, n_runs={schedule['n_runs']}):"
        )
        lines.append(
            f"  batched       : {schedule['batched_s']:7.3f} s   "
            f"pool cold : {schedule['pool_cold_s']:7.3f} s   "
            f"pool warm : {schedule['pool_warm_s']:7.3f} s"
        )
        lines.append(
            f"  speedup {schedule['speedup_warm']:.2f}x warm "
            f"({schedule['speedup_cold']:.2f}x recording pass)"
            + ("   [payloads identical]"
               if schedule.get("payload_identical") else "")
        )
        lines.append(
            f"  occupancy {schedule['occupancy'] * 100:.1f}% "
            f"({schedule['lanes_filled']}/{schedule['lanes_offered']} "
            f"lanes), {schedule['lane_refills']} refills, "
            f"{schedule['passes_replayed']} replayed / "
            f"{schedule['passes_recorded']} recorded passes, "
            f"{schedule['replay_divergences']} divergences"
        )
        lines.append(
            f"  {schedule['trials_clipped']} tail trials clipped at "
            f"look boundaries, {schedule['warm_mems']} warm-machine "
            f"reuses"
        )
    serve = report.get("serve")
    if serve is not None:
        lines.append("")
        lines.append(
            f"serve daemon ({serve['clients']} clients x "
            f"{serve['cells']} cells, {serve['workers']} workers, "
            f"n_runs={serve['n_runs']}):"
        )
        lines.append(
            f"  elapsed {serve['elapsed_s']:.2f} s — "
            f"{serve['jobs_accepted']} accepted, "
            f"{serve['jobs_rejected']} rejected, "
            f"{serve['jobs_shed']} shed, "
            f"{serve['jobs_done']} simulated"
        )
        lines.append(
            f"  cache {serve['cache_hit_rate'] * 100:.1f}% hits "
            f"({serve['cache_hits']} memory, "
            f"{serve['cache_journal_hits']} journal, "
            f"{serve['cache_misses']} misses), "
            f"mean queue wait {serve['mean_queue_wait_ms']:.1f} ms"
        )
        lines.append(
            f"  {serve['worker_restarts']} worker restarts, "
            f"{serve['heartbeat_misses']} heartbeat misses, "
            f"{serve['job_timeouts']} job timeouts"
        )
    serial = report["serial"]
    lines.append("")
    lines.append(
        f"serial sweep ({report['cells']} cells: "
        f"{','.join(report['artifacts'])}):"
    )
    lines.append(
        f"  elapsed {serial['elapsed_s']:.2f} s — "
        f"{serial['cells_per_s']:.2f} cells/s, "
        f"{serial['cycles_per_s'] / 1e6:.2f}M cycles/s"
    )
    lines.append(
        f"  program cache {serial['program_cache_hit_rate'] * 100:.1f}% "
        f"hits, trace cache {serial['trace_cache_hit_rate'] * 100:.1f}% "
        f"hits, {serial['counters'].get('trials', 0)} trials, "
        f"{serial['counters'].get('warm_resets', 0)} warm resets"
    )
    lines.extend(_coverage_lines(serial))
    parallel = report.get("parallel")
    lines.append("")
    if parallel is None:
        lines.append("parallel sweep: skipped (workers=1)")
    else:
        lines.append(f"parallel sweep ({parallel['workers']} workers):")
        lines.append(
            f"  elapsed {parallel['elapsed_s']:.2f} s — "
            f"speedup {parallel['speedup']:.2f}x vs serial, "
            f"utilization {parallel['utilization'] * 100:.0f}%"
        )
        lines.extend(_coverage_lines(parallel))
    return "\n".join(lines)
