"""Performance observability for the reproduction itself.

The paper's artifacts are statistical sweeps over a pure-Python cycle
simulator; keeping the sweep engine fast (and *knowing* it stays
fast) is what lets the reproduction scale to campaign-size predictor
ablations.  This package holds the perf baseline:

* :mod:`repro.perf.counters` — deterministic global counters (cache
  hits for the memoized program/uop caches, trials, simulated
  cycles).  Counting is pure bookkeeping: no clock, no RNG.
* :mod:`repro.perf.memo` — the program-cache memoizer used by
  :mod:`repro.workloads.gadgets` and the assembler.
* :mod:`repro.perf.observe` — wall-clock stopwatches (explicitly
  allow-listed for the determinism lint: host time never touches
  measurements, only throughput reporting) and the
  ``BENCH_parallel.json`` snapshot writer.
* :mod:`repro.perf.baseline` — the ``repro perf`` baseline runner:
  serial-vs-parallel sweeps, cells/sec, cycles/sec, worker
  utilization, cache hit rates, and an optional cProfile capture.
"""

from repro.perf.counters import COUNTERS, PerfCounters

__all__ = ["COUNTERS", "PerfCounters"]
