"""Wall-clock observation and benchmark snapshot persistence.

This module is the *only* sanctioned home for host-time reads in the
sweep path.  Host time never influences a simulated measurement — the
simulator's clock is its own cycle counter — so the determinism lint
allows the reads here explicitly via pragmas.  Everything that touches
results (seeds, latencies, thresholds) stays wall-clock free.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.harness.checkpoint import atomic_write_json


def now() -> float:
    """Monotonic host timestamp in seconds (reporting only)."""
    return time.perf_counter()  # lint: allow(wall-clock)


@dataclass
class Stopwatch:
    """Accumulating stopwatch for throughput reporting.

    Use as a context manager around units of work; ``elapsed`` sums
    every timed region.  Purely observational: nothing simulated ever
    reads it.
    """

    elapsed: float = 0.0
    laps: int = 0
    _started: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._started = now()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        assert self._started is not None
        self.elapsed += now() - self._started
        self._started = None
        self.laps += 1


def throughput(count: int, seconds: float) -> float:
    """Items per second, 0.0 when no time elapsed."""
    return count / seconds if seconds > 0 else 0.0


def write_bench_snapshot(
    path: Path,
    section: str,
    payload: Dict[str, Any],
) -> Dict[str, Any]:
    """Merge ``payload`` under ``section`` into a benchmark JSON file.

    Existing sections from earlier runs are preserved, so the serial
    baseline, warm-batching, and parallel-speedup numbers can be
    recorded independently and accumulate in one snapshot.  Writing is
    atomic (tmp + replace) so an interrupted bench never corrupts a
    previous snapshot.  Returns the merged document.
    """
    document: Dict[str, Any] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            document = {}
    if not isinstance(document, dict):
        document = {}
    document[section] = payload
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(str(path), document)
    return document


#: Root-level perf-trajectory artifact shared by the sweep benches
#: (``BENCH_sweep.json`` next to the other ``BENCH_*.json`` files).
SWEEP_TRAJECTORY = Path(__file__).resolve().parents[3] / "BENCH_sweep.json"


def write_sweep_trajectory(
    section: str,
    payload: Dict[str, Any],
    path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Record one bench's sweep-level numbers in ``BENCH_sweep.json``.

    Thin wrapper over :func:`write_bench_snapshot` targeting the
    root-level perf-trajectory artifact, so every sweep bench reports
    through one schema (documented in ``docs/ARCHITECTURE.md``): each
    section carries at least ``wall_clock_s``, ``cells`` and
    ``cells_per_s``; trial-level benches add ``trials_simulated`` /
    ``trials_avoided`` and the sequential benches their
    fixed-N-vs-sequential speedup.
    """
    return write_bench_snapshot(path or SWEEP_TRAJECTORY, section, payload)
