"""Wall-clock observation and benchmark snapshot persistence.

This module is the *only* sanctioned home for host-time reads in the
sweep path.  Host time never influences a simulated measurement — the
simulator's clock is its own cycle counter — so the determinism lint
allows the reads here explicitly via pragmas.  Everything that touches
results (seeds, latencies, thresholds) stays wall-clock free.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.harness.checkpoint import atomic_write_json


def now() -> float:
    """Monotonic host timestamp in seconds (reporting only)."""
    return time.perf_counter()  # lint: allow(wall-clock)


@dataclass
class Stopwatch:
    """Accumulating stopwatch for throughput reporting.

    Use as a context manager around units of work; ``elapsed`` sums
    every timed region.  Purely observational: nothing simulated ever
    reads it.
    """

    elapsed: float = 0.0
    laps: int = 0
    _started: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._started = now()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        assert self._started is not None
        self.elapsed += now() - self._started
        self._started = None
        self.laps += 1


def throughput(count: int, seconds: float) -> float:
    """Items per second, 0.0 when no time elapsed."""
    return count / seconds if seconds > 0 else 0.0


def write_bench_snapshot(
    path: Path,
    section: str,
    payload: Dict[str, Any],
) -> Dict[str, Any]:
    """Merge ``payload`` under ``section`` into a benchmark JSON file.

    Existing sections from earlier runs are preserved, so the serial
    baseline, warm-batching, and parallel-speedup numbers can be
    recorded independently and accumulate in one snapshot.  Writing is
    atomic (tmp + replace) so an interrupted bench never corrupts a
    previous snapshot.  Returns the merged document.
    """
    document: Dict[str, Any] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            document = {}
    if not isinstance(document, dict):
        document = {}
    document[section] = payload
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(str(path), document)
    return document


#: Root-level perf-trajectory artifact shared by the sweep benches
#: (``BENCH_sweep.json`` next to the other ``BENCH_*.json`` files).
SWEEP_TRAJECTORY = Path(__file__).resolve().parents[3] / "BENCH_sweep.json"

#: Environment override equivalent to ``force=True`` — the ``--force``
#: of bench invocations that go through pytest and can't take flags.
BENCH_FORCE_ENV = "REPRO_BENCH_FORCE"

#: Fractional drop in a throughput metric that counts as a regression.
REGRESSION_THRESHOLD = 0.20

#: "Higher is better" keys compared between the old and new record of
#: a section when deciding whether an overwrite is a regression.
_THROUGHPUT_KEYS = ("cells_per_s", "trials_per_s")


class BenchRegressionError(RuntimeError):
    """Refusing to overwrite a bench record with a >20% regression.

    Raised by :func:`write_sweep_trajectory` so a slow run can't
    silently replace a previously published number; pass ``force=True``
    (or set ``$REPRO_BENCH_FORCE``) to record the regression anyway.
    """


def _regressions(
    old: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, str]:
    """Throughput keys where ``new`` regressed >20% against ``old``.

    Only compares records from the same backend: a scalar re-run of a
    batched section is a different experiment, not a regression, and
    is allowed to replace the record (with its backend stamped).
    """
    if old.get("backend") != new.get("backend"):
        return {}
    found: Dict[str, str] = {}
    keys = list(_THROUGHPUT_KEYS)
    keys += [key for key in new if key.startswith("speedup")]
    for key in keys:
        before, after = old.get(key), new.get(key)
        if not isinstance(before, (int, float)):
            continue
        if not isinstance(after, (int, float)) or before <= 0:
            continue
        if after < before * (1.0 - REGRESSION_THRESHOLD):
            found[key] = f"{before:.4g} -> {after:.4g}"
    return found


def write_sweep_trajectory(
    section: str,
    payload: Dict[str, Any],
    path: Optional[Path] = None,
    *,
    backend: Optional[str] = None,
    trials: Optional[int] = None,
    force: bool = False,
) -> Dict[str, Any]:
    """Record one bench's sweep-level numbers in ``BENCH_sweep.json``.

    Wrapper over :func:`write_bench_snapshot` targeting the root-level
    perf-trajectory artifact, so every sweep bench reports through one
    schema (documented in ``docs/ARCHITECTURE.md``): each section
    carries at least ``wall_clock_s``, ``cells`` and ``cells_per_s``;
    trial-level benches add ``trials_simulated`` / ``trials_avoided``
    and the sequential benches their fixed-N-vs-sequential speedup.

    Two invariants keep the records honest:

    * every entry is stamped with the simulation ``backend`` that
      produced it and its ``trials`` count (``backend`` defaults to the
      resolved :mod:`repro.sim` backend; ``trials`` falls back to
      ``payload["trials_simulated"]`` and a missing count is an error);
    * overwriting a same-backend entry whose throughput metrics
      (``cells_per_s``, ``trials_per_s``, any ``speedup*``) dropped
      more than 20% raises :class:`BenchRegressionError` unless
      ``force=True`` or ``$REPRO_BENCH_FORCE`` is set, so one slow host
      run can't silently bury a published number.
    """
    import os

    if backend is None:
        backend = payload.get("backend")
    if backend is None:
        from repro.sim import resolve_backend_name

        backend = resolve_backend_name(None)
    if trials is None:
        raw = payload.get("trials", payload.get("trials_simulated"))
        trials = int(raw) if raw is not None else None
    if trials is None:
        raise ValueError(
            f"bench section {section!r} has no trial count; pass "
            "trials= (or include 'trials_simulated' in the payload) so "
            "the record says how much work backed the number"
        )
    record = {**payload, "backend": backend, "trials": trials}

    target = path or SWEEP_TRAJECTORY
    force = force or bool(os.environ.get(BENCH_FORCE_ENV, "").strip())
    if not force and target.exists():
        try:
            existing = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
        old = existing.get(section) if isinstance(existing, dict) else None
        if isinstance(old, dict):
            regressed = _regressions(old, record)
            if regressed:
                details = ", ".join(
                    f"{key}: {delta}" for key, delta in regressed.items()
                )
                raise BenchRegressionError(
                    f"refusing to overwrite {section!r} in {target}: "
                    f">{REGRESSION_THRESHOLD:.0%} regression ({details}); "
                    f"re-run with --force (${BENCH_FORCE_ENV}=1) to "
                    "record it anyway"
                )
    return write_bench_snapshot(target, section, record)
