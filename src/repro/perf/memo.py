"""Program-cache memoization for attack-program factories.

Every trial of every cell rebuilds the same handful of gadget
programs (train / trigger / probe / idle) from the same
:class:`~repro.workloads.gadgets.Layout` and scalar knobs.  Assembly
is pure — a factory's output depends only on its arguments — so the
results can be memoized safely.  The cache is keyed by the factory and
its (frozen) arguments; list arguments are frozen to tuples because
``probe_program`` takes the secret-candidate list by value.

The memoizer is deliberately conservative:

* Unhashable arguments fall back to a direct call (counted as a miss).
* Cached :class:`~repro.isa.program.Program` objects are shared, which
  is safe because programs are immutable once assembled and their
  internal trace cache is itself keyed and append-only — sharing it
  between trials is exactly the uop-cache reuse this package measures.
* The cache is per-process; worker processes each build their own,
  which keeps the parallel engine free of cross-process mutable state.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from typing import Any, Callable, Tuple, TypeVar

from repro.perf.counters import COUNTERS

_F = TypeVar("_F", bound=Callable[..., Any])

#: Default per-factory cache capacity.  Sweeps touch a few dozen
#: distinct (layout, knob) combinations; 256 is comfortably above any
#: realistic working set while bounding memory for adversarial use.
DEFAULT_MAXSIZE = 256

_UNHASHABLE = object()


def _freeze(value: Any) -> Any:
    """Make ``value`` hashable when possible, else ``_UNHASHABLE``."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, set):
        return frozenset(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    try:
        hash(value)
    except TypeError:
        return _UNHASHABLE
    return value


def memoize_program(maxsize: int = DEFAULT_MAXSIZE) -> Callable[[_F], _F]:
    """LRU-memoize a pure program factory, counting hits/misses.

    Returns a decorator.  The wrapped function gains ``cache_clear()``
    and ``cache_len()`` helpers for tests and the perf baseline.
    """

    def decorate(func: _F) -> _F:
        cache: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            frozen_args = tuple(_freeze(a) for a in args)
            frozen_kwargs = tuple(sorted(
                (k, _freeze(v)) for k, v in kwargs.items()
            ))
            if _UNHASHABLE in frozen_args or any(
                v is _UNHASHABLE for _, v in frozen_kwargs
            ):
                COUNTERS.program_cache_misses += 1
                return func(*args, **kwargs)
            key = (frozen_args, frozen_kwargs)
            try:
                result = cache[key]
            except KeyError:
                COUNTERS.program_cache_misses += 1
                result = func(*args, **kwargs)
                cache[key] = result
                if len(cache) > maxsize:
                    cache.popitem(last=False)
                    COUNTERS.program_cache_evictions += 1
                return result
            COUNTERS.program_cache_hits += 1
            cache.move_to_end(key)
            return result

        wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
        wrapper.cache_len = lambda: len(cache)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
