"""Instruction definitions for the mini ISA.

The attacks in the paper (Figures 3, 4 and 6) only require a small set
of primitives: loads/stores with base+offset addressing, simple ALU
operations, cache-line flushes, fences, a cycle-counter read
(``rdtscp``), and nops used to pad code so that a load's program
counter maps onto a chosen Value Prediction System (VPS) index.

Programs are straight-line: loops are unrolled by the
:class:`~repro.isa.builder.ProgramBuilder` and secret-dependent control
flow is resolved at program-construction time (the generated *trace*
differs with the secret, which is exactly the property the attacks
exploit).

Every instruction occupies :data:`INSTRUCTION_BYTES` bytes of the
instruction address space, so the *n*-th instruction of a program that
starts at ``base_pc`` has ``pc = base_pc + n * INSTRUCTION_BYTES``
unless explicitly pinned.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import IsaError

#: Size of one encoded instruction in bytes (used for PC arithmetic).
INSTRUCTION_BYTES = 4

#: Number of architectural integer registers.
NUM_REGISTERS = 32


class Opcode(enum.Enum):
    """Operation codes of the mini ISA."""

    NOP = "nop"
    LI = "li"          #: load immediate into a register
    ALU = "alu"        #: register/immediate ALU operation
    LOAD = "load"      #: load from [base + imm]
    STORE = "store"    #: store to [base + imm]
    FLUSH = "flush"    #: flush the cache line containing [base + imm]
    FENCE = "fence"    #: serialise: drain the pipeline before continuing
    RDTSC = "rdtsc"    #: read the cycle counter into a register
    HALT = "halt"      #: stop the program


class AluOp(enum.Enum):
    """ALU operations supported by :attr:`Opcode.ALU`."""

    ADD = "add"
    SUB = "sub"
    XOR = "xor"
    AND = "and"
    OR = "or"
    MUL = "mul"
    SHL = "shl"
    SHR = "shr"


#: ALU operations that use the long-latency multiplier port.
LONG_LATENCY_ALU_OPS = frozenset({AluOp.MUL})


def _check_register(reg: Optional[int], what: str, allow_none: bool = False) -> None:
    """Validate a register operand index."""
    if reg is None:
        if allow_none:
            return
        raise IsaError(f"{what} register is required")
    if not isinstance(reg, int) or isinstance(reg, bool):
        raise IsaError(f"{what} register must be an int, got {reg!r}")
    if not 0 <= reg < NUM_REGISTERS:
        raise IsaError(
            f"{what} register {reg} out of range 0..{NUM_REGISTERS - 1}"
        )


@dataclass(frozen=True)
class Instruction:
    """A single mini-ISA instruction.

    Attributes:
        op: The opcode.
        dst: Destination register (LI, ALU, LOAD, RDTSC).
        src1: First source register (ALU), or base register for memory
            operations (LOAD, STORE, FLUSH); ``None`` means base 0 so
            the effective address is just ``imm``.
        src2: Second source register (ALU register form), or the data
            register for STORE.
        imm: Immediate: the ALU immediate (when ``src2`` is ``None``),
            the LI constant, or the address offset for memory ops.
        alu_op: The ALU operation for :attr:`Opcode.ALU`.
        tag: Optional free-form annotation used by attack tooling to
            identify interesting instructions in traces (e.g.
            ``"trigger-load"``).
        secret: Marks a LOAD whose result is derived from a secret.
            Purely static metadata: the pipeline ignores it, but the
            static analyzer (:mod:`repro.analysis`) uses it as a taint
            source for secret-to-address and secret-to-timing-window
            flow detection.
    """

    op: Opcode
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    alu_op: Optional[AluOp] = None
    tag: Optional[str] = None
    secret: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.op, Opcode):
            raise IsaError(f"op must be an Opcode, got {self.op!r}")
        if not isinstance(self.imm, int) or isinstance(self.imm, bool):
            raise IsaError(f"imm must be an int, got {self.imm!r}")
        if self.secret and self.op is not Opcode.LOAD:
            raise IsaError(
                f"only LOAD instructions can be marked secret, "
                f"got {self.op.value}"
            )
        validator = _VALIDATORS[self.op]
        validator(self)

    # ------------------------------------------------------------------
    # Operand classification helpers used by the pipeline for renaming.
    # ------------------------------------------------------------------
    @property
    def is_memory(self) -> bool:
        """True for operations that access the data memory hierarchy."""
        return self.op in (Opcode.LOAD, Opcode.STORE, Opcode.FLUSH)

    @property
    def is_load(self) -> bool:
        """True for load operations."""
        return self.op is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        """True for store operations."""
        return self.op is Opcode.STORE

    @property
    def is_serialising(self) -> bool:
        """True for instructions that drain the pipeline before issue."""
        return self.op in (Opcode.FENCE, Opcode.RDTSC)

    def source_registers(self) -> Tuple[int, ...]:
        """Registers read by this instruction."""
        sources = []
        if self.op is Opcode.ALU:
            sources.append(self.src1)
            if self.src2 is not None:
                sources.append(self.src2)
        elif self.op in (Opcode.LOAD, Opcode.FLUSH):
            if self.src1 is not None:
                sources.append(self.src1)
        elif self.op is Opcode.STORE:
            if self.src1 is not None:
                sources.append(self.src1)
            sources.append(self.src2)
        return tuple(s for s in sources if s is not None)

    def destination_register(self) -> Optional[int]:
        """Register written by this instruction, or ``None``."""
        if self.op in (Opcode.LI, Opcode.ALU, Opcode.LOAD, Opcode.RDTSC):
            return self.dst
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.op.value]
        if self.op is Opcode.ALU and self.alu_op is not None:
            parts[0] = self.alu_op.value
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        if self.op in (Opcode.LOAD, Opcode.STORE, Opcode.FLUSH):
            base = f"r{self.src1}" if self.src1 is not None else ""
            addr = f"[{base}{'+' if base else ''}{self.imm:#x}]"
            if self.op is Opcode.STORE:
                parts.append(addr)
                parts.append(f"r{self.src2}")
            else:
                parts.append(addr)
        elif self.op is Opcode.ALU:
            parts.append(f"r{self.src1}")
            parts.append(f"r{self.src2}" if self.src2 is not None else f"{self.imm:#x}")
        elif self.op is Opcode.LI:
            parts.append(f"{self.imm:#x}")
        text = " ".join(str(p) for p in parts)
        if self.tag:
            text += f"  ; {self.tag}"
        return text


# ----------------------------------------------------------------------
# Per-opcode operand validation.
# ----------------------------------------------------------------------

def _validate_nop(instr: Instruction) -> None:
    if instr.dst is not None or instr.src1 is not None or instr.src2 is not None:
        raise IsaError("NOP takes no operands")


def _validate_li(instr: Instruction) -> None:
    _check_register(instr.dst, "LI destination")
    if instr.src1 is not None or instr.src2 is not None:
        raise IsaError("LI takes only a destination and an immediate")


def _validate_alu(instr: Instruction) -> None:
    if instr.alu_op is None:
        raise IsaError("ALU instruction requires alu_op")
    _check_register(instr.dst, "ALU destination")
    _check_register(instr.src1, "ALU src1")
    _check_register(instr.src2, "ALU src2", allow_none=True)


def _validate_load(instr: Instruction) -> None:
    _check_register(instr.dst, "LOAD destination")
    _check_register(instr.src1, "LOAD base", allow_none=True)
    if instr.src2 is not None:
        raise IsaError("LOAD takes no second source register")


def _validate_store(instr: Instruction) -> None:
    _check_register(instr.src2, "STORE data")
    _check_register(instr.src1, "STORE base", allow_none=True)
    if instr.dst is not None:
        raise IsaError("STORE has no destination register")


def _validate_flush(instr: Instruction) -> None:
    _check_register(instr.src1, "FLUSH base", allow_none=True)
    if instr.dst is not None or instr.src2 is not None:
        raise IsaError("FLUSH takes only a base register and offset")


def _validate_fence(instr: Instruction) -> None:
    if instr.dst is not None or instr.src1 is not None or instr.src2 is not None:
        raise IsaError("FENCE takes no operands")


def _validate_rdtsc(instr: Instruction) -> None:
    _check_register(instr.dst, "RDTSC destination")
    if instr.src1 is not None or instr.src2 is not None:
        raise IsaError("RDTSC takes only a destination register")


def _validate_halt(instr: Instruction) -> None:
    if instr.dst is not None or instr.src1 is not None or instr.src2 is not None:
        raise IsaError("HALT takes no operands")


_VALIDATORS = {
    Opcode.NOP: _validate_nop,
    Opcode.LI: _validate_li,
    Opcode.ALU: _validate_alu,
    Opcode.LOAD: _validate_load,
    Opcode.STORE: _validate_store,
    Opcode.FLUSH: _validate_flush,
    Opcode.FENCE: _validate_fence,
    Opcode.RDTSC: _validate_rdtsc,
    Opcode.HALT: _validate_halt,
}


# Convenience constructors --------------------------------------------------

def nop(tag: Optional[str] = None) -> Instruction:
    """A no-operation instruction (used for PC padding)."""
    return Instruction(Opcode.NOP, tag=tag)


def li(dst: int, imm: int, tag: Optional[str] = None) -> Instruction:
    """Load the immediate ``imm`` into register ``dst``."""
    return Instruction(Opcode.LI, dst=dst, imm=imm, tag=tag)


def alu(
    alu_op: AluOp,
    dst: int,
    src1: int,
    src2: Optional[int] = None,
    imm: int = 0,
    tag: Optional[str] = None,
) -> Instruction:
    """An ALU operation ``dst = src1 <op> (src2 | imm)``."""
    return Instruction(
        Opcode.ALU, dst=dst, src1=src1, src2=src2, imm=imm, alu_op=alu_op, tag=tag
    )


def load(
    dst: int,
    base: Optional[int] = None,
    imm: int = 0,
    tag: Optional[str] = None,
    secret: bool = False,
) -> Instruction:
    """A load ``dst = mem[base + imm]`` (``base=None`` means address ``imm``).

    ``secret=True`` marks the loaded value as secret-derived for the
    static analyzer; execution is unaffected.
    """
    return Instruction(
        Opcode.LOAD, dst=dst, src1=base, imm=imm, tag=tag, secret=secret
    )


def store(
    data: int,
    base: Optional[int] = None,
    imm: int = 0,
    tag: Optional[str] = None,
) -> Instruction:
    """A store ``mem[base + imm] = data``."""
    return Instruction(Opcode.STORE, src1=base, src2=data, imm=imm, tag=tag)


def flush(
    base: Optional[int] = None,
    imm: int = 0,
    tag: Optional[str] = None,
) -> Instruction:
    """Flush the cache line containing ``base + imm`` from all levels."""
    return Instruction(Opcode.FLUSH, src1=base, imm=imm, tag=tag)


def fence(tag: Optional[str] = None) -> Instruction:
    """A full serialising fence."""
    return Instruction(Opcode.FENCE, tag=tag)


def rdtsc(dst: int, tag: Optional[str] = None) -> Instruction:
    """Read the core cycle counter into ``dst`` (serialising, rdtscp-like)."""
    return Instruction(Opcode.RDTSC, dst=dst, tag=tag)


def halt(tag: Optional[str] = None) -> Instruction:
    """Terminate the program."""
    return Instruction(Opcode.HALT, tag=tag)
