"""Mini ISA: instructions, programs, builder, and assembler.

The substrate the attack workloads are written in.  See
:mod:`repro.isa.instructions` for the instruction set and
:mod:`repro.isa.builder` for the programmatic front-end.
"""

from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    AluOp,
    Instruction,
    Opcode,
    alu,
    fence,
    flush,
    halt,
    li,
    load,
    nop,
    rdtsc,
    store,
)
from repro.isa.program import LoopRegion, PlacedInstruction, Program

__all__ = [
    "INSTRUCTION_BYTES",
    "NUM_REGISTERS",
    "AluOp",
    "Instruction",
    "LoopRegion",
    "Opcode",
    "PlacedInstruction",
    "Program",
    "ProgramBuilder",
    "alu",
    "assemble",
    "fence",
    "flush",
    "halt",
    "li",
    "load",
    "nop",
    "rdtsc",
    "store",
]
