"""Program builder with PC placement and loop unrolling.

The builder is the main way attack workloads are written.  Two features
matter specifically for value-predictor attacks:

* :meth:`ProgramBuilder.pin_pc` places the next instruction at a
  chosen PC.  This reproduces the "``nop(); // pad to map to sender's
  index``" trick from Figure 3 of the paper — making a receiver load
  collide with a sender load in a PC-indexed Value Prediction System —
  with a PC gap standing in for the nop sled.
* :meth:`ProgramBuilder.loop` records a true counted loop whose body
  re-executes the *same PCs* every iteration.  The paper's train loops
  ("``for (i=0;i<C;i++)``") must be loops, not unrolled copies,
  because a PC-indexed VPS only accumulates confidence when the same
  load PC repeats.  :meth:`ProgramBuilder.repeat` is the unrolled
  variant for code where per-iteration PCs do not matter.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import IsaError
from repro.isa import instructions as ins
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    AluOp,
    Instruction,
)
from repro.isa.program import LoopRegion, PlacedInstruction, Program


@dataclass
class _LoopFrame:
    """Bookkeeping for an open :meth:`ProgramBuilder.loop` block."""

    count: int
    start_index: int


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`.

    Args:
        name: Program name for traces.
        pid: Process identifier.
        base_pc: PC of the first instruction.

    Example::

        b = ProgramBuilder("receiver", pid=1)
        b.flush(imm=ARR3)
        b.pin_pc(0x40)                 # collide with the sender's load
        b.load(dst=3, imm=ARR3, tag="trigger-load")
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str = "program", pid: int = 0, base_pc: int = 0) -> None:
        if base_pc % INSTRUCTION_BYTES != 0:
            raise IsaError(f"base_pc {base_pc:#x} must be aligned")
        if base_pc < 0:
            raise IsaError("base_pc must be non-negative")
        self.name = name
        self.pid = pid
        self._next_pc = base_pc
        self._placed: List[PlacedInstruction] = []
        self._labels: Dict[str, int] = {}
        self._loop_stack: List[_LoopFrame] = []
        self._loops: List[LoopRegion] = []
        self._built = False

    # ------------------------------------------------------------------
    # PC bookkeeping
    # ------------------------------------------------------------------
    @property
    def next_pc(self) -> int:
        """PC that the next emitted instruction will occupy."""
        return self._next_pc

    def pin_pc(self, pc: int) -> "ProgramBuilder":
        """Place the next instruction at ``pc``.

        Semantically equivalent to the nop padding of Figure 3 ("pad
        to map to sender's index") but represented as a PC gap: the
        intervening addresses simply hold no instructions, which keeps
        simulation cost independent of how far apart colliding PCs
        are.

        Raises:
            IsaError: If ``pc`` is unaligned or already behind the
                current position.
        """
        if pc % INSTRUCTION_BYTES != 0:
            raise IsaError(f"pin_pc target {pc:#x} must be aligned")
        if pc < self.next_pc:
            raise IsaError(
                f"pin_pc target {pc:#x} is behind current pc {self.next_pc:#x}"
            )
        self._next_pc = pc
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Bind ``name`` to the PC of the next instruction."""
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = self.next_pc
        return self

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        """Append a pre-constructed instruction."""
        if self._built:
            raise IsaError("builder already produced a program")
        self._placed.append(
            PlacedInstruction(pc=self._next_pc, instruction=instruction)
        )
        self._next_pc += INSTRUCTION_BYTES
        return self

    def nop(self, tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a NOP."""
        return self.emit(ins.nop(tag=tag))

    def li(self, dst: int, imm: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a load-immediate."""
        return self.emit(ins.li(dst, imm, tag=tag))

    def alu(
        self,
        alu_op: AluOp,
        dst: int,
        src1: int,
        src2: Optional[int] = None,
        imm: int = 0,
        tag: Optional[str] = None,
    ) -> "ProgramBuilder":
        """Emit an ALU operation."""
        return self.emit(ins.alu(alu_op, dst, src1, src2=src2, imm=imm, tag=tag))

    def add(self, dst: int, src1: int, src2: Optional[int] = None, imm: int = 0,
            tag: Optional[str] = None) -> "ProgramBuilder":
        """Append one sample (or emit the ALU add helper)."""
        return self.alu(AluOp.ADD, dst, src1, src2=src2, imm=imm, tag=tag)

    def mul(self, dst: int, src1: int, src2: Optional[int] = None, imm: int = 0,
            tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a multiply (ALU helper)."""
        return self.alu(AluOp.MUL, dst, src1, src2=src2, imm=imm, tag=tag)

    def xor(self, dst: int, src1: int, src2: Optional[int] = None, imm: int = 0,
            tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit an XOR (ALU helper)."""
        return self.alu(AluOp.XOR, dst, src1, src2=src2, imm=imm, tag=tag)

    def shl(self, dst: int, src1: int, imm: int, tag: Optional[str] = None
            ) -> "ProgramBuilder":
        """Emit a left shift (ALU helper)."""
        return self.alu(AluOp.SHL, dst, src1, imm=imm, tag=tag)

    def load(
        self,
        dst: int,
        base: Optional[int] = None,
        imm: int = 0,
        tag: Optional[str] = None,
        secret: bool = False,
    ) -> "ProgramBuilder":
        """Emit a load (``secret=True`` marks it for the static analyzer)."""
        return self.emit(
            ins.load(dst, base=base, imm=imm, tag=tag, secret=secret)
        )

    def store(
        self,
        data: int,
        base: Optional[int] = None,
        imm: int = 0,
        tag: Optional[str] = None,
    ) -> "ProgramBuilder":
        """Emit a store."""
        return self.emit(ins.store(data, base=base, imm=imm, tag=tag))

    def flush(
        self,
        base: Optional[int] = None,
        imm: int = 0,
        tag: Optional[str] = None,
    ) -> "ProgramBuilder":
        """Emit a cache-line flush."""
        return self.emit(ins.flush(base=base, imm=imm, tag=tag))

    def fence(self, tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a serialising fence."""
        return self.emit(ins.fence(tag=tag))

    def rdtsc(self, dst: int, tag: Optional[str] = None) -> "ProgramBuilder":
        """Emit a cycle-counter read."""
        return self.emit(ins.rdtsc(dst, tag=tag))

    def halt(self) -> "ProgramBuilder":
        """Emit a HALT."""
        return self.emit(ins.halt())

    # ------------------------------------------------------------------
    # Loop unrolling
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def repeat(self, count: int) -> Iterator[None]:
        """Unroll the enclosed emission block ``count`` times.

        The body is recorded once and replayed ``count - 1`` additional
        times when the context exits; each copy occupies fresh PCs.
        Use this for code where per-iteration PCs do not matter (e.g.
        dependent-operation chains).  For train loops whose load must
        hit the *same* VPS index every iteration, use :meth:`loop`.
        """
        if count < 1:
            raise IsaError(f"repeat count must be >= 1, got {count}")
        frame = _LoopFrame(count=count, start_index=len(self._placed))
        self._loop_stack.append(frame)
        try:
            yield
        finally:
            self._loop_stack.pop()
        if any(region.start >= frame.start_index for region in self._loops):
            raise IsaError("a loop() block may not appear inside repeat()")
        body = [placed.instruction for placed in self._placed[frame.start_index:]]
        for _ in range(count - 1):
            for instruction in body:
                self.emit(instruction)

    @contextlib.contextmanager
    def loop(self, count: int) -> Iterator[None]:
        """Execute the enclosed block ``count`` times as a true loop.

        Unlike :meth:`repeat`, the body occupies its PCs *once* and the
        pipeline re-executes those same PCs each iteration.  This is
        how the paper's train loops work: a PC-indexed VPS only
        accumulates confidence when the same load PC repeats.

        Loops may nest but must be properly nested.
        """
        if count < 1:
            raise IsaError(f"loop count must be >= 1, got {count}")
        start_index = len(self._placed)
        frame = _LoopFrame(count=count, start_index=start_index)
        self._loop_stack.append(frame)
        try:
            yield
        finally:
            self._loop_stack.pop()
        stop_index = len(self._placed)
        if stop_index == start_index:
            raise IsaError("loop body must contain at least one instruction")
        self._loops.append(
            LoopRegion(start=start_index, stop=stop_index, count=count)
        )

    def dependent_chain(
        self, length: int, dst: int = 30, src: int = 29, tag: str = "dep-chain"
    ) -> "ProgramBuilder":
        """Emit a serial chain of ``length`` dependent ALU adds.

        The first add consumes ``src`` (typically the trigger load's
        destination) so the chain cannot start before the loaded —
        or value-predicted — data is available.  This reproduces the
        ``dependent_alu_mem_ops()`` of Figure 3, which amplifies the
        timing difference between prediction outcomes.
        """
        if length < 1:
            raise IsaError(f"dependent chain length must be >= 1, got {length}")
        self.add(dst, src, imm=1, tag=tag)
        for _ in range(length - 1):
            self.add(dst, dst, imm=1, tag=tag)
        return self

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalise and return the program (appends HALT if missing)."""
        if self._loop_stack:
            raise IsaError("cannot build while a repeat/loop block is open")
        if (
            not self._placed
            or self._placed[-1].instruction.op is not ins.Opcode.HALT
        ):
            self.halt()
        self._built = True
        return Program(
            self._placed,
            name=self.name,
            pid=self.pid,
            labels=self._labels,
            loops=self._loops,
        )
