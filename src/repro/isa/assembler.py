"""Text assembler for the mini ISA.

A convenience front-end for tests and examples; attack workloads are
normally generated with :class:`~repro.isa.builder.ProgramBuilder`.

Syntax (one statement per line; ``;`` and ``#`` start comments)::

    label:                  ; bind a label to the next instruction
    .pin 0x40               ; pad with nops so next instruction is at PC 0x40
    .loop 4                 ; open a counted loop (same PCs each iteration)
    .endloop                ; close the innermost loop
    .tag trigger-load       ; annotate the next instruction with a tag
    .secret                 ; mark the next load as secret (taint source)
    nop
    li    r1, 0x100
    add   r2, r1, r3        ; register form
    add   r2, r1, 5         ; immediate form
    mul   r2, r1, r3
    load  r3, [r1+0x40]     ; base+offset
    load  r3, [0x200]       ; absolute
    store [r1+8], r2
    flush [0x200]
    fence
    rdtsc r9
    halt
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AssemblyError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AluOp
from repro.isa.program import Program

_ALU_MNEMONICS = {op.value: op for op in AluOp}

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^\[\s*(?:(r\d+)\s*\+\s*)?([^\]\s]+)\s*\]$")


def _parse_int(token: str, line_number: int) -> int:
    """Parse a decimal, hex (0x), or binary (0b) integer literal."""
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line_number}: expected integer, got {token!r}"
        ) from None


def _parse_register(token: str, line_number: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"line {line_number}: expected register, got {token!r}")
    return int(match.group(1))


def _parse_memory_operand(
    token: str, line_number: int
) -> Tuple[Optional[int], int]:
    """Parse ``[base+off]`` or ``[addr]`` into (base register, offset)."""
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError(
            f"line {line_number}: expected memory operand like [r1+0x40], got {token!r}"
        )
    base_token, offset_token = match.groups()
    base = int(base_token[1:]) if base_token else None
    offset = _parse_int(offset_token, line_number)
    return base, offset


def _split_operands(rest: str) -> List[str]:
    """Split an operand string on top-level commas."""
    operands: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def assemble(
    source: str,
    name: str = "asm",
    pid: int = 0,
    base_pc: int = 0,
) -> Program:
    """Assemble ``source`` text into a :class:`~repro.isa.program.Program`.

    Raises:
        AssemblyError: On any syntax or operand error, with the
            offending line number in the message.
    """
    builder = ProgramBuilder(name=name, pid=pid, base_pc=base_pc)
    open_loops: List[object] = []
    pending_tag: Optional[str] = None
    pending_secret = False
    pending_line = 0

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            builder.label(label_match.group(1))
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(rest)

        if mnemonic == ".tag":
            _require(operands, 1, line_number, mnemonic)
            pending_tag = operands[0]
            pending_line = line_number
            continue
        if mnemonic == ".secret":
            _require(operands, 0, line_number, mnemonic)
            pending_secret = True
            pending_line = line_number
            continue
        if mnemonic == ".pin":
            _require(operands, 1, line_number, mnemonic)
            builder.pin_pc(_parse_int(operands[0], line_number))
            continue
        elif mnemonic == ".loop":
            _require(operands, 1, line_number, mnemonic)
            context = builder.loop(_parse_int(operands[0], line_number))
            context.__enter__()
            open_loops.append(context)
            continue
        elif mnemonic == ".endloop":
            if not open_loops:
                raise AssemblyError(f"line {line_number}: .endloop without .loop")
            open_loops.pop().__exit__(None, None, None)
            continue

        # Pending .tag/.secret annotations attach to the next *instruction*
        # (directives above pass through without consuming them).
        if pending_secret and mnemonic != "load":
            raise AssemblyError(
                f"line {pending_line}: .secret must be followed by a load, "
                f"got {mnemonic!r}"
            )
        tag, pending_tag = pending_tag, None
        secret, pending_secret = pending_secret, False

        if mnemonic == "nop":
            builder.nop(tag=tag)
        elif mnemonic == "li":
            _require(operands, 2, line_number, mnemonic)
            builder.li(
                _parse_register(operands[0], line_number),
                _parse_int(operands[1], line_number),
                tag=tag,
            )
        elif mnemonic in _ALU_MNEMONICS:
            _require(operands, 3, line_number, mnemonic)
            dst = _parse_register(operands[0], line_number)
            src1 = _parse_register(operands[1], line_number)
            if _REG_RE.match(operands[2]):
                builder.alu(_ALU_MNEMONICS[mnemonic], dst, src1,
                            src2=_parse_register(operands[2], line_number),
                            tag=tag)
            else:
                builder.alu(_ALU_MNEMONICS[mnemonic], dst, src1,
                            imm=_parse_int(operands[2], line_number),
                            tag=tag)
        elif mnemonic == "load":
            _require(operands, 2, line_number, mnemonic)
            dst = _parse_register(operands[0], line_number)
            base, offset = _parse_memory_operand(operands[1], line_number)
            builder.load(dst, base=base, imm=offset, tag=tag, secret=secret)
        elif mnemonic == "store":
            _require(operands, 2, line_number, mnemonic)
            base, offset = _parse_memory_operand(operands[0], line_number)
            data = _parse_register(operands[1], line_number)
            builder.store(data, base=base, imm=offset, tag=tag)
        elif mnemonic == "flush":
            _require(operands, 1, line_number, mnemonic)
            base, offset = _parse_memory_operand(operands[0], line_number)
            builder.flush(base=base, imm=offset, tag=tag)
        elif mnemonic == "fence":
            builder.fence(tag=tag)
        elif mnemonic == "rdtsc":
            _require(operands, 1, line_number, mnemonic)
            builder.rdtsc(_parse_register(operands[0], line_number), tag=tag)
        elif mnemonic == "halt":
            builder.halt()
        else:
            raise AssemblyError(
                f"line {line_number}: unknown mnemonic {mnemonic!r}"
            )

    if pending_secret:
        raise AssemblyError(
            f"line {pending_line}: .secret at end of source with no load"
        )
    if pending_tag is not None:
        raise AssemblyError(
            f"line {pending_line}: .tag at end of source with no instruction"
        )
    if open_loops:
        raise AssemblyError("unterminated .loop block at end of source")
    return builder.build()


def _require(
    operands: List[str], count: int, line_number: int, mnemonic: str
) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"line {line_number}: {mnemonic} expects {count} operand(s), "
            f"got {len(operands)}"
        )
