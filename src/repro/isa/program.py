"""Program container for the mini ISA.

A :class:`Program` is a straight-line sequence of instructions with
explicit program-counter (PC) values.  PCs matter for the attacks: the
Value Prediction System of the paper can be indexed by the load's PC,
so the attack programs pad code with nops ("pad to map to sender's
index" in Figure 3) — here represented by explicit PC pinning through
the builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IsaError
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.perf.counters import COUNTERS


@dataclass(frozen=True)
class PlacedInstruction:
    """An instruction bound to a program counter."""

    pc: int
    instruction: Instruction

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pc:#08x}: {self.instruction}"


@dataclass(frozen=True)
class LoopRegion:
    """A counted loop over a contiguous instruction range.

    ``start`` and ``stop`` are indices into the program's static
    instruction list (``stop`` exclusive); the body executes ``count``
    times.  Loops matter because a PC-indexed Value Prediction System
    accumulates confidence only when the *same load PC* repeats — an
    unrolled train loop would spread its accesses over many predictor
    entries and never train one.

    Loop trip counts are static (resolved at program-construction
    time), so the pipeline needs no branch prediction: the dynamic
    instruction trace is fully determined before execution.
    """

    start: int
    stop: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise IsaError(
                f"invalid loop region [{self.start}, {self.stop})"
            )
        if self.count < 1:
            raise IsaError(f"loop count must be >= 1, got {self.count}")

    def contains(self, other: "LoopRegion") -> bool:
        """True if ``other`` nests strictly inside this region."""
        return self.start <= other.start and other.stop <= self.stop and (
            (self.start, self.stop) != (other.start, other.stop)
        )

    def overlaps(self, other: "LoopRegion") -> bool:
        """True if the regions overlap without nesting."""
        if self.contains(other) or other.contains(self):
            return False
        if (self.start, self.stop) == (other.start, other.stop):
            return True
        return self.start < other.stop and other.start < self.stop


class Program:
    """An ordered, PC-annotated instruction sequence for one process.

    Args:
        instructions: The placed instructions, in execution order.
            PCs must be strictly increasing and aligned to
            :data:`~repro.isa.instructions.INSTRUCTION_BYTES`.
        name: Human-readable name used in traces and reports.
        pid: Process identifier.  Programs with different pids have
            disjoint private data, and the VPS may mix the pid into its
            index (see :mod:`repro.vp.indexing`).
        labels: Optional mapping of label name to PC.
    """

    def __init__(
        self,
        instructions: Sequence[PlacedInstruction],
        name: str = "program",
        pid: int = 0,
        labels: Optional[Dict[str, int]] = None,
        loops: Optional[Sequence[LoopRegion]] = None,
    ) -> None:
        if not instructions:
            raise IsaError("a program must contain at least one instruction")
        previous_pc = -INSTRUCTION_BYTES
        for placed in instructions:
            if placed.pc % INSTRUCTION_BYTES != 0:
                raise IsaError(
                    f"pc {placed.pc:#x} is not aligned to {INSTRUCTION_BYTES} bytes"
                )
            if placed.pc <= previous_pc:
                raise IsaError(
                    f"pc {placed.pc:#x} does not increase past {previous_pc:#x}"
                )
            previous_pc = placed.pc
        if instructions[-1].instruction.op is not Opcode.HALT:
            raise IsaError("a program must end with HALT")
        self._instructions: Tuple[PlacedInstruction, ...] = tuple(instructions)
        self.name = name
        self.pid = pid
        self.labels: Dict[str, int] = dict(labels or {})
        self.loops: Tuple[LoopRegion, ...] = tuple(loops or ())
        for region in self.loops:
            if region.stop > len(self._instructions):
                raise IsaError(
                    f"loop region [{region.start}, {region.stop}) exceeds "
                    f"program length {len(self._instructions)}"
                )
        for i, first in enumerate(self.loops):
            for second in self.loops[i + 1:]:
                if first.overlaps(second):
                    raise IsaError(
                        f"loop regions {first} and {second} overlap without nesting"
                    )
        self._trace_cache: Optional[Tuple[PlacedInstruction, ...]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[PlacedInstruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> PlacedInstruction:
        return self._instructions[index]

    @property
    def instructions(self) -> Tuple[PlacedInstruction, ...]:
        """The placed instructions, in order."""
        return self._instructions

    @property
    def start_pc(self) -> int:
        """PC of the first instruction."""
        return self._instructions[0].pc

    @property
    def end_pc(self) -> int:
        """PC of the last instruction."""
        return self._instructions[-1].pc

    def pc_of_label(self, label: str) -> int:
        """Return the PC bound to ``label``.

        Raises:
            IsaError: If the label is unknown.
        """
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"unknown label {label!r} in program {self.name!r}") from None

    def pcs_tagged(self, tag: str) -> List[int]:
        """Return the PCs of all instructions annotated with ``tag``."""
        return [
            placed.pc
            for placed in self._instructions
            if placed.instruction.tag == tag
        ]

    def count_opcode(self, op: Opcode) -> int:
        """Number of instructions with opcode ``op``."""
        return sum(1 for placed in self._instructions if placed.instruction.op is op)

    # ------------------------------------------------------------------
    # Dynamic trace expansion
    # ------------------------------------------------------------------
    def dynamic_trace(self) -> Tuple[PlacedInstruction, ...]:
        """The dynamic instruction stream with loop regions expanded.

        Loop bodies replay the *same* placed instructions (same PCs)
        on every iteration, which is what lets a PC-indexed predictor
        accumulate confidence across train-loop iterations.  The
        result is cached; all loop trip counts are static so the trace
        is execution-independent.
        """
        if self._trace_cache is not None:
            COUNTERS.trace_cache_hits += 1
            return self._trace_cache
        COUNTERS.trace_cache_misses += 1
        trace = self._expand(0, len(self._instructions), self.loops)
        self._trace_cache = tuple(trace)
        return self._trace_cache

    def _expand(
        self,
        start: int,
        stop: int,
        regions: Sequence[LoopRegion],
    ) -> List[PlacedInstruction]:
        """Recursively expand loop ``regions`` within ``[start, stop)``."""
        top_level: List[LoopRegion] = []
        for region in regions:
            if region.start < start or region.stop > stop:
                continue
            if any(outer.contains(region) for outer in regions
                   if outer is not region and start <= outer.start and outer.stop <= stop):
                continue
            top_level.append(region)
        top_level.sort(key=lambda region: region.start)
        result: List[PlacedInstruction] = []
        cursor = start
        for region in top_level:
            result.extend(self._instructions[cursor:region.start])
            inner = [
                nested for nested in regions
                if region.contains(nested)
            ]
            body = self._expand(region.start, region.stop, inner)
            for _ in range(region.count):
                result.extend(body)
            cursor = region.stop
        result.extend(self._instructions[cursor:stop])
        return result

    def dynamic_length(self) -> int:
        """Length of the dynamic trace (with loops expanded)."""
        return len(self.dynamic_trace())

    def listing(self) -> str:
        """A human-readable disassembly listing."""
        reverse_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            reverse_labels.setdefault(pc, []).append(label)
        lines = [f"; program {self.name!r} pid={self.pid}"]
        for placed in self._instructions:
            for label in sorted(reverse_labels.get(placed.pc, [])):
                lines.append(f"{label}:")
            lines.append(f"  {placed}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Program(name={self.name!r}, pid={self.pid}, "
            f"instructions={len(self._instructions)})"
        )
