"""Command-line interface: regenerate any paper artifact from a shell.

Examples::

    python -m repro table2
    python -m repro attack --variant "Train + Test" --channel persistent
    python -m repro table3 --runs 100
    python -m repro fig5
    python -m repro fig7
    python -m repro sweep --variant "Test + Hit" --windows 1,2,4,6,8,9,10
    python -m repro attack --variant "Spill Over" --defense "A[fixed]+D"
    python -m repro hunt --static --out out
    python -m repro hunt --out out --runs 60
    python -m repro report --dir out --hunt
    python -m repro speedup
    python -m repro analyze examples/programs/timed_trigger.asm
    python -m repro lint --code
    python -m repro report --dir out
    python -m repro all --out out --workers 4
    python -m repro all --out out --sequential
    python -m repro attack --variant "Train + Test" --sequential
    python -m repro perf --workers 4 --profile sweep.pstats
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.attack import AttackConfig, AttackRunner
from repro.core.channels import ChannelType
from repro.core.variants import variant_by_name
from repro.defenses import (
    AlwaysPredictDefense,
    Defense,
    DefenseStack,
    DelaySideEffectsDefense,
    InvisiSpecDefense,
    RandomWindowDefense,
)
from repro.errors import ReproError
from repro.harness import (
    figure5_panels,
    figure7_report,
    figure7_result,
    figure8_panels,
    figure_report,
    render_defense_sweep,
    render_table1,
    render_table2,
    table3_report,
    table3_results,
    window_sweep,
)
from repro.core.taxonomy import render_figure2


def parse_defense(text: Optional[str]) -> Optional[Defense]:
    """Parse a defense spec like ``"R[3]+A[history]+D"``.

    Components: ``R[n]`` (random window), ``A[history]``/``A[fixed]``
    (always predict), ``D`` (delay side effects), ``invisispec``.
    """
    if not text:
        return None
    components: List[Defense] = []
    for token in text.split("+"):
        token = token.strip()
        lowered = token.lower()
        if lowered.startswith("r[") and lowered.endswith("]"):
            components.append(
                RandomWindowDefense(window_size=int(token[2:-1]))
            )
        elif lowered.startswith("a[") and lowered.endswith("]"):
            components.append(AlwaysPredictDefense(mode=lowered[2:-1]))
        elif lowered == "d":
            components.append(DelaySideEffectsDefense())
        elif lowered == "invisispec":
            components.append(InvisiSpecDefense())
        else:
            raise ReproError(f"unknown defense component {token!r}")
    return DefenseStack(components)


def _sequential_policy(args: argparse.Namespace):
    """The :class:`SequentialPolicy` requested by the CLI flags.

    Returns ``None`` for fixed-N runs (the default and ``--fixed-n``,
    which exists so validation scripts can *assert* the byte-identical
    historical behaviour explicitly).
    """
    from repro.harness.runner import SequentialPolicy

    if args.fixed_n and args.sequential:
        raise ReproError("--fixed-n and --sequential are mutually exclusive")
    if not args.sequential:
        if args.interim_looks:
            raise ReproError("--interim-looks requires --sequential")
        return None
    looks = None
    if args.interim_looks:
        try:
            looks = tuple(
                int(part) for part in args.interim_looks.split(",")
            )
        except ValueError:
            raise ReproError(
                "--interim-looks must be comma-separated trial counts, "
                f"got {args.interim_looks!r}"
            ) from None
    return SequentialPolicy(looks=looks)


def _add_sequential_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sequential", action="store_true",
        help="group-sequential early stopping: examine each cell at "
             "interim looks against an alpha-spending boundary and "
             "stop as soon as the verdict is decisive",
    )
    parser.add_argument(
        "--interim-looks", default=None, metavar="N1,N2,...",
        help="with --sequential: explicit cumulative trial counts for "
             "the interim looks (default: 20/40/60/80/100%% of --runs)",
    )
    parser.add_argument(
        "--fixed-n", action="store_true",
        help="assert the historical fixed-N protocol (byte-identical "
             "artifacts; rejects --sequential)",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.sim import BACKEND_NAMES

    parser.add_argument(
        "--backend", default=None, choices=list(BACKEND_NAMES),
        help="simulation backend for the trial loop: scalar (the "
             "reference interpreter, default), batched (numpy "
             "lockstep lanes, byte-identical results) or pool (the "
             "cross-cell lane pool); default follows $REPRO_BACKEND",
    )
    parser.add_argument(
        "--lane-schedule", default=None, choices=["cell", "pool"],
        help="lane scheduling across cells: cell (one lockstep pass "
             "per cell chunk, the default) or pool (continuous "
             "batching — recorded passes and warm machine state are "
             "shared across cells, looks and jobs; sugar for "
             "--backend pool, byte-identical results)",
    )


def _effective_backend(args: argparse.Namespace) -> Optional[str]:
    """Resolve ``--backend`` and ``--lane-schedule`` to one name.

    ``--lane-schedule pool`` is sugar for ``--backend pool``; pinning
    any *other* backend alongside it is a contradiction and fails
    loudly rather than silently ignoring one of the flags.
    """
    lane_schedule = getattr(args, "lane_schedule", None)
    backend = args.backend
    if lane_schedule == "pool":
        if backend not in (None, "pool"):
            raise ReproError(
                f"--lane-schedule pool needs the pool backend, but "
                f"--backend {backend} was pinned explicitly"
            )
        return "pool"
    return backend


def _cmd_table1(args: argparse.Namespace) -> None:
    print(render_table1())


def _cmd_table2(args: argparse.Namespace) -> None:
    print(render_table2())


def _cmd_fig2(args: argparse.Namespace) -> None:
    print(render_figure2())


def _cmd_attack(args: argparse.Namespace) -> None:
    variant = variant_by_name(args.variant)
    seq_policy = _sequential_policy(args)
    if seq_policy is not None or args.fault_profile or (
        args.max_retries is not None
    ) or args.strict_preflight:
        # Route through the resilient executor: retries, adaptive
        # re-measurement, sequential early stopping and (optional)
        # fault injection.
        import dataclasses

        from repro.harness.faults import FaultInjector, fault_profile
        from repro.harness.runner import ExecutionPolicy, ResilientExecutor

        policy = ExecutionPolicy.robust(
            max_retries=(
                args.max_retries if args.max_retries is not None else 2
            )
        )
        if seq_policy is not None:
            policy = dataclasses.replace(policy, sequential=seq_policy)
        if args.strict_preflight:
            policy = dataclasses.replace(policy, strict_preflight=True)
        if _effective_backend(args) is not None:
            policy = dataclasses.replace(
                policy, backend=_effective_backend(args)
            )
        executor = ResilientExecutor(
            policy,
            injector=(
                FaultInjector(fault_profile(args.fault_profile),
                              seed=args.seed)
                if args.fault_profile else None
            ),
        )
        cell = executor.run_cell_supervised(
            f"attack/{args.variant}", variant, ChannelType(args.channel),
            args.predictor, args.runs, args.seed,
            confidence=args.confidence,
            defense=parse_defense(args.defense),
            use_oracle=args.oracle,
            modify_mode=args.modify_mode,
            snapshot_trials=args.snapshot_trials,
            audit_snapshots=args.audit_snapshots,
        )
        print(f"execution: {cell.classification.value} "
              f"({len(cell.attempts)} attempt(s)"
              f"{', ' + cell.note if cell.note else ''})")
        if cell.sequential is not None:
            seq = cell.sequential
            stopped = ", stopped early" if seq["stopped_early"] else ""
            print(f"sequential: effective n "
                  f"{seq['effective_n']}/{seq['planned_n']} after "
                  f"{len(seq['looks'])} look(s){stopped}, "
                  f"{seq['trials_avoided']} trial(s) avoided")
        if cell.result is None:
            raise ReproError(f"cell failed permanently: {cell.note}")
        result = cell.result
    else:
        config = AttackConfig(
            n_runs=args.runs,
            channel=ChannelType(args.channel),
            predictor=args.predictor,
            confidence=args.confidence,
            seed=args.seed,
            defense=parse_defense(args.defense),
            use_oracle=args.oracle,
            modify_mode=args.modify_mode,
            snapshot_trials=args.snapshot_trials,
            audit_snapshots=args.audit_snapshots,
            backend=_effective_backend(args),
        )
        result = AttackRunner(variant, config).run_experiment()
    print(result.describe())
    print(f"  mapped   mean: {result.comparison.mapped.mean:8.1f} cycles "
          f"(n={len(result.comparison.mapped)})")
    print(f"  unmapped mean: {result.comparison.unmapped.mean:8.1f} cycles "
          f"(n={len(result.comparison.unmapped)})")


def _cmd_table3(args: argparse.Namespace) -> None:
    results = table3_results(n_runs=args.runs, seed=args.seed)
    print(table3_report(results))


def _cmd_fig5(args: argparse.Namespace) -> None:
    panels = figure5_panels(n_runs=args.runs, seed=args.seed)
    print(figure_report(
        "Figure 5: Train + Test attacks", panels,
        mapped_label="mapped index", unmapped_label="unmapped index",
    ))


def _cmd_fig8(args: argparse.Namespace) -> None:
    panels = figure8_panels(n_runs=args.runs, seed=args.seed)
    print(figure_report(
        "Figure 8: Test + Hit attacks", panels,
        mapped_label="mapped data", unmapped_label="unmapped data",
    ))


def _cmd_fig7(args: argparse.Namespace) -> None:
    print(figure7_report(figure7_result(seed=args.seed)))


def _cmd_sweep(args: argparse.Namespace) -> None:
    variant = variant_by_name(args.variant)
    windows = [int(part) for part in args.windows.split(",")]
    rows, secure_at = window_sweep(
        variant, windows, n_runs=args.runs,
        seeds=tuple(args.seed + i for i in range(args.median_seeds)),
    )
    print(render_defense_sweep(variant.name, rows, secure_at))


def _cmd_all(args: argparse.Namespace) -> None:
    from repro.harness.persistence import run_all

    artifacts = (
        [part.strip() for part in args.artifacts.split(",")]
        if args.artifacts else None
    )
    written = run_all(
        args.out, n_runs=args.runs, seed=args.seed, artifacts=artifacts,
        resume=args.resume, max_retries=args.max_retries,
        fault_profile_name=args.fault_profile,
        workers=args.workers,
        cell_timeout_s=args.cell_timeout,
        snapshot_trials=args.snapshot_trials,
        audit_snapshots=args.audit_snapshots,
        sequential=_sequential_policy(args),
        strict_preflight=args.strict_preflight,
        backend=_effective_backend(args),
    )
    for name, path in sorted(written.items()):
        print(f"{name}: {path}")


def _cmd_hunt(args: argparse.Namespace) -> None:
    from repro.analysis.report import render_hunt
    from repro.harness.hunt import run_hunt

    out = run_hunt(
        args.out,
        static_only=args.static,
        n_runs=args.runs,
        seed=args.seed,
        confidence=args.confidence,
        predictor=args.predictor,
        resume=args.resume,
    )
    certificate = out["certificate"]
    dynamic = out["dynamic"]
    if args.json:
        import json

        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(render_hunt(certificate, dynamic))
    if not certificate["certified"]:
        raise ReproError(
            "hunt certificate failed: Table II completeness/minimality "
            "claims do not hold under the model"
        )
    if dynamic is not None and not dynamic["all_agree"]:
        raise ReproError(
            "static/dynamic disagreement in the hunt confirmation"
        )


def _cmd_perf(args: argparse.Namespace) -> None:
    from repro.perf.baseline import (
        DEFAULT_SNAPSHOT, perf_baseline, render_perf_report,
    )

    artifacts = [part.strip() for part in args.artifacts.split(",")]
    report = perf_baseline(
        n_runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        artifacts=artifacts,
        backend=_effective_backend(args),
        snapshot_path=(
            None if args.no_snapshot else (args.snapshot or DEFAULT_SNAPSHOT)
        ),
        profile_path=args.profile,
        progress=lambda message: print(f"# {message}", file=sys.stderr),
    )
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_perf_report(report))


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio
    import os

    from repro.harness.parallel import _resolve_profile
    from repro.serve.daemon import ReproDaemon, ServePolicy

    serve_backend = _effective_backend(args)
    if serve_backend is not None:
        # Worker processes resolve the backend from the environment
        # (repro.sim.BACKEND_ENV), so exporting it here threads the
        # selection through the pool without touching job specs —
        # results are byte-identical either way by the backend
        # contract, this only picks the execution strategy.  Under
        # --lane-schedule pool every worker's cells admit trials
        # through its process-global lane pool, so concurrent jobs
        # dispatched to one worker share tapes and warm machines.
        from repro.sim import BACKEND_ENV

        os.environ[BACKEND_ENV] = serve_backend
    os.makedirs(args.root, exist_ok=True)
    policy = ServePolicy(
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_ttl_s=args.cache_ttl,
        job_timeout_s=args.job_timeout,
        max_dispatches=args.max_dispatches,
        restart_budget=args.restart_budget,
        drain_timeout_s=args.drain_timeout,
        http=not args.no_http,
        http_port=args.http_port,
    )
    daemon = ReproDaemon(
        args.root, policy,
        fault_profile_obj=_resolve_profile(args.fault_profile, None),
        fault_seed=args.fault_seed,
    )
    print(f"serving on {daemon.socket_path} "
          f"(endpoints: {daemon.endpoints_path})", file=sys.stderr)
    asyncio.run(daemon.run())
    print("drained cleanly", file=sys.stderr)


def _build_submit_spec(args: argparse.Namespace) -> dict:
    spec: dict = {"kind": args.kind, "n_runs": args.runs, "seed": args.seed}
    if args.kind == "experiment":
        spec.update(variant=args.variant, channel=args.channel,
                    predictor=args.predictor)
    return spec


def _cmd_submit(args: argparse.Namespace) -> None:
    import json

    from repro.serve.client import ServeClient

    client = ServeClient(args.root)
    response = client.submit(
        _build_submit_spec(args), policy=args.policy,
        wait=not args.no_wait, timeout_s=args.timeout,
    )
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        if not response.get("ok"):
            raise ReproError(str(response.get("error")))
        return
    if not response.get("ok"):
        hint = response.get("retry_after_s")
        suffix = f" (retry in {hint:.1f}s)" if hint is not None else ""
        raise ReproError(f"{response.get('error')}{suffix}")
    line = f"job {response['job_id']}  state={response['state']}"
    if response.get("cached"):
        stale = " STALE" if response.get("stale") else ""
        line += f"  served-from={response['source']}{stale}"
    print(line)
    verdict = response.get("verdict")
    if verdict:
        parts = [f"classification={verdict['classification']}"]
        if verdict.get("kind") == "experiment":
            parts.append(f"pvalue={verdict['pvalue']:.4f}")
            parts.append(
                "EFFECTIVE" if verdict["effective"] else "not effective"
            )
        elif verdict.get("kind") == "rsa":
            parts.append(f"success_rate={verdict['success_rate']:.3f}")
        print("  " + "  ".join(parts))
    if response.get("state") == "failed":
        raise ReproError(str(response.get("error", "job failed")))


def _cmd_jobs(args: argparse.Namespace) -> None:
    import json

    from repro.serve.client import ServeClient

    client = ServeClient(args.root)
    if args.stats:
        payload = client.stats()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    jobs = client.jobs()
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return
    if not jobs:
        print("no jobs")
        return
    for job in jobs:
        spec = job.get("spec", {})
        label = (
            f"{spec.get('variant')}/{spec.get('channel')}"
            if spec.get("kind") == "experiment" else spec.get("kind", "?")
        )
        extra = ""
        verdict = job.get("verdict")
        if verdict:
            extra = f"  {verdict['classification']}"
            if "pvalue" in verdict:
                extra += f" p={verdict['pvalue']:.4f}"
        if job.get("error"):
            extra += f"  error: {job['error']}"
        print(f"{job['job_id']}  {job['state']:<9} {label}{extra}")


def _cmd_analyze(args: argparse.Namespace) -> None:
    import json

    from repro.analysis.report import (
        program_payload, render_program_analysis,
    )
    from repro.isa.assembler import assemble

    try:
        source = open(args.program).read()
    except OSError as error:
        raise ReproError(f"cannot read {args.program!r}: {error}") from None
    import os
    program = assemble(
        source, name=os.path.splitext(os.path.basename(args.program))[0]
    )
    payload = program_payload(
        program, confidence_threshold=args.confidence
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_program_analysis(payload))
    if not payload["ok"]:
        raise ReproError(
            f"{len(payload['issues'])} lint issue(s) in {args.program}"
        )


def _cmd_lint(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.analysis.codelint import lint_code
    from repro.analysis.preflight import (
        gadget_corpus, lint_paths, lint_program, preflight_cell,
    )
    from repro.analysis.report import (
        render_code_issues, render_lint_reports,
    )
    from repro.core.variants import ALL_VARIANTS

    reports = []
    if not args.paths or args.gadgets:
        for _, program in gadget_corpus():
            report = lint_program(program)
            report.subject = f"gadget:{program.name}"
            reports.append(report)
        for variant in ALL_VARIANTS:
            for channel in variant.supported_channels:
                reports.append(preflight_cell(variant, channel))
        if os.path.isdir("examples/programs"):
            reports.extend(lint_paths(["examples/programs"]))
    if args.paths:
        reports.extend(lint_paths(args.paths))

    code_issues = (
        (lint_code(args.code_path) if args.code_path else lint_code())
        if args.code else []
    )
    if args.json:
        print(json.dumps({
            "subjects": [report.to_payload() for report in reports],
            "code": [
                {"rule": i.rule, "path": i.path, "line": i.line,
                 "message": i.message}
                for i in code_issues
            ],
        }, indent=2, sort_keys=True))
    else:
        if reports:
            print(render_lint_reports(reports))
        if args.code:
            print(render_code_issues(code_issues))
    failed = sum(1 for report in reports if not report.ok)
    if failed or code_issues:
        raise ReproError(
            f"lint failed: {failed} subject(s), "
            f"{len(code_issues)} code issue(s)"
        )


def _cmd_report(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.analysis.report import agreement_rows, render_agreement

    if args.hunt:
        from repro.analysis.report import render_hunt
        from repro.harness.hunt import CERTIFICATE_FILENAME, DYNAMIC_FILENAME

        certificate_path = os.path.join(args.dir, CERTIFICATE_FILENAME)
        if not os.path.isfile(certificate_path):
            raise ReproError(
                f"no {CERTIFICATE_FILENAME} in {args.dir!r}; run "
                "'repro hunt --out <dir>' first"
            )
        with open(certificate_path) as handle:
            certificate = json.load(handle)
        dynamic = None
        dynamic_path = os.path.join(args.dir, DYNAMIC_FILENAME)
        if os.path.isfile(dynamic_path):
            with open(dynamic_path) as handle:
                dynamic = json.load(handle)
        if args.json:
            print(json.dumps(
                {"certificate": certificate, "dynamic": dynamic},
                indent=2, sort_keys=True,
            ))
        else:
            print(render_hunt(certificate, dynamic))
        if not certificate.get("certified"):
            raise ReproError("hunt certificate is not certified")
        if dynamic is not None and not dynamic.get("all_agree"):
            raise ReproError(
                "static/dynamic disagreement in the hunt confirmation"
            )
        return

    artifacts = {}
    for name in ("fig5", "fig8", "table3"):
        path = os.path.join(args.dir, f"{name}.json")
        if os.path.isfile(path):
            with open(path) as handle:
                artifacts[name] = json.load(handle)
    if not artifacts:
        raise ReproError(
            f"no artifact JSON (fig5/fig8/table3) found in {args.dir!r}; "
            "run 'repro all --out <dir>' first"
        )
    rows = agreement_rows(artifacts)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_agreement(rows))
    if any(row["agree"] is False for row in rows):
        raise ReproError("static/dynamic disagreement detected")


def _cmd_speedup(args: argparse.Namespace) -> None:
    from repro.memory.hierarchy import MemorySystem, MemoryConfig
    from repro.memory.memsys import DramConfig
    from repro.vp.lvp import LastValuePredictor
    from repro.vp.nopred import NoPredictor
    from repro.workloads.perf import (
        run_workload, speedup_percent, value_locality_workload,
    )

    def quiet_memory():
        return MemorySystem(MemoryConfig(
            dram=DramConfig(base_latency=200, jitter=0, tail_probability=0.0),
            l2_jitter=0,
        ))

    print("Value-prediction speedup vs. value locality:")
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        workload = value_locality_workload(
            stable_fraction=fraction, dependent_work=40
        )
        baseline = run_workload(workload, NoPredictor(), quiet_memory())
        predicted = run_workload(
            workload, LastValuePredictor(confidence_threshold=4),
            quiet_memory(),
        )
        print(f"  stable={fraction:4.2f}  baseline={baseline:6d}  "
              f"vp={predicted:6d}  speedup={speedup_percent(baseline, predicted):+5.1f}%")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'New Predictor-Based Attacks in Processors' "
            "(DAC 2021): regenerate any table or figure."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I action alphabet").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("table2", help="Table II model enumeration").set_defaults(
        func=_cmd_table2
    )
    sub.add_parser("fig2", help="Figure 2 channel taxonomy").set_defaults(
        func=_cmd_fig2
    )

    attack = sub.add_parser("attack", help="run one attack experiment")
    attack.add_argument("--variant", required=True,
                        help='e.g. "Train + Test"')
    attack.add_argument("--channel", default="timing-window",
                        choices=[c.value for c in ChannelType])
    attack.add_argument("--predictor", default="lvp",
                        choices=["lvp", "vtage", "none"])
    attack.add_argument("--confidence", type=int, default=4)
    attack.add_argument("--runs", type=int, default=100)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--defense", default=None,
                        help='e.g. "R[3]+A[history]+D" or "invisispec"')
    attack.add_argument("--oracle", action="store_true",
                        help="predict only for the trigger PC")
    attack.add_argument("--modify-mode", default="retrain",
                        choices=["retrain", "invalidate"])
    attack.add_argument("--max-retries", type=int, default=None,
                        help="supervise the cell: retries per cell")
    attack.add_argument("--fault-profile", default=None,
                        help="inject faults, e.g. crash, dram-noise, chaos")
    attack.add_argument("--snapshot-trials", action="store_true",
                        help="fork trials from a memoized post-prologue "
                             "machine snapshot instead of re-simulating "
                             "the train phase per trial")
    attack.add_argument("--audit-snapshots", action="store_true",
                        help="with --snapshot-trials: replay every forked "
                             "trial cold and assert byte-identity")
    attack.add_argument(
        "--strict-preflight", action="store_true",
        help="treat any static/dynamic verdict disagreement as a hard "
             "AnalysisSoundnessError instead of a journaled note",
    )
    _add_backend_flag(attack)
    _add_sequential_flags(attack)
    attack.set_defaults(func=_cmd_attack)

    for name, fn, help_text in (
        ("table3", _cmd_table3, "full Table III evaluation"),
        ("fig5", _cmd_fig5, "Figure 5 Train + Test histograms"),
        ("fig8", _cmd_fig8, "Figure 8 Test + Hit histograms"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--runs", type=int, default=100)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.set_defaults(func=fn)

    fig7 = sub.add_parser("fig7", help="Figure 7 RSA exponent leak")
    fig7.add_argument("--seed", type=int, default=7)
    fig7.set_defaults(func=_cmd_fig7)

    sweep = sub.add_parser("sweep", help="R-type window sweep")
    sweep.add_argument("--variant", required=True)
    sweep.add_argument("--windows", default="1,2,3,4,5,6,7,8,9,10")
    sweep.add_argument("--runs", type=int, default=100)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--median-seeds", type=int, default=5,
                       help="seeds per window; the median p-value is used")
    sweep.set_defaults(func=_cmd_sweep)

    analyze = sub.add_parser(
        "analyze", help="statically analyze one attack program (.asm)"
    )
    analyze.add_argument("program", help="path to an .asm source file")
    analyze.add_argument("--confidence", type=int, default=4,
                         help="VPS confidence threshold for the analysis")
    analyze.add_argument("--json", action="store_true",
                         help="emit the full analysis as JSON")
    analyze.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="lint attack programs (and, with --code, the codebase)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help=".asm files or directories; default lints the built-in "
             "gadgets, all sweep cells and examples/programs",
    )
    lint.add_argument(
        "--gadgets", action="store_true",
        help="also lint the built-in corpus when paths are given",
    )
    lint.add_argument("--code", action="store_true",
                      help="run the determinism lint over src/ and "
                           "benchmarks/")
    lint.add_argument(
        "--code-path", action="append", default=None, metavar="PATH",
        help="with --code, lint only these files/directories "
             "(repeatable), e.g. --code-path src/repro/perf",
    )
    lint.add_argument("--json", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    report = sub.add_parser(
        "report", help="static/dynamic agreement for a 'repro all' run"
    )
    report.add_argument("--dir", required=True,
                        help="output directory of a previous 'repro all'")
    report.add_argument(
        "--hunt", action="store_true",
        help="render the hunt certificate (and, if present, the dynamic "
             "confirmation) from <dir> instead of the artifact agreement",
    )
    report.add_argument("--json", action="store_true")
    report.set_defaults(func=_cmd_report)

    hunt = sub.add_parser(
        "hunt",
        help="certify the full 576-combination attack space: static "
             "classification of every Table I combo plus dynamic "
             "confirmation of the survivors",
    )
    hunt.add_argument("--out", required=True,
                      help="output directory for hunt_certificate.json "
                           "(and hunt_dynamic.json)")
    hunt.add_argument("--static", action="store_true",
                      help="static certification only: deterministic, "
                           "byte-identical hunt_certificate.json")
    hunt.add_argument("--runs", type=int, default=60,
                      help="planned trials per hypothesis for dynamic "
                           "confirmation (group-sequential, so most "
                           "cells stop early)")
    hunt.add_argument("--seed", type=int, default=0)
    hunt.add_argument("--confidence", type=int, default=4,
                      help="VPS confidence threshold for both the "
                           "abstract interpreter and the measured cells")
    hunt.add_argument("--predictor", default="lvp",
                      choices=["lvp", "vtage"],
                      help="predictor for the dynamic confirmation")
    hunt.add_argument("--resume", action="store_true",
                      help="resume dynamic confirmation from "
                           "<out>/hunt_checkpoint")
    hunt.add_argument("--json", action="store_true")
    hunt.set_defaults(func=_cmd_hunt)

    sub.add_parser(
        "speedup", help="value-prediction performance benefit"
    ).set_defaults(func=_cmd_speedup)

    everything = sub.add_parser(
        "all", help="regenerate core artifacts into a directory"
    )
    everything.add_argument("--out", required=True,
                            help="existing output directory")
    everything.add_argument("--runs", type=int, default=100)
    everything.add_argument("--seed", type=int, default=0)
    everything.add_argument(
        "--artifacts", default=None,
        help="comma-separated subset of table1,table2,fig5,fig7,fig8,table3",
    )
    everything.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run from <out>/checkpoint",
    )
    everything.add_argument("--max-retries", type=int, default=2,
                            help="per-cell retries before giving up")
    everything.add_argument(
        "--fault-profile", default=None,
        help="inject faults (robustness testing), e.g. crash, chaos",
    )
    everything.add_argument(
        "--workers", type=int, default=None,
        help="supervised-pool width for the experiment cells; results "
             "are byte-identical for any value (default: $REPRO_WORKERS "
             "or 1)",
    )
    everything.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock deadline with --workers > 1: a hung "
             "worker is killed at the deadline and the cell is "
             "redispatched deterministically (default: 600)",
    )
    everything.add_argument(
        "--snapshot-trials", action="store_true",
        help="run attack cells under the snapshot trial protocol "
             "(fork trials from a memoized post-prologue capture)",
    )
    everything.add_argument(
        "--audit-snapshots", action="store_true",
        help="with --snapshot-trials: replay every forked trial cold "
             "and assert byte-identity",
    )
    everything.add_argument(
        "--strict-preflight", action="store_true",
        help="treat any static/dynamic verdict disagreement as a hard "
             "AnalysisSoundnessError instead of a journaled note",
    )
    _add_backend_flag(everything)
    _add_sequential_flags(everything)
    everything.set_defaults(func=_cmd_all)

    perf = sub.add_parser(
        "perf", help="sweep-engine throughput baseline (host-dependent)"
    )
    perf.add_argument("--runs", type=int, default=12,
                      help="trials per hypothesis in the measured sweep")
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument("--workers", type=int, default=1,
                      help="also time a parallel pass at this width")
    perf.add_argument(
        "--artifacts", default="fig5,fig8",
        help="comma-separated sweep subset to measure "
             "(fig5,fig7,fig8,table3)",
    )
    perf.add_argument(
        "--profile", default=None, metavar="OUT.pstats",
        help="dump a cProfile of the serial pass to this file",
    )
    perf.add_argument(
        "--snapshot", default=None, metavar="BENCH.json",
        help="merge results into this benchmark snapshot "
             "(default: benchmarks/BENCH_parallel.json)",
    )
    perf.add_argument("--no-snapshot", action="store_true",
                      help="do not write a benchmark snapshot")
    perf.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    _add_backend_flag(perf)
    perf.set_defaults(func=_cmd_perf)

    serve = sub.add_parser(
        "serve", help="run the fault-tolerant attack-evaluation daemon"
    )
    serve.add_argument("--root", required=True,
                       help="daemon root (socket, endpoints file, state)")
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker-pool width")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max open jobs before backpressure rejects")
    serve.add_argument("--cache-ttl", type=float, default=300.0,
                       metavar="SECONDS",
                       help="memory result-cache TTL")
    serve.add_argument("--job-timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="per-job wall-clock deadline")
    serve.add_argument("--max-dispatches", type=int, default=5,
                       help="dispatch attempts before a job is failed")
    serve.add_argument("--restart-budget", type=int, default=16,
                       help="worker restarts before the daemon sheds load")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="SIGTERM drain bound for in-flight jobs")
    serve.add_argument("--no-http", action="store_true",
                       help="disable the local HTTP mirror")
    serve.add_argument("--http-port", type=int, default=0,
                       help="HTTP mirror port (0: ephemeral, recorded "
                            "in serve.json)")
    serve.add_argument("--fault-profile", default=None,
                       help="chaos testing: inject faults, e.g. "
                            "worker-kill, worker-hang, process-chaos")
    serve.add_argument("--fault-seed", type=int, default=0)
    _add_backend_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one attack-cell job to a running daemon"
    )
    submit.add_argument("--root", required=True, help="daemon root")
    submit.add_argument("--kind", choices=["experiment", "rsa"],
                        default="experiment")
    submit.add_argument("--variant", default="Train + Hit",
                        help="attack variant (experiment jobs)")
    submit.add_argument("--channel", default="timing-window",
                        help="covert channel (experiment jobs)")
    submit.add_argument("--predictor", default="lvp",
                        choices=["lvp", "vtage", "none"])
    submit.add_argument("--runs", type=int, default=100)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--policy", default=None,
                        choices=["compat", "robust"],
                        help="execution policy (default compat)")
    submit.add_argument("--no-wait", action="store_true",
                        help="enqueue and return without the verdict")
    submit.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS", help="wait bound")
    submit.add_argument("--json", action="store_true")
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list a running daemon's jobs (or --stats)"
    )
    jobs.add_argument("--root", required=True, help="daemon root")
    jobs.add_argument("--stats", action="store_true",
                      help="print service counters instead of jobs")
    jobs.add_argument("--json", action="store_true")
    jobs.set_defaults(func=_cmd_jobs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
    except KeyboardInterrupt:
        # The sweep engine cancels outstanding cells and flushes the
        # journal before re-raising, so a --resume picks up cleanly.
        print("interrupted: journal flushed; re-run with --resume "
              "to continue", file=sys.stderr)
        return 130
    return 0
