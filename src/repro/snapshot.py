"""Machine snapshot/fork engine.

Forking simulator state from a checkpoint instead of replaying it is
the standard trick in architectural simulation (gem5's
checkpoint/restore); here it removes the dominant cost left after the
warm-machine reset protocol: every trial of an attack experiment
re-simulates the identical train/modify prologue before its single
measured trigger window.

The engine is a thin composition layer.  Each stateful component —
:class:`~repro.memory.hierarchy.MemorySystem` (caches, TLB, DRAM,
replacement metadata, backing values), :class:`~repro.pipeline.core.Core`
and every :class:`~repro.vp.base.ValuePredictor` — exposes its own
``snapshot() -> opaque state`` / ``restore(state)`` pair built from
structural sharing (tuples + shallow dict copies, never a deepcopy);
:func:`snapshot_machine` bundles the three captures into a
:class:`MachineSnapshot` and :func:`restore_machine` forks a machine
back to that point in ~dictionary-copy time.

Determinism preconditions (audited by ``--audit-snapshots``):

* snapshots are taken at a **run boundary** — the core holds no
  in-flight ``_RunState`` between ``run_concurrent`` calls, so its
  persistent state is four counters;
* the machine's shared regions were registered **before** the capture
  (the address mapper is stateless and deliberately excluded, exactly
  as in the warm-machine reset protocol);
* nothing outside the machine (e.g. a defense object shared across
  trials) feeds state into the captured components.  The R-type
  defense violates this — its wrappers consume one random stream that
  must advance across trials — and is excluded via
  :attr:`repro.defenses.base.Defense.prologue_memo_safe`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.hierarchy import MemorySystem
from repro.pipeline.core import Core

#: Nominal bytes charged per atomic value in a captured state tree;
#: a deterministic stand-in for ``sys.getsizeof`` (which varies across
#: Python builds and would make perf payloads platform-dependent).
_BYTES_PER_SLOT = 8


def approx_state_bytes(state: object) -> int:
    """Deterministic size estimate of a captured state tree.

    Counts atomic slots (ints, floats, strings, Nones, booleans) at
    :data:`_BYTES_PER_SLOT` bytes each, walking tuples, lists, dicts,
    sets and frozensets.  Used for the ``snapshot_bytes_copied`` perf
    counter; the estimate is stable across platforms and Python
    versions, unlike real allocator numbers.
    """
    total = 0
    stack = [state]
    while stack:
        node = stack.pop()
        if isinstance(node, (tuple, list, set, frozenset)):
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.keys())
            stack.extend(node.values())
        else:
            total += _BYTES_PER_SLOT
    return total


@dataclass(frozen=True)
class MachineSnapshot:
    """An immutable capture of a whole simulated machine.

    Attributes:
        memory_state: :meth:`MemorySystem.snapshot` payload.
        core_state: :meth:`Core.snapshot` payload (four counters).
        predictor_state: :meth:`ValuePredictor.snapshot` payload of the
            core's installed predictor chain (wrappers included).
        cycle: The core's cycle counter at capture time — the simulated
            work a fork *skips*, feeding the ``snapshot_cycles_avoided``
            perf counter.
        approx_bytes: Deterministic size estimate of the capture (see
            :func:`approx_state_bytes`).
    """

    memory_state: object
    core_state: object
    predictor_state: object
    cycle: int
    approx_bytes: int


def snapshot_machine(memory: MemorySystem, core: Core) -> MachineSnapshot:
    """Capture machine state at a run boundary.

    Raises:
        NotImplementedError: When the installed predictor (chain) does
            not implement the snapshot protocol; callers treat this as
            "fall back to full replay".
    """
    memory_state = memory.snapshot()
    core_state = core.snapshot()
    predictor_state = core.predictor.snapshot()
    state_bundle = (memory_state, core_state, predictor_state)
    return MachineSnapshot(
        memory_state=memory_state,
        core_state=core_state,
        predictor_state=predictor_state,
        cycle=core.cycle,
        approx_bytes=approx_state_bytes(state_bundle),
    )


def restore_machine(
    memory: MemorySystem, core: Core, snapshot: MachineSnapshot
) -> None:
    """Fork ``memory``/``core`` back to a captured point, in place.

    The machine must have the same structure (config, registered
    shared regions, predictor chain shape) as at capture time; only
    mutable state is written.
    """
    memory.restore(snapshot.memory_state)
    core.restore(snapshot.core_state)
    core.predictor.restore(snapshot.predictor_state)
