"""Persist reproduction artifacts to disk, fault-tolerantly.

``run_all`` regenerates the paper's core artifacts and writes, per
artifact, both a machine-readable JSON record and the human-readable
rendering the benches print.  This gives a reproduction run a durable
trail: what was measured, with which configuration, against which
paper values.

Robustness guarantees:

* every file write is **atomic** (write ``*.tmp`` + ``os.replace``) —
  a crash never leaves a truncated or corrupt record;
* every experiment cell runs under the **resilient executor**
  (:mod:`repro.harness.runner`): per-cell retry with reseeding,
  adaptive re-measurement around the significance threshold, and a
  failure classification (clean / retried / degraded / failed)
  attached to every artifact record;
* completed cells are **journaled** to ``<out_dir>/checkpoint`` so an
  interrupted sweep resumes from the last completed cell
  (``resume=True`` / ``--resume``) with byte-identical records.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro._version import __version__
from repro.core.attack import ExperimentResult
from repro.core.model import verdict_summary
from repro.core.variants import TestHitAttack, TrainTestAttack
from repro.crypto.leak import RsaAttackResult
from repro.errors import HarnessError
from repro.harness.checkpoint import (
    CheckpointStore,
    atomic_write_json,
    atomic_write_text,
)
from repro.harness.faults import FaultInjector, fault_profile
from repro.harness.report import figure7_report, figure_report, table3_report
from repro.harness.runner import (
    AdaptivePolicy,
    ExecutionPolicy,
    ResilientExecutor,
    RetryPolicy,
    SequentialPolicy,
    SupervisedCell,
    figure7_supervised,
    figure_panels_supervised,
    plain_panels,
    plain_results,
    table3_supervised,
)
from repro.harness.tables import render_table1, render_table2

#: Execution record attached to records built outside the executor.
_UNSUPERVISED = {
    "classification": "clean",
    "attempts": [],
    "escalations": 0,
    "final_seed": None,
    "final_n_runs": None,
    "note": "unsupervised run",
}


def experiment_record(
    result: ExperimentResult,
    execution: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A JSON-serialisable record of one experiment cell.

    Every record carries an ``execution`` failure-classification field;
    supervised runs pass the cell's
    :meth:`~repro.harness.runner.SupervisedCell.execution_record`.
    """
    return {
        "variant": result.variant_name,
        "category": result.category.value,
        "channel": result.channel.value,
        "predictor": result.predictor_name,
        "defense": result.defense_name,
        "pvalue": float(result.pvalue),
        "effective": bool(result.attack_succeeds),
        "mapped_mean": float(result.comparison.mapped.mean),
        "unmapped_mean": float(result.comparison.unmapped.mean),
        "mapped_samples": len(result.comparison.mapped),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
        "mean_trial_cycles": float(result.mean_trial_cycles),
        "execution": dict(execution if execution is not None
                          else _UNSUPERVISED),
    }


def rsa_record(
    result: RsaAttackResult,
    execution: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A JSON-serialisable record of the Figure 7 run."""
    return {
        "bits": len(result.true_bits),
        "success_rate": float(result.success_rate),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
        "threshold": float(result.threshold),
        "decoded_bits": list(result.decoded_bits),
        "true_bits": list(result.true_bits),
        "observations": [float(value) for value in result.observations],
        "execution": dict(execution if execution is not None
                          else _UNSUPERVISED),
    }


def cell_record(cell: Optional[SupervisedCell]) -> Optional[Dict[str, object]]:
    """Artifact record for one supervised cell (``None`` for no-cell).

    The record carries the cell's static preflight classification
    (``"static"``) next to the dynamic p-value verdict, so ``repro
    report`` can show static/dynamic agreement per cell.
    """
    if cell is None:
        return None
    if cell.result is None:
        return {"execution": cell.execution_record(),
                "static": cell.preflight}
    record = experiment_record(cell.result, cell.execution_record())
    record["static"] = cell.preflight
    if cell.sequential is not None:
        # Only sequential cells carry the look trajectory; fixed-N
        # records keep their historical shape byte for byte.
        record["sequential"] = cell.sequential
    return record


def save_json(path: str, payload: object) -> None:
    """Write ``payload`` as pretty-printed JSON, atomically.

    Raises:
        HarnessError: If the parent directory does not exist.
    """
    atomic_write_json(path, payload)


def save_text(path: str, text: str) -> None:
    """Write a rendered artifact, atomically."""
    atomic_write_text(path, text)


def run_all(
    out_dir: str,
    n_runs: int = 100,
    seed: int = 0,
    artifacts: Optional[List[str]] = None,
    *,
    resume: bool = False,
    max_retries: int = 2,
    fault_profile_name: Optional[str] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    workers: Optional[int] = None,
    cell_timeout_s: Optional[float] = None,
    snapshot_trials: bool = False,
    audit_snapshots: bool = False,
    sequential: Optional[SequentialPolicy] = None,
    strict_preflight: bool = False,
    backend: Optional[str] = None,
) -> Dict[str, str]:
    """Regenerate and persist the selected artifacts, resumably.

    Args:
        out_dir: Existing directory to write into.
        n_runs: Trials per hypothesis for the attack experiments.
        seed: Base seed.
        artifacts: Subset of {"table1", "table2", "fig5", "fig7",
            "fig8", "table3"}; all of them when omitted.
        resume: Reuse cells journaled under the checkpoint directory
            by a previous (interrupted) run with the same parameters.
        max_retries: Per-cell retries of the default policy.
        fault_profile_name: Optional fault profile to inject (mainly
            for robustness testing of the harness itself).
        policy: Full execution policy; overrides ``max_retries``.
        checkpoint_dir: Journal location; default
            ``<out_dir>/checkpoint``.
        workers: Process-pool width for the experiment cells; ``None``
            reads :data:`repro.harness.parallel.WORKERS_ENV` and falls
            back to 1 (serial).  With more than one worker the cells
            are prefilled into the checkpoint journal by
            :func:`repro.harness.parallel.run_cells` and the artifact
            assembly below then reuses every journaled cell — the
            resume path — so records are byte-identical to a serial
            run for any worker count.
        cell_timeout_s: Per-cell wall-clock deadline for the parallel
            prefill (``None`` uses
            :data:`repro.harness.parallel.DEFAULT_CELL_TIMEOUT_S`).
            A hung worker is killed at the deadline and the cell is
            redispatched deterministically.  Serial runs cannot
            preempt themselves, so the deadline only applies with
            ``workers > 1``.
        snapshot_trials: Run the attack cells under the snapshot trial
            protocol (:attr:`repro.core.attack.AttackConfig.snapshot_trials`).
            Recorded in the checkpoint metadata, so a ``--resume``
            against a run of the other protocol is rejected instead of
            silently mixing seed schedules.
        audit_snapshots: Additionally replay every forked trial cold
            and assert byte-identity (implies ``snapshot_trials``
            validation downstream).
        sequential: Optional group-sequential early-stopping policy
            (:class:`repro.harness.runner.SequentialPolicy`) applied to
            every attack cell; ignored when ``policy`` is given (set
            :attr:`~repro.harness.runner.ExecutionPolicy.sequential`
            there instead).  Recorded in the checkpoint metadata, so a
            ``--resume`` across modes is rejected.
        strict_preflight: Escalate any static/dynamic verdict
            disagreement to a hard
            :class:`~repro.errors.AnalysisSoundnessError` instead of a
            report-time warning; ignored when ``policy`` is given (set
            :attr:`~repro.harness.runner.ExecutionPolicy.strict_preflight`
            there instead).  Not recorded in checkpoint metadata: it
            changes no journaled bytes, only whether a disagreement
            aborts the run.
        backend: Simulation backend for every attack cell's trial loop
            (:mod:`repro.sim`); ignored when ``policy`` is given (set
            :attr:`~repro.harness.runner.ExecutionPolicy.backend` there
            instead).  Deliberately *not* recorded in checkpoint
            metadata: backends are byte-identical by contract, so
            resuming a scalar checkpoint under ``batched`` (or vice
            versa) is sound and replays the same records.

    Returns:
        Mapping from artifact name to the path of its rendering.

    Raises:
        HarnessError: For unknown artifact names, a missing out_dir,
            or a resume against an incompatible checkpoint.
    """
    if not os.path.isdir(out_dir):
        raise HarnessError(f"output directory {out_dir!r} does not exist")
    known = ("table1", "table2", "fig5", "fig7", "fig8", "table3")
    chosen = list(artifacts) if artifacts is not None else list(known)
    for name in chosen:
        if name not in known:
            raise HarnessError(f"unknown artifact {name!r}; choose from {known}")

    written: Dict[str, str] = {}
    meta: Dict[str, object] = {
        "version": __version__, "n_runs": n_runs, "seed": seed,
    }
    if snapshot_trials:
        # Only recorded when on: legacy-protocol checkpoints keep their
        # historical metadata shape, and a resume across protocols
        # fails the metadata compatibility check.
        meta["snapshot_trials"] = True
    seq_policy = policy.sequential if policy is not None else sequential
    if seq_policy is not None:
        # Same only-when-on rule as snapshot_trials: fixed-N checkpoint
        # metadata keeps its historical shape, and a resume across
        # fixed-N/sequential modes (or differing look schedules) is
        # rejected by the compatibility check.
        meta["sequential"] = seq_policy.to_meta()
    supervised_chosen = [
        name for name in chosen if name in ("fig5", "fig7", "fig8", "table3")
    ]
    executor: Optional[ResilientExecutor] = None
    processed: List[SupervisedCell] = []
    if supervised_chosen:
        store = CheckpointStore.open(
            checkpoint_dir or os.path.join(out_dir, "checkpoint"),
            meta, resume=resume,
        )
        injector = (
            FaultInjector(fault_profile(fault_profile_name), seed=seed)
            if fault_profile_name else None
        )
        effective_policy = policy or ExecutionPolicy(
            retry=RetryPolicy(max_retries=max_retries),
            adaptive=AdaptivePolicy(),
            sequential=sequential,
            strict_preflight=strict_preflight,
            backend=backend,
        )
        executor = ResilientExecutor(
            effective_policy,
            injector=injector,
            store=store,
        )
        from repro.harness.parallel import (
            DEFAULT_CELL_TIMEOUT_S,
            default_workers,
            run_cells,
            sweep_specs,
        )

        effective_workers = (
            workers if workers is not None else default_workers()
        )
        if effective_workers < 1:
            raise HarnessError(
                f"workers must be >= 1, got {effective_workers}"
            )
        if effective_workers > 1:
            # Parallel prefill: shard the supervised cells across a
            # process pool, journaling through the store (single
            # writer).  The assembly code below then finds every cell
            # cached and reuses it byte-for-byte.
            run_cells(
                sweep_specs(
                    supervised_chosen, n_runs=n_runs, seed=seed,
                    snapshot_trials=snapshot_trials,
                    audit_snapshots=audit_snapshots,
                ),
                store,
                effective_policy,
                workers=effective_workers,
                fault_profile_name=fault_profile_name,
                fault_seed=seed,
                cell_timeout_s=(
                    cell_timeout_s if cell_timeout_s is not None
                    else DEFAULT_CELL_TIMEOUT_S
                ),
            )

    if "table1" in chosen:
        path = os.path.join(out_dir, "table1.txt")
        save_text(path, render_table1())
        written["table1"] = path
    if "table2" in chosen:
        path = os.path.join(out_dir, "table2.txt")
        save_text(path, render_table2())
        save_json(
            os.path.join(out_dir, "table2.json"),
            {**meta, "verdicts": {
                verdict.value: count
                for verdict, count in verdict_summary().items()
            }},
        )
        written["table2"] = path
    if "fig5" in chosen:
        panels = figure_panels_supervised(
            executor, TrainTestAttack(), "fig5", n_runs=n_runs, seed=seed,
            snapshot_trials=snapshot_trials, audit_snapshots=audit_snapshots,
        )
        processed.extend(cell for _, cell in panels)
        path = os.path.join(out_dir, "fig5.txt")
        save_text(path, figure_report(
            "Figure 5: Train + Test attacks", plain_panels(panels),
            mapped_label="mapped index", unmapped_label="unmapped index",
        ))
        save_json(
            os.path.join(out_dir, "fig5.json"),
            {**meta, "panels": {
                title: cell_record(cell) for title, cell in panels
            }},
        )
        written["fig5"] = path
    if "fig8" in chosen:
        panels = figure_panels_supervised(
            executor, TestHitAttack(), "fig8", n_runs=n_runs, seed=seed,
            snapshot_trials=snapshot_trials, audit_snapshots=audit_snapshots,
        )
        processed.extend(cell for _, cell in panels)
        path = os.path.join(out_dir, "fig8.txt")
        save_text(path, figure_report(
            "Figure 8: Test + Hit attacks", plain_panels(panels),
            mapped_label="mapped data", unmapped_label="unmapped data",
        ))
        save_json(
            os.path.join(out_dir, "fig8.json"),
            {**meta, "panels": {
                title: cell_record(cell) for title, cell in panels
            }},
        )
        written["fig8"] = path
    if "fig7" in chosen:
        cell = figure7_supervised(executor)
        processed.append(cell)
        path = os.path.join(out_dir, "fig7.txt")
        if cell.result is not None:
            save_text(path, figure7_report(cell.result))
            save_json(
                os.path.join(out_dir, "fig7.json"),
                {**meta, **rsa_record(cell.result, cell.execution_record())},
            )
        else:
            save_text(path, "Figure 7: cell failed permanently")
            save_json(
                os.path.join(out_dir, "fig7.json"),
                {**meta, "execution": cell.execution_record()},
            )
        written["fig7"] = path
    if "table3" in chosen:
        supervised = table3_supervised(
            executor, n_runs=n_runs, seed=seed,
            snapshot_trials=snapshot_trials, audit_snapshots=audit_snapshots,
        )
        processed.extend(
            cell for cells in supervised.values()
            for cell in cells.values() if cell is not None
        )
        path = os.path.join(out_dir, "table3.txt")
        save_text(path, table3_report(plain_results(supervised)))
        save_json(
            os.path.join(out_dir, "table3.json"),
            {**meta, "cells": {
                category.value: {
                    key: cell_record(cell) for key, cell in cells.items()
                }
                for category, cells in supervised.items()
            }},
        )
        written["table3"] = path

    if supervised_chosen:
        summary: Dict[str, int] = {}
        for cell in processed:
            label = cell.classification.value
            summary[label] = summary.get(label, 0) + 1
        payload: Dict[str, object] = {
            **meta, "cells": len(processed), "classifications": summary,
        }
        seq_records = [
            cell.sequential for cell in processed
            if cell.sequential is not None
        ]
        if seq_records:
            # Sweep-level early-stopping yield (only present when the
            # sequential engine ran, so fixed-N summaries keep their
            # historical shape).
            planned = sum(2 * int(s["planned_n"]) for s in seq_records)
            effective = sum(2 * int(s["effective_n"]) for s in seq_records)
            payload["sequential_summary"] = {
                "cells": len(seq_records),
                "early_stops": sum(
                    1 for s in seq_records if s["stopped_early"]
                ),
                "planned_trials": planned,
                "effective_trials": effective,
                "trials_avoided": sum(
                    int(s["trials_avoided"]) for s in seq_records
                ),
            }
        save_json(os.path.join(out_dir, "run_summary.json"), payload)
    return written
