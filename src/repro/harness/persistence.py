"""Persist reproduction artifacts to disk.

``run_all`` regenerates the paper's core artifacts and writes, per
artifact, both a machine-readable JSON record and the human-readable
rendering the benches print.  This gives a reproduction run a durable
trail: what was measured, with which configuration, against which
paper values.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro._version import __version__
from repro.core.attack import ExperimentResult
from repro.core.model import verdict_summary
from repro.crypto.leak import RsaAttackResult
from repro.errors import HarnessError
from repro.harness.experiment import (
    figure5_panels,
    figure7_result,
    figure8_panels,
    table3_results,
)
from repro.harness.report import figure7_report, figure_report, table3_report
from repro.harness.tables import render_table1, render_table2


def experiment_record(result: ExperimentResult) -> Dict[str, object]:
    """A JSON-serialisable record of one experiment cell."""
    return {
        "variant": result.variant_name,
        "category": result.category.value,
        "channel": result.channel.value,
        "predictor": result.predictor_name,
        "defense": result.defense_name,
        "pvalue": float(result.pvalue),
        "effective": bool(result.attack_succeeds),
        "mapped_mean": float(result.comparison.mapped.mean),
        "unmapped_mean": float(result.comparison.unmapped.mean),
        "mapped_samples": len(result.comparison.mapped),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
        "mean_trial_cycles": float(result.mean_trial_cycles),
    }


def rsa_record(result: RsaAttackResult) -> Dict[str, object]:
    """A JSON-serialisable record of the Figure 7 run."""
    return {
        "bits": len(result.true_bits),
        "success_rate": float(result.success_rate),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
        "threshold": float(result.threshold),
        "decoded_bits": list(result.decoded_bits),
        "true_bits": list(result.true_bits),
        "observations": [float(value) for value in result.observations],
    }


def save_json(path: str, payload: object) -> None:
    """Write ``payload`` as pretty-printed JSON.

    Raises:
        HarnessError: If the parent directory does not exist.
    """
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        raise HarnessError(f"output directory {directory!r} does not exist")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_text(path: str, text: str) -> None:
    """Write a rendered artifact."""
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        raise HarnessError(f"output directory {directory!r} does not exist")
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")


def run_all(
    out_dir: str,
    n_runs: int = 100,
    seed: int = 0,
    artifacts: Optional[List[str]] = None,
) -> Dict[str, str]:
    """Regenerate and persist the selected artifacts.

    Args:
        out_dir: Existing directory to write into.
        n_runs: Trials per hypothesis for the attack experiments.
        seed: Base seed.
        artifacts: Subset of {"table1", "table2", "fig5", "fig7",
            "fig8", "table3"}; all of them when omitted.

    Returns:
        Mapping from artifact name to the path of its rendering.

    Raises:
        HarnessError: For unknown artifact names or a missing out_dir.
    """
    if not os.path.isdir(out_dir):
        raise HarnessError(f"output directory {out_dir!r} does not exist")
    known = ("table1", "table2", "fig5", "fig7", "fig8", "table3")
    chosen = list(artifacts) if artifacts is not None else list(known)
    for name in chosen:
        if name not in known:
            raise HarnessError(f"unknown artifact {name!r}; choose from {known}")

    written: Dict[str, str] = {}
    meta = {"version": __version__, "n_runs": n_runs, "seed": seed}

    if "table1" in chosen:
        path = os.path.join(out_dir, "table1.txt")
        save_text(path, render_table1())
        written["table1"] = path
    if "table2" in chosen:
        path = os.path.join(out_dir, "table2.txt")
        save_text(path, render_table2())
        save_json(
            os.path.join(out_dir, "table2.json"),
            {**meta, "verdicts": {
                verdict.value: count
                for verdict, count in verdict_summary().items()
            }},
        )
        written["table2"] = path
    if "fig5" in chosen:
        panels = figure5_panels(n_runs=n_runs, seed=seed)
        path = os.path.join(out_dir, "fig5.txt")
        save_text(path, figure_report(
            "Figure 5: Train + Test attacks", panels,
            mapped_label="mapped index", unmapped_label="unmapped index",
        ))
        save_json(
            os.path.join(out_dir, "fig5.json"),
            {**meta, "panels": {
                title: experiment_record(result)
                for title, result in panels
            }},
        )
        written["fig5"] = path
    if "fig8" in chosen:
        panels = figure8_panels(n_runs=n_runs, seed=seed)
        path = os.path.join(out_dir, "fig8.txt")
        save_text(path, figure_report(
            "Figure 8: Test + Hit attacks", panels,
            mapped_label="mapped data", unmapped_label="unmapped data",
        ))
        save_json(
            os.path.join(out_dir, "fig8.json"),
            {**meta, "panels": {
                title: experiment_record(result)
                for title, result in panels
            }},
        )
        written["fig8"] = path
    if "fig7" in chosen:
        result = figure7_result()
        path = os.path.join(out_dir, "fig7.txt")
        save_text(path, figure7_report(result))
        save_json(os.path.join(out_dir, "fig7.json"),
                  {**meta, **rsa_record(result)})
        written["fig7"] = path
    if "table3" in chosen:
        results = table3_results(n_runs=n_runs, seed=seed)
        path = os.path.join(out_dir, "table3.txt")
        save_text(path, table3_report(results))
        save_json(
            os.path.join(out_dir, "table3.json"),
            {**meta, "cells": {
                category.value: {
                    cell: (experiment_record(result)
                           if result is not None else None)
                    for cell, result in cells.items()
                }
                for category, cells in results.items()
            }},
        )
        written["table3"] = path
    return written
