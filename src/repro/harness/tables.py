"""ASCII renderers for the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.actions import MODIFY_ACTIONS, TRAIN_ACTIONS
from repro.core.attack import ExperimentResult
from repro.core.model import (
    AttackCategory,
    Classification,
    effective_attacks,
    verdict_summary,
)
from repro.stats.ttest import ALPHA


def render_table1() -> str:
    """Table I: the action alphabet of the three state-changing steps."""
    descriptions = {
        "S^KD": "Sender accesses data it knows.",
        "S^KI": "Sender accesses an index it knows.",
        "R^KD": "Receiver accesses data it knows.",
        "R^KI": "Receiver accesses an index it knows.",
        "S^SD'": "Sender accesses secret data the receiver tries to learn.",
        "S^SD''": "Sender accesses a possibly-different secret datum.",
        "S^SI'": "Sender accesses a secret-dependent index.",
        "S^SI''": "Sender accesses a possibly-different secret index.",
        "—": "This step is not used (modify step only).",
    }
    lines = [
        "Table I: possible actions for each step of value predictor attacks",
        f"{'Action':8s} Description",
        "-" * 70,
    ]
    for action in TRAIN_ACTIONS:
        lines.append(f"{action.symbol:8s} {descriptions[action.symbol]}")
    lines.append(f"{'—':8s} {descriptions['—']}")
    lines.append("-" * 70)
    lines.append(
        f"train: {len(TRAIN_ACTIONS)} actions x modify: "
        f"{len(MODIFY_ACTIONS)} x trigger: {len(TRAIN_ACTIONS)} = "
        f"{len(TRAIN_ACTIONS) * len(MODIFY_ACTIONS) * len(TRAIN_ACTIONS)} "
        "combinations"
    )
    return "\n".join(lines)


def render_table2(
    classifications: Optional[Sequence[Classification]] = None,
) -> str:
    """Table II: the 12 effective attack variants from the model."""
    attacks = (
        list(classifications)
        if classifications is not None
        else effective_attacks()
    )
    summary = verdict_summary()
    lines = [
        "Table II: value predictor attacks surviving the model's rules",
        f"{'Step 1 (Train)':16s} {'Step 2 (Modify)':16s} "
        f"{'Step 3 (Trigger)':16s} Attack Category",
        "-" * 72,
    ]
    for classification in attacks:
        combo = classification.combo
        lines.append(
            f"{combo.train.symbol:16s} {combo.modify.symbol:16s} "
            f"{combo.trigger.symbol:16s} {classification.category.value}"
        )
    lines.append("-" * 72)
    lines.append(
        "combinations: "
        + ", ".join(f"{v.value}={n}" for v, n in summary.items())
    )
    return "\n".join(lines)


def _fmt_cell(pvalue: Optional[float], rate: Optional[float]) -> str:
    """One Table III cell: p-value, effectiveness marker, and rate."""
    if pvalue is None:
        return f"{'—':>21s}"
    marker = "*" if pvalue < ALPHA else " "
    if rate is not None and pvalue < ALPHA:
        return f"{pvalue:7.4f}{marker} ({rate:5.2f}Kbps)"
    return f"{pvalue:7.4f}{marker}" + " " * 13


def render_table3(
    results: Dict[AttackCategory, Dict[str, Optional[ExperimentResult]]],
) -> str:
    """Table III: p-values and transmission rates for every category.

    Args:
        results: ``{category: {cell: result}}`` where ``cell`` is one
            of ``tw_novp``, ``tw_vp``, ``pc_novp``, ``pc_vp`` and a
            missing/None entry renders as "—" (attack does not support
            the channel, per Table II).
    """
    header = (
        f"{'Attack Category':16s} | {'TW no-VP':>21s} | {'TW VP':>21s} | "
        f"{'Pers. no-VP':>21s} | {'Pers. VP':>21s}"
    )
    lines = [
        "Table III: attack evaluation ('*' marks pvalue < 0.05 = effective)",
        header,
        "-" * len(header),
    ]
    for category in AttackCategory:
        if category not in results:
            continue
        cells = results[category]

        def cell_text(key: str) -> str:
            result = cells.get(key)
            if result is None:
                return f"{'—':>21s}"
            return _fmt_cell(result.pvalue, result.transmission_rate_kbps)

        lines.append(
            f"{category.value:16s} | {cell_text('tw_novp')} | "
            f"{cell_text('tw_vp')} | {cell_text('pc_novp')} | "
            f"{cell_text('pc_vp')}"
        )
    return "\n".join(lines)


def render_defense_sweep(
    attack_name: str, rows: List, secure_at: Optional[int]
) -> str:
    """A Section VI-B window sweep: (window, pvalue) rows."""
    lines = [
        f"R-type window sweep for {attack_name} "
        "(secure when pvalue > 0.05)",
        f"{'window S':>9s} {'pvalue':>9s}  verdict",
        "-" * 34,
    ]
    for window, pvalue in rows:
        verdict = "secure" if pvalue >= ALPHA else "attack works"
        lines.append(f"{window:9d} {pvalue:9.4f}  {verdict}")
    lines.append("-" * 34)
    if secure_at is not None:
        lines.append(f"minimal secure window size: {secure_at}")
    else:
        lines.append("no secure window found in the sweep range")
    return "\n".join(lines)


def render_defense_matrix(rows: List[Dict[str, object]]) -> str:
    """Defense-vs-attack effectiveness matrix (Section VI-B).

    Args:
        rows: dicts with keys ``attack``, ``channel``, ``defense``,
            ``pvalue``.
    """
    lines = [
        "Defense evaluation ('blocked' = pvalue >= 0.05)",
        f"{'Attack':16s} {'Channel':14s} {'Defense':22s} "
        f"{'pvalue':>8s}  outcome",
        "-" * 76,
    ]
    for row in rows:
        pvalue = float(row["pvalue"])
        outcome = "blocked" if pvalue >= ALPHA else "ATTACK WORKS"
        lines.append(
            f"{str(row['attack']):16s} {str(row['channel']):14s} "
            f"{str(row['defense']):22s} {pvalue:8.4f}  {outcome}"
        )
    return "\n".join(lines)
