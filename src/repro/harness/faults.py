"""Deterministic fault injection for the resilient execution layer.

Robustness has to be testable to be trusted: this module provides
seeded injectors that perturb the measurement pipeline the way a real
evaluation machine would — noisier DRAM latency distributions, lost or
duplicated timing samples, corrupted Value Prediction Table entries —
plus simulated executor crashes that exercise the retry and
checkpoint-resume machinery end to end.

Every fault draw is derived from ``(profile, base seed, cell id,
attempt)`` with a stable hash, so a faulty run is exactly
reproducible: the same profile and seed perturb the same cells in the
same way, on every machine, every time.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, InjectedCrashError
from repro.memory.memsys import DramConfig
from repro.vp.base import AccessKey, Prediction, ValuePredictor

_RATE_FIELDS = (
    "sample_drop_rate", "sample_dup_rate", "vp_corrupt_rate", "crash_rate",
    "worker_kill_rate", "worker_hang_rate", "worker_slow_rate",
)


@dataclass(frozen=True)
class FaultProfile:
    """One named set of fault-injection parameters.

    Attributes:
        name: Registry key, also used in the fault RNG derivation.
        dram_jitter_scale: Multiplier on ``DramConfig.jitter``.
        dram_tail_boost: Added to ``DramConfig.tail_probability``
            (clamped to 1.0).
        dram_tail_extra_scale: Multiplier on ``DramConfig.tail_extra``.
        sample_drop_rate: Probability of dropping each timing sample.
        sample_dup_rate: Probability of duplicating each timing sample.
        vp_corrupt_rate: Probability, per predictor training event, of
            corrupting the value installed in the VP table entry.
        crash_rate: Probability of an injected executor crash per cell
            attempt.
        crash_cells: Cell ids that crash deterministically on their
            first attempt (retries succeed) — the knob the resume
            tests are built on.
        worker_kill_rate: Probability, per (task, dispatch), that the
            worker *process* running the task dies abruptly
            (``os._exit``, simulating an OOM-kill / segfault) before
            producing a result.  Process-level faults never perturb
            the simulation itself: a redispatch of the same task is
            byte-identical to an unfaulted run.
        worker_hang_rate: Probability, per (task, dispatch), that the
            worker process freezes completely — heartbeats stop and
            the task never completes — until the supervisor kills it.
        worker_slow_rate: Probability, per (task, dispatch), of an
            injected scheduling delay of ``worker_slow_delay_s``
            before the task runs (still completes normally).
        worker_slow_delay_s: Delay injected by ``worker-slow`` draws.
        kill_cells: Task ids whose first dispatch is killed
            deterministically (redispatches succeed).
        hang_cells: Task ids whose first dispatch hangs
            deterministically (redispatches succeed).
    """

    name: str
    dram_jitter_scale: float = 1.0
    dram_tail_boost: float = 0.0
    dram_tail_extra_scale: float = 1.0
    sample_drop_rate: float = 0.0
    sample_dup_rate: float = 0.0
    vp_corrupt_rate: float = 0.0
    crash_rate: float = 0.0
    crash_cells: Tuple[str, ...] = ()
    worker_kill_rate: float = 0.0
    worker_hang_rate: float = 0.0
    worker_slow_rate: float = 0.0
    worker_slow_delay_s: float = 0.05
    kill_cells: Tuple[str, ...] = ()
    hang_cells: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for field_name in _RATE_FIELDS:
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{field_name} must be in [0, 1], got {value}"
                )
        for field_name in ("dram_jitter_scale", "dram_tail_extra_scale"):
            if getattr(self, field_name) < 0.0:
                raise FaultInjectionError(f"{field_name} must be >= 0")
        if self.dram_tail_boost < 0.0:
            raise FaultInjectionError("dram_tail_boost must be >= 0")
        if self.worker_slow_delay_s < 0.0:
            raise FaultInjectionError("worker_slow_delay_s must be >= 0")

    @property
    def perturbs_dram(self) -> bool:
        """True when the profile changes the DRAM latency model."""
        return (
            self.dram_jitter_scale != 1.0
            or self.dram_tail_boost != 0.0
            or self.dram_tail_extra_scale != 1.0
        )

    @property
    def perturbs_samples(self) -> bool:
        """True when the profile drops or duplicates timing samples."""
        return self.sample_drop_rate > 0.0 or self.sample_dup_rate > 0.0

    @property
    def perturbs_process(self) -> bool:
        """True when the profile injects process-level worker faults."""
        return (
            self.worker_kill_rate > 0.0
            or self.worker_hang_rate > 0.0
            or self.worker_slow_rate > 0.0
            or bool(self.kill_cells)
            or bool(self.hang_cells)
        )


#: Built-in profiles, from benign to chaotic.
PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(name="none"),
        FaultProfile(
            name="dram-noise",
            dram_jitter_scale=2.5,
            dram_tail_boost=0.08,
            dram_tail_extra_scale=2.0,
        ),
        FaultProfile(name="sample-loss", sample_drop_rate=0.15,
                     sample_dup_rate=0.05),
        FaultProfile(name="vp-corruption", vp_corrupt_rate=0.02),
        FaultProfile(name="crash", crash_rate=0.25),
        FaultProfile(
            name="chaos",
            dram_jitter_scale=1.8,
            dram_tail_boost=0.05,
            sample_drop_rate=0.08,
            sample_dup_rate=0.04,
            vp_corrupt_rate=0.01,
            crash_rate=0.15,
        ),
        # Process-level profiles: they perturb worker *processes*, never
        # the simulation, so recovered results stay byte-identical to a
        # clean run — the invariant the chaos harness asserts.
        FaultProfile(name="worker-kill", worker_kill_rate=0.4),
        FaultProfile(name="worker-hang", worker_hang_rate=0.3),
        FaultProfile(
            name="worker-slow", worker_slow_rate=0.5,
            worker_slow_delay_s=0.05,
        ),
        FaultProfile(
            name="process-chaos",
            worker_kill_rate=0.25,
            worker_hang_rate=0.15,
            worker_slow_rate=0.2,
            worker_slow_delay_s=0.05,
        ),
    )
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a built-in profile by name.

    Raises:
        FaultInjectionError: For unknown profile names.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault profile {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None


class CorruptingPredictor(ValuePredictor):
    """Wraps a predictor, corrupting trained values at a seeded rate.

    Models bit-flips / cross-context interference in the VP table
    (predictor state is fragile under squash storms — cf. the
    value-recomputation literature): with probability ``rate`` each
    training event installs a perturbed value instead of the actual
    one, so later predictions from that entry verify incorrectly.
    """

    def __init__(self, inner: ValuePredictor, rate: float,
                 rng: random.Random) -> None:
        super().__init__()
        self.inner = inner
        self.rate = rate
        self._rng = rng
        self.corruptions = 0
        self.name = f"{inner.name}+corrupt"

    def predict(self, key: AccessKey) -> Optional[Prediction]:
        return self.inner.predict(key)

    def train(self, key: AccessKey, actual_value: int,
              prediction: Optional[Prediction] = None) -> None:
        if self.rate and self._rng.random() < self.rate:
            actual_value ^= 1 << self._rng.randrange(64)
            self.corruptions += 1
        self.inner.train(key, actual_value, prediction)

    def reset(self) -> None:
        self.inner.reset()


class FaultInjector:
    """Applies one :class:`FaultProfile` deterministically.

    All hooks take the ``(cell_id, attempt)`` coordinates of the work
    being perturbed; together with the injector's base seed they fully
    determine every fault drawn, independent of call order.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def rng(self, *scope: object) -> random.Random:
        """A generator keyed to ``(profile, seed, *scope)``."""
        material = "|".join(
            [self.profile.name, str(self.seed)] + [str(s) for s in scope]
        )
        digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    # -- executor crashes ----------------------------------------------
    def maybe_crash(self, cell_id: str, attempt: int) -> None:
        """Raise :class:`InjectedCrashError` when the profile says so."""
        if cell_id in self.profile.crash_cells and attempt == 0:
            raise InjectedCrashError(
                f"injected crash in cell {cell_id!r} (attempt {attempt})"
            )
        if self.profile.crash_rate:
            if self.rng("crash", cell_id, attempt).random() < self.profile.crash_rate:
                raise InjectedCrashError(
                    f"injected crash in cell {cell_id!r} (attempt {attempt})"
                )

    # -- process-level worker faults -----------------------------------
    def process_fault(self, task_id: str, dispatch: int) -> Optional[str]:
        """The worker-process fault for one ``(task, dispatch)``, if any.

        Returns ``"kill"``, ``"hang"``, ``"slow"`` or ``None``.  The
        draw is keyed by ``(profile, seed, task_id, dispatch)`` so a
        redispatched task sees a fresh, order-independent draw — the
        supervisor's retry path is deterministic and testable.  Unlike
        :meth:`maybe_crash` (which aborts an *attempt* inside the cell,
        changing its retry seed), a process fault is invisible to the
        simulation: the redispatch reruns the identical task.
        """
        if not self.profile.perturbs_process:
            return None
        if dispatch == 0:
            if task_id in self.profile.kill_cells:
                return "kill"
            if task_id in self.profile.hang_cells:
                return "hang"
        rng = self.rng("process", task_id, dispatch)
        if self.profile.worker_kill_rate and (
            rng.random() < self.profile.worker_kill_rate
        ):
            return "kill"
        if self.profile.worker_hang_rate and (
            rng.random() < self.profile.worker_hang_rate
        ):
            return "hang"
        if self.profile.worker_slow_rate and (
            rng.random() < self.profile.worker_slow_rate
        ):
            return "slow"
        return None

    # -- DRAM latency perturbation -------------------------------------
    def perturb_dram(self, config: DramConfig) -> DramConfig:
        """Widen the DRAM latency distribution per the profile."""
        if not self.profile.perturbs_dram:
            return config
        return replace(
            config,
            jitter=int(round(config.jitter * self.profile.dram_jitter_scale)),
            tail_probability=min(
                1.0, config.tail_probability + self.profile.dram_tail_boost
            ),
            tail_extra=int(round(
                config.tail_extra * self.profile.dram_tail_extra_scale
            )),
        )

    # -- timing-sample corruption --------------------------------------
    def corrupt_samples(
        self, samples: Sequence[float], cell_id: str, attempt: int,
        stream: str,
    ) -> List[float]:
        """Drop and/or duplicate timing samples, deterministically.

        Models a receiver losing measurements (pre-empted between
        ``rdtsc`` pairs) or double-reading them.  May return fewer
        samples than given — possibly too few for the t-test, which is
        exactly the degraded path the executor must survive.
        """
        if not self.profile.perturbs_samples:
            return list(samples)
        rng = self.rng("samples", cell_id, attempt, stream)
        out: List[float] = []
        for value in samples:
            if self.profile.sample_drop_rate and (
                rng.random() < self.profile.sample_drop_rate
            ):
                continue
            out.append(value)
            if self.profile.sample_dup_rate and (
                rng.random() < self.profile.sample_dup_rate
            ):
                out.append(value)
        return out

    # -- VP table corruption -------------------------------------------
    def wrap_predictor(self, predictor: ValuePredictor, cell_id: str,
                       attempt: int) -> ValuePredictor:
        """Wrap ``predictor`` so trained entries corrupt at the rate."""
        if not self.profile.vp_corrupt_rate:
            return predictor
        return CorruptingPredictor(
            predictor,
            self.profile.vp_corrupt_rate,
            self.rng("vp", cell_id, attempt),
        )


def no_faults() -> FaultInjector:
    """An injector that never perturbs anything."""
    return FaultInjector(PROFILES["none"], seed=0)
