"""Experiment harness: drivers and renderers for every table/figure."""

from repro.harness.experiment import (
    FIGURE7_EXPONENT,
    defense_matrix,
    figure5_panels,
    figure7_result,
    figure8_panels,
    predictor_comparison,
    run_cell,
    table3_results,
    window_sweep,
)
from repro.harness.persistence import (
    experiment_record,
    rsa_record,
    run_all,
    save_json,
    save_text,
)
from repro.harness.figures import (
    render_figure,
    render_histogram_panel,
    render_iteration_scatter,
)
from repro.harness.report import figure7_report, figure_report, table3_report
from repro.harness.tables import (
    render_defense_matrix,
    render_defense_sweep,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "FIGURE7_EXPONENT",
    "defense_matrix",
    "experiment_record",
    "figure5_panels",
    "figure7_report",
    "figure7_result",
    "figure8_panels",
    "figure_report",
    "predictor_comparison",
    "render_defense_matrix",
    "render_defense_sweep",
    "render_figure",
    "render_histogram_panel",
    "render_iteration_scatter",
    "render_table1",
    "render_table2",
    "render_table3",
    "rsa_record",
    "run_all",
    "save_json",
    "save_text",
    "run_cell",
    "table3_results",
    "window_sweep",
]
