"""Experiment harness: drivers and renderers for every table/figure.

The harness runs every experiment cell through the resilient execution
layer (:mod:`repro.harness.runner`): supervised retries, cycle-budget
watchdogs, adaptive re-measurement, deterministic fault injection
(:mod:`repro.harness.faults`) and atomic checkpoint/resume
(:mod:`repro.harness.checkpoint`).
"""

from repro.harness.checkpoint import (
    CheckpointStore,
    atomic_write_json,
    atomic_write_text,
    deserialize_result,
    serialize_result,
)
from repro.harness.experiment import (
    FIGURE7_EXPONENT,
    defense_matrix,
    figure5_panels,
    figure7_result,
    figure8_panels,
    predictor_comparison,
    run_cell,
    table3_results,
    window_sweep,
)
from repro.harness.faults import (
    PROFILES,
    FaultInjector,
    FaultProfile,
    fault_profile,
)
from repro.harness.persistence import (
    cell_record,
    experiment_record,
    rsa_record,
    run_all,
    save_json,
    save_text,
)
from repro.harness.figures import (
    render_figure,
    render_histogram_panel,
    render_iteration_scatter,
)
from repro.harness.report import figure7_report, figure_report, table3_report
from repro.harness.runner import (
    AdaptivePolicy,
    CellClassification,
    ExecutionPolicy,
    ResilientExecutor,
    RetryPolicy,
    SupervisedCell,
    figure7_supervised,
    figure_panels_supervised,
    plain_panels,
    plain_results,
    table3_supervised,
)
from repro.harness.tables import (
    render_defense_matrix,
    render_defense_sweep,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "AdaptivePolicy",
    "CellClassification",
    "CheckpointStore",
    "ExecutionPolicy",
    "FIGURE7_EXPONENT",
    "FaultInjector",
    "FaultProfile",
    "PROFILES",
    "ResilientExecutor",
    "RetryPolicy",
    "SupervisedCell",
    "atomic_write_json",
    "atomic_write_text",
    "cell_record",
    "defense_matrix",
    "deserialize_result",
    "experiment_record",
    "fault_profile",
    "figure5_panels",
    "figure7_report",
    "figure7_result",
    "figure7_supervised",
    "figure8_panels",
    "figure_panels_supervised",
    "figure_report",
    "plain_panels",
    "plain_results",
    "predictor_comparison",
    "render_defense_matrix",
    "render_defense_sweep",
    "render_figure",
    "render_histogram_panel",
    "render_iteration_scatter",
    "render_table1",
    "render_table2",
    "render_table3",
    "rsa_record",
    "run_all",
    "save_json",
    "save_text",
    "serialize_result",
    "run_cell",
    "table3_results",
    "table3_supervised",
    "window_sweep",
]
