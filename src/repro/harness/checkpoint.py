"""Atomic artifact writes and checkpoint/resume for experiment sweeps.

Two concerns live here:

* **Atomic writes** — every artifact and journal record is written to
  a ``*.tmp`` sibling and ``os.replace``d into place, so a crash at
  any instant leaves either the old file or the new one, never a
  truncated JSON trail.
* **The checkpoint store** — a run directory journaling one file per
  completed experiment cell, plus a manifest binding the journal to
  its run parameters.  An interrupted Table III sweep resumes from the
  last completed cell: journaled cells are reloaded verbatim (full
  sample sets, so p-values and reports reproduce byte-identically) and
  only the missing cells re-run.

Records carry an integrity stamp (CRC-32 over the canonicalised
payload), so a journal damaged *outside* the atomic-write protocol — a
torn write on a dying filesystem, a flipped bit at rest — is detected
on read instead of trusted.  :meth:`CheckpointStore.has` quarantines a
damaged record (rename to ``*.corrupt``) and reports the cell missing,
so ``--resume`` deterministically replays it; a direct
:meth:`CheckpointStore.load` of a damaged record fails loudly.  Never
silently corrupted artifacts.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Dict, List, Optional

from repro.core.attack import ExperimentResult
from repro.core.channels import ChannelType
from repro.core.model import AttackCategory
from repro.crypto.leak import RsaAttackResult
from repro.errors import HarnessError
from repro.stats.distributions import TimingDistribution
from repro.stats.summary import DistributionComparison

#: Journal format version; bumped on incompatible payload changes.
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Atomic write primitives
# ----------------------------------------------------------------------

def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + rename).

    Raises:
        HarnessError: If the parent directory does not exist.
    """
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        raise HarnessError(f"output directory {directory!r} does not exist")
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def atomic_write_json(path: str, payload: object) -> None:
    """Write ``payload`` as pretty-printed JSON, atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True)
    )


# ----------------------------------------------------------------------
# Result (de)serialisation — full fidelity, including samples
# ----------------------------------------------------------------------

def serialize_experiment(result: ExperimentResult) -> Dict[str, object]:
    """A JSON payload from which the result reconstructs exactly."""
    return {
        "kind": "experiment",
        "variant": result.variant_name,
        "category": result.category.value,
        "channel": result.channel.value,
        "predictor": result.predictor_name,
        "defense": result.defense_name,
        "mapped_samples": [float(v) for v in result.comparison.mapped.samples],
        "unmapped_samples": [
            float(v) for v in result.comparison.unmapped.samples
        ],
        "mapped_label": result.comparison.mapped.label,
        "unmapped_label": result.comparison.unmapped.label,
        "mean_trial_cycles": float(result.mean_trial_cycles),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
    }


def deserialize_experiment(payload: Dict[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its journal payload.

    The t-test is recomputed from the journaled samples, so the
    p-value is bit-identical to the original run's.
    """
    mapped = TimingDistribution(
        str(payload.get("mapped_label", "mapped")),
        [float(v) for v in payload["mapped_samples"]],
    )
    unmapped = TimingDistribution(
        str(payload.get("unmapped_label", "unmapped")),
        [float(v) for v in payload["unmapped_samples"]],
    )
    return ExperimentResult(
        variant_name=str(payload["variant"]),
        category=AttackCategory(payload["category"]),
        channel=ChannelType(payload["channel"]),
        predictor_name=str(payload["predictor"]),
        defense_name=str(payload["defense"]),
        comparison=DistributionComparison.compare(mapped, unmapped),
        mean_trial_cycles=float(payload["mean_trial_cycles"]),
        transmission_rate_kbps=float(payload["transmission_rate_kbps"]),
    )


def serialize_rsa(result: RsaAttackResult) -> Dict[str, object]:
    """Journal payload for the Figure 7 RSA run."""
    return {
        "kind": "rsa",
        "observations": [float(v) for v in result.observations],
        "decoded_bits": [int(b) for b in result.decoded_bits],
        "true_bits": [int(b) for b in result.true_bits],
        "threshold": float(result.threshold),
        "success_rate": float(result.success_rate),
        "transmission_rate_kbps": float(result.transmission_rate_kbps),
    }


def deserialize_rsa(payload: Dict[str, object]) -> RsaAttackResult:
    """Rebuild an :class:`RsaAttackResult` from its journal payload."""
    return RsaAttackResult(
        observations=[float(v) for v in payload["observations"]],
        decoded_bits=[int(b) for b in payload["decoded_bits"]],
        true_bits=[int(b) for b in payload["true_bits"]],
        threshold=float(payload["threshold"]),
        success_rate=float(payload["success_rate"]),
        transmission_rate_kbps=float(payload["transmission_rate_kbps"]),
    )


def serialize_result(result: object) -> Dict[str, object]:
    """Dispatch on result type."""
    if isinstance(result, ExperimentResult):
        return serialize_experiment(result)
    if isinstance(result, RsaAttackResult):
        return serialize_rsa(result)
    raise HarnessError(
        f"cannot journal result of type {type(result).__name__}"
    )


def deserialize_result(payload: Dict[str, object]) -> object:
    """Inverse of :func:`serialize_result`."""
    kind = payload.get("kind")
    if kind == "experiment":
        return deserialize_experiment(payload)
    if kind == "rsa":
        return deserialize_rsa(payload)
    raise HarnessError(f"unknown journaled result kind {kind!r}")


# ----------------------------------------------------------------------
# The checkpoint store
# ----------------------------------------------------------------------

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Top-level keys a cell-payload record may carry (see
#: ``SupervisedCell.to_payload``).  Unstamped (legacy) records must
#: stay inside this vocabulary to be trusted at all.
_RECORD_KEYS = frozenset(
    {"cell_id", "execution", "result", "preflight", "sequential"}
)


def _cell_filename(cell_id: str) -> str:
    return _SAFE.sub("-", cell_id) + ".json"


def payload_crc32(payload: Dict[str, object]) -> int:
    """CRC-32 over the canonical (sorted-keys) JSON of ``payload``."""
    return zlib.crc32(
        json.dumps(payload, sort_keys=True).encode()
    ) & 0xFFFFFFFF


class CheckpointStore:
    """Journal of completed experiment cells under one run directory.

    Layout::

        <run_dir>/manifest.json        run parameters + format version
        <run_dir>/cells/<cell>.json    one record per completed cell

    Every write is atomic.  ``open`` with ``resume=True`` validates
    that the manifest's parameters match the requested run (resuming
    under different seeds or run counts would silently mix
    incompatible measurements); without ``resume`` any existing
    journal is cleared.
    """

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.cells_dir = os.path.join(run_dir, "cells")
        self.manifest_path = os.path.join(run_dir, "manifest.json")

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def open(
        cls,
        run_dir: str,
        meta: Dict[str, object],
        resume: bool = False,
    ) -> "CheckpointStore":
        """Create (or reopen for resume) the store at ``run_dir``."""
        store = cls(run_dir)
        os.makedirs(store.cells_dir, exist_ok=True)
        manifest = {
            "checkpoint_version": CHECKPOINT_VERSION,
            **{key: meta[key] for key in sorted(meta)},
        }
        if resume and os.path.exists(store.manifest_path):
            with open(store.manifest_path) as handle:
                existing = json.load(handle)
            if existing != manifest:
                mismatched = sorted(
                    key for key in set(existing) | set(manifest)
                    if existing.get(key) != manifest.get(key)
                )
                raise HarnessError(
                    "cannot resume: checkpoint manifest does not match "
                    f"this run (differing keys: {mismatched})"
                )
            return store
        store.clear()
        atomic_write_json(store.manifest_path, manifest)
        return store

    def clear(self) -> None:
        """Remove every journaled cell (fresh run), quarantines too."""
        if os.path.isdir(self.cells_dir):
            for name in os.listdir(self.cells_dir):
                if name.endswith((".json", ".json.corrupt")):
                    os.unlink(os.path.join(self.cells_dir, name))

    # -- per-cell journal ----------------------------------------------
    def _cell_path(self, cell_id: str) -> str:
        return os.path.join(self.cells_dir, _cell_filename(cell_id))

    def _validated_record(self, path: str) -> Dict[str, object]:
        """The verified payload at ``path`` (integrity stamp stripped).

        Raises:
            HarnessError: Unparseable JSON, a non-object record, or a
                CRC mismatch — i.e. any damage the atomic-write
                protocol cannot have produced on its own.
        """
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError) as error:
            raise HarnessError(
                f"corrupt checkpoint record {path!r}: {error}"
            ) from None
        if not isinstance(record, dict):
            raise HarnessError(
                f"corrupt checkpoint record {path!r}: not a JSON object"
            )
        integrity = record.pop("integrity", None)
        if integrity is not None:
            expected = (
                integrity.get("crc32")
                if isinstance(integrity, dict) else None
            )
            actual = payload_crc32(record)
            if expected != actual:
                raise HarnessError(
                    f"corrupt checkpoint record {path!r}: CRC mismatch "
                    f"(stamped {expected}, computed {actual})"
                )
            return record
        # Legacy records (pre-integrity journals) have no CRC to check;
        # they pass on a strict structural check instead.  The key
        # whitelist matters: without it, one flipped bit inside the
        # ``"integrity"`` key itself would demote a stamped record to
        # "legacy" and the damage would load silently.
        unknown = set(record) - _RECORD_KEYS
        if "cell_id" not in record or unknown:
            raise HarnessError(
                f"corrupt checkpoint record {path!r}: not a cell "
                f"payload (unexpected keys: {sorted(unknown)})"
            )
        return record

    def _quarantine(self, path: str) -> str:
        """Move a damaged record aside so it is never trusted again."""
        corrupt_path = path + ".corrupt"
        try:
            os.replace(path, corrupt_path)
        except OSError:
            pass
        return corrupt_path

    def has(self, cell_id: str) -> bool:
        """True when ``cell_id`` has a *valid* journaled record.

        A record that fails validation (torn write, bit flip) is
        quarantined to ``*.corrupt`` and reported missing, so resume
        deterministically replays the cell instead of trusting damaged
        measurements.
        """
        path = self._cell_path(cell_id)
        if not os.path.exists(path):
            return False
        try:
            self._validated_record(path)
        except HarnessError:
            self._quarantine(path)
            return False
        return True

    def save(self, cell_id: str, payload: Dict[str, object]) -> None:
        """Journal one completed cell atomically, integrity-stamped."""
        record = dict(payload)
        record["integrity"] = {"crc32": payload_crc32(payload)}
        atomic_write_json(self._cell_path(cell_id), record)

    def load(self, cell_id: str) -> Dict[str, object]:
        """Load one journaled cell record (integrity verified).

        Raises:
            HarnessError: When the cell was never journaled, or its
                record is damaged — the damaged file is quarantined
                and the error says so loudly.
        """
        path = self._cell_path(cell_id)
        if not os.path.exists(path):
            raise HarnessError(f"no checkpoint for cell {cell_id!r}")
        try:
            return self._validated_record(path)
        except HarnessError as error:
            quarantined = self._quarantine(path)
            raise HarnessError(
                f"cell {cell_id!r}: {error}; quarantined to "
                f"{quarantined!r}"
            ) from None

    def completed_cells(self) -> List[str]:
        """Journaled cell ids (by sanitised filename), sorted."""
        if not os.path.isdir(self.cells_dir):
            return []
        return sorted(
            name[:-len(".json")]
            for name in os.listdir(self.cells_dir)
            if name.endswith(".json")
        )

    # -- reporting -----------------------------------------------------
    def classification_summary(self) -> Dict[str, int]:
        """Count journaled cells per failure classification."""
        counts: Dict[str, int] = {}
        for name in self.completed_cells():
            try:
                payload = self._validated_record(
                    os.path.join(self.cells_dir, name + ".json")
                )
            except HarnessError:
                counts["corrupt"] = counts.get("corrupt", 0) + 1
                continue
            label = str(
                payload.get("execution", {}).get("classification", "unknown")
            )
            counts[label] = counts.get(label, 0) + 1
        return counts
