"""Composite report rendering: experiment results to readable text."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.attack import ExperimentResult
from repro.core.model import AttackCategory
from repro.crypto.leak import RsaAttackResult
from repro.harness.figures import render_figure, render_iteration_scatter
from repro.harness.tables import render_table3


def figure_report(
    figure_title: str,
    panels: List[Tuple[str, ExperimentResult]],
    mapped_label: str = "mapped",
    unmapped_label: str = "unmapped",
) -> str:
    """Render a Figure 5/8-style multi-panel report."""
    return render_figure(
        figure_title,
        [
            (title, result.comparison.mapped, result.comparison.unmapped,
             result.pvalue)
            for title, result in panels
        ],
        mapped_label=mapped_label,
        unmapped_label=unmapped_label,
    )


def figure7_report(result: RsaAttackResult) -> str:
    """Render the Figure 7 scatter plus the headline metrics."""
    scatter = render_iteration_scatter(
        "Figure 7: receiver observation per powm iteration",
        result.observations,
        result.true_bits,
    )
    summary = (
        f"bit success rate: {result.success_rate * 100:.1f}%  "
        f"(paper: 95.7%)\n"
        f"transmission rate: {result.transmission_rate_kbps:.2f} Kbps  "
        f"(paper: 9.65 Kbps)\n"
        f"decode threshold: {result.threshold:.1f} cycles"
    )
    return f"{scatter}\n\n{summary}"


def table3_report(
    results: Dict[AttackCategory, Dict[str, Optional[ExperimentResult]]],
) -> str:
    """Render Table III plus a pass/fail summary of its expected shape."""
    table = render_table3(results)
    checks: List[str] = []
    for category, cells in results.items():
        for key, result in cells.items():
            if result is None:
                continue
            expect_effective = key.endswith("_vp")
            ok = result.attack_succeeds == expect_effective
            if not ok:
                checks.append(
                    f"  SHAPE MISMATCH: {category.value} {key} "
                    f"p={result.pvalue:.4f}"
                )
    verdict = (
        "shape check: all cells match the paper "
        "(VP cells effective, no-VP cells not)"
        if not checks
        else "shape check FAILURES:\n" + "\n".join(checks)
    )
    return f"{table}\n{verdict}"
