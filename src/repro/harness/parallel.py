"""Process-parallel execution of supervised sweep cells.

The paper's artifacts decompose into independent *cells* — one
(variant, channel, predictor) experiment or the Figure 7 RSA run —
and every cell is a pure function of its ``(cell_id, seed, policy,
fault profile)`` inputs:

* trial seeds derive only from the cell's base seed and trial index;
* fault-injection draws are keyed by ``(profile, seed, cell_id,
  attempt)`` (order-independent by construction, see
  :mod:`repro.harness.faults`);
* retry reseeding mixes in the cell id
  (:func:`repro.harness.runner.cell_seed_index`), so retry streams do
  not depend on which cells ran before.

Cells can therefore execute in any order, in any process, and produce
byte-identical journal payloads.  This module exploits that: it shards
the cell list across a supervised persistent worker pool
(:mod:`repro.serve.supervisor` — heartbeats, hang detection, per-cell
deadlines, restart backoff), with the **parent as the single writer**
— workers run cells against no store and ship the journal payload
back; the parent persists each payload through the existing
:class:`~repro.harness.checkpoint.CheckpointStore` (atomic per-cell
files).  A later serial pass (the artifact assembly in
:func:`repro.harness.persistence.run_all`) then finds every cell
already journaled and reuses it verbatim, which is exactly the
checkpoint-resume path — so parallel runs inherit the resume
machinery's byte-identity guarantee instead of re-implementing it.

Failed cells are deliberately **not** journaled (matching the serial
executor): the assembly pass re-attempts them, deterministically
reproducing the same failure record.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.channels import ChannelType
from repro.core.variants import ALL_VARIANTS, AttackVariant
from repro.errors import HarnessError
from repro.harness.checkpoint import CheckpointStore
from repro.harness.faults import FaultInjector, FaultProfile, fault_profile
from repro.harness.runner import (
    CellClassification,
    ExecutionPolicy,
    ResilientExecutor,
    SupervisedCell,
    _PANEL_SPECS,
    _slug,
    snapshot_overrides,
)
from repro.memory.hierarchy import MemoryConfig
from repro.perf.counters import COUNTERS, PerfCounters
from repro.perf.observe import now
from repro.sim import (
    clear_fallback_journal,
    fallback_histogram,
    fallback_journal,
    record_fallbacks,
)

#: Environment variable consulted for a default worker count (used by
#: the CI matrix job to run the whole quick suite under ``--workers 2``
#: without threading a flag through every entry point).
WORKERS_ENV = "REPRO_WORKERS"

#: Default per-cell wall-clock budget in the parallel path.  Generous —
#: the slowest Table III cell is seconds, not minutes — but finite, so
#: a hung worker can no longer stall a sweep forever.
DEFAULT_CELL_TIMEOUT_S = 600.0

#: Dispatch attempts per cell before the sweep gives up loudly.
#: Redispatches are deterministic (the cell payload is a pure function
#: of its spec), so retrying after a worker death cannot change the
#: result — only recover it.
DEFAULT_CELL_DISPATCHES = 5


def default_workers() -> int:
    """Worker count from :data:`WORKERS_ENV`, else 1 (serial)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise HarnessError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise HarnessError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


# ----------------------------------------------------------------------
# Cell specifications
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """A pickle-safe description of one supervised sweep cell.

    ``kind`` is ``"experiment"`` (a mapped-vs-unmapped attack cell) or
    ``"rsa"`` (the Figure 7 exponent leak).  Variants are referenced by
    their public name and resolved in the executing process, so a spec
    never carries live simulator state across the process boundary.
    """

    cell_id: str
    kind: str = "experiment"
    variant: str = ""
    channel: str = ""
    predictor: str = ""
    n_runs: int = 100
    seed: int = 0
    exponent: Optional[int] = None
    snapshot_trials: bool = False
    audit_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("experiment", "rsa"):
            raise HarnessError(f"unknown cell kind {self.kind!r}")
        if self.kind == "experiment" and not self.variant:
            raise HarnessError(f"cell {self.cell_id!r} names no variant")


def _variant_by_name(name: str) -> AttackVariant:
    for variant in ALL_VARIANTS:
        if variant.name == name:
            return variant
    raise HarnessError(f"unknown attack variant {name!r}")


def sweep_specs(
    artifacts: Sequence[str],
    n_runs: int = 100,
    seed: int = 0,
    predictor: str = "lvp",
    snapshot_trials: bool = False,
    audit_snapshots: bool = False,
) -> List[CellSpec]:
    """The supervised cells behind the chosen ``repro all`` artifacts.

    Mirrors the enumeration of
    :func:`~repro.harness.runner.figure_panels_supervised`,
    :func:`~repro.harness.runner.table3_supervised` and
    :func:`~repro.harness.runner.figure7_supervised` — same cell ids,
    same per-cell parameters — so prefilling these specs populates
    exactly the journal entries the serial assembly pass will look up.
    """
    specs: List[CellSpec] = []
    figure_variants = {"fig5": "Train + Test", "fig8": "Test + Hit"}
    for figure, variant_name in figure_variants.items():
        if figure not in artifacts:
            continue
        for _, channel, panel_predictor in _PANEL_SPECS:
            specs.append(CellSpec(
                cell_id=f"{figure}/{channel.value}-{panel_predictor}",
                variant=variant_name,
                channel=channel.value,
                predictor=panel_predictor,
                n_runs=n_runs,
                seed=seed,
                snapshot_trials=snapshot_trials,
                audit_snapshots=audit_snapshots,
            ))
    if "fig7" in artifacts:
        from repro.harness.experiment import FIGURE7_EXPONENT

        specs.append(CellSpec(
            cell_id="fig7/rsa", kind="rsa", seed=7,
            exponent=FIGURE7_EXPONENT,
        ))
    if "table3" in artifacts:
        for variant in ALL_VARIANTS:
            slug = _slug(variant.category.value)
            cell_plan = [
                ("tw_novp", ChannelType.TIMING_WINDOW, "none"),
                ("tw_vp", ChannelType.TIMING_WINDOW, predictor),
            ]
            if ChannelType.PERSISTENT in variant.supported_channels:
                cell_plan += [
                    ("pc_novp", ChannelType.PERSISTENT, "none"),
                    ("pc_vp", ChannelType.PERSISTENT, predictor),
                ]
            for key, channel, cell_predictor in cell_plan:
                specs.append(CellSpec(
                    cell_id=f"table3/{slug}/{key}",
                    variant=variant.name,
                    channel=channel.value,
                    predictor=cell_predictor,
                    n_runs=n_runs,
                    seed=seed,
                    snapshot_trials=snapshot_trials,
                    audit_snapshots=audit_snapshots,
                ))
    return specs


def execute_spec(spec: CellSpec, executor: ResilientExecutor) -> SupervisedCell:
    """Run one spec through an executor, exactly as the serial drivers do."""
    if spec.kind == "rsa":
        from repro.harness.experiment import RSA_DRAM

        return executor.run_rsa_supervised(
            spec.cell_id,
            spec.exponent if spec.exponent is not None else 0,
            seed=spec.seed,
            memory_config=MemoryConfig(dram=RSA_DRAM),
        )
    return executor.run_cell_supervised(
        spec.cell_id,
        _variant_by_name(spec.variant),
        ChannelType(spec.channel),
        spec.predictor,
        spec.n_runs,
        spec.seed,
        **snapshot_overrides(spec.snapshot_trials, spec.audit_snapshots),
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER_EXECUTOR: Optional[ResilientExecutor] = None


def _resolve_profile(
    fault_profile_name: Optional[str],
    fault_profile_obj: Optional[FaultProfile],
) -> Optional[FaultProfile]:
    """One profile from either a registry name or a literal object."""
    if fault_profile_obj is not None:
        return fault_profile_obj
    if fault_profile_name:
        return fault_profile(fault_profile_name)
    return None


def _init_worker(
    policy: ExecutionPolicy,
    fault_profile_name: Optional[str],
    fault_seed: int,
    fault_profile_obj: Optional[FaultProfile] = None,
) -> None:
    """Build the per-process executor (no store: the parent journals)."""
    global _WORKER_EXECUTOR
    profile = _resolve_profile(fault_profile_name, fault_profile_obj)
    injector = (
        FaultInjector(profile, seed=fault_seed)
        if profile is not None else None
    )
    _WORKER_EXECUTOR = ResilientExecutor(policy, injector=injector, store=None)
    COUNTERS.reset()
    clear_fallback_journal()


def _run_spec_in_worker(spec: CellSpec) -> Dict[str, object]:
    """Execute one cell; return its journal payload + perf telemetry."""
    assert _WORKER_EXECUTOR is not None, "worker initializer did not run"
    before = COUNTERS.snapshot()
    fallback_mark = len(fallback_journal())
    started = now()
    cell = execute_spec(spec, _WORKER_EXECUTOR)
    busy_s = now() - started
    failed = cell.classification is CellClassification.FAILED
    return {
        "cell_id": spec.cell_id,
        "failed": failed,
        "payload": None if failed else cell.to_payload(),
        "counters": PerfCounters.delta(before, COUNTERS.snapshot()),
        # Batched-backend fallbacks are journaled process-locally; ship
        # this cell's events so the parent sees the sweep-wide truth.
        "fallbacks": fallback_journal()[fallback_mark:],
        "busy_s": busy_s,
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

@dataclass
class SweepStats:
    """Telemetry of one parallel (or serial-fallback) prefill pass."""

    workers: int
    #: Workers that could actually run cells concurrently: 1 when the
    #: serial fallback path executed (workers == 1 or <= 1 pending
    #: cell), else ``min(workers, pending cells)``.  Benches use this
    #: to refuse to stamp a "parallel" record that effectively ran
    #: serially.
    effective_workers: int = 0
    cells_total: int = 0
    cells_cached: int = 0
    cells_run: int = 0
    cells_failed: int = 0
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    #: (cell, reason) batched→scalar fallbacks from every process that
    #: ran cells for this pass — workers ship theirs back, so this is
    #: the sweep-wide view, not the parent's.
    fallback_events: List[tuple] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Fraction of worker-seconds spent executing cells."""
        capacity = self.elapsed_s * (self.effective_workers or self.workers)
        return self.busy_s / capacity if capacity > 0 else 0.0

    @property
    def vectorized_fraction(self) -> Optional[float]:
        """Sweep-wide vectorized trial fraction; None off-batched."""
        vector = self.counters.get("batched_vector_trials", 0)
        fallback = self.counters.get("batched_fallback_trials", 0)
        covered = vector + fallback
        return vector / covered if covered else None

    @property
    def fallback_reasons(self) -> Dict[str, int]:
        """Histogram of fallback reasons across every worker."""
        return fallback_histogram(list(self.fallback_events))

    @property
    def cells_per_s(self) -> float:
        """Cells completed per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.cells_run / self.elapsed_s

    @property
    def cycles_per_s(self) -> float:
        """Simulated cycles per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.counters.get("simulated_cycles", 0) / self.elapsed_s

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable snapshot (for BENCH files and ``repro perf``)."""
        return {
            "workers": self.workers,
            "effective_workers": self.effective_workers or self.workers,
            "cells_total": self.cells_total,
            "cells_cached": self.cells_cached,
            "cells_run": self.cells_run,
            "cells_failed": self.cells_failed,
            "elapsed_s": self.elapsed_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "cells_per_s": self.cells_per_s,
            "cycles_per_s": self.cycles_per_s,
            "counters": dict(self.counters),
            "vectorized_fraction": self.vectorized_fraction,
            "fallback_reasons": self.fallback_reasons,
            "fallback_events": [list(event) for event in self.fallback_events],
        }


def run_cells(
    specs: Sequence[CellSpec],
    store: Optional[CheckpointStore],
    policy: Optional[ExecutionPolicy] = None,
    *,
    workers: int = 1,
    fault_profile_name: Optional[str] = None,
    fault_seed: int = 0,
    fault_profile_obj: Optional[FaultProfile] = None,
    cell_timeout_s: Optional[float] = DEFAULT_CELL_TIMEOUT_S,
    max_dispatches: int = DEFAULT_CELL_DISPATCHES,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepStats:
    """Execute ``specs``, journaling results into ``store``.

    With ``workers > 1`` the cells run on a supervised persistent
    worker pool (:class:`repro.serve.supervisor.WorkerSupervisor`) and
    the parent is the only process that writes the checkpoint journal.
    The supervisor adds the robustness the bare process pool lacked: a
    per-cell wall-clock deadline (``cell_timeout_s``), heartbeat-based
    hang detection, and deterministic redispatch after a worker death —
    a redispatched cell reruns the identical spec and journals the
    byte-identical payload.  A cell that exhausts ``max_dispatches``
    or raises out of the executor fails the sweep loudly.

    With ``workers == 1`` the cells run in-process through an executor
    bound directly to the store — the exact serial code path, kept as
    the fallback so the two modes cannot drift apart.  (No wall-clock
    deadline applies there: the parent cannot preempt itself.)

    When called from the main thread with ``workers > 1``, SIGINT is
    handled cleanly: outstanding cells are cancelled, already-completed
    payloads stay journaled (flushed incrementally), and
    ``KeyboardInterrupt`` is raised so the CLI exits nonzero and
    ``--resume`` picks up from the flushed journal.

    Cells already present in the store are skipped (resume semantics).
    The journal payloads are byte-identical for any worker count; the
    determinism tests hash them across worker counts to enforce this.
    """
    if workers < 1:
        raise HarnessError(f"workers must be >= 1, got {workers}")
    policy = policy or ExecutionPolicy.compat()
    profile = _resolve_profile(fault_profile_name, fault_profile_obj)
    stats = SweepStats(workers=workers, cells_total=len(specs))
    pending: List[CellSpec] = []
    for spec in specs:
        if store is not None and store.has(spec.cell_id):
            stats.cells_cached += 1
        else:
            pending.append(spec)
    started = now()
    counters = PerfCounters()

    if workers == 1 or len(pending) <= 1:
        stats.effective_workers = 1
        injector = (
            FaultInjector(profile, seed=fault_seed)
            if profile is not None else None
        )
        serial = ResilientExecutor(policy, injector=injector, store=store)
        for spec in pending:
            before = COUNTERS.snapshot()
            fallback_mark = len(fallback_journal())
            cell_started = now()
            cell = execute_spec(spec, serial)
            stats.busy_s += now() - cell_started
            counters.add(PerfCounters.delta(before, COUNTERS.snapshot()))
            stats.fallback_events.extend(fallback_journal()[fallback_mark:])
            stats.cells_run += 1
            if cell.classification is CellClassification.FAILED:
                stats.cells_failed += 1
            if progress is not None:
                progress(f"{spec.cell_id}: {cell.classification.value}")
        stats.elapsed_s = now() - started
        stats.counters = counters.snapshot()
        return stats

    from repro.serve.supervisor import SupervisorPolicy, WorkerSupervisor

    stats.effective_workers = min(workers, len(pending))
    outcomes: "queue.Queue" = queue.Queue()
    supervisor = WorkerSupervisor(
        SupervisorPolicy(
            workers=workers,
            job_timeout_s=cell_timeout_s,
            max_dispatches=max_dispatches,
        ),
        run_fn=_run_spec_in_worker,
        init_fn=_init_worker,
        init_args=(policy, None, fault_seed, profile),
        fault_profile=profile,
        fault_seed=fault_seed,
    ).start()

    interrupted = threading.Event()
    previous_handler: Any = None
    in_main_thread = (
        threading.current_thread() is threading.main_thread()
    )
    if in_main_thread:
        def _on_sigint(signum: int, frame: object) -> None:
            interrupted.set()
            supervisor.interrupt()

        previous_handler = signal.signal(signal.SIGINT, _on_sigint)

    failure: Optional[str] = None
    try:
        for spec in pending:
            supervisor.submit(spec.cell_id, spec, outcomes.put)
        received = 0
        while received < len(pending):
            try:
                outcome = outcomes.get(timeout=0.2)
            except queue.Empty:
                if interrupted.is_set():
                    break
                continue
            received += 1
            if outcome.status == "done":
                result = outcome.value
                stats.cells_run += 1
                stats.busy_s += float(result["busy_s"])
                counters.add(result["counters"])
                shipped = [
                    (str(cell_name), str(reason))
                    for cell_name, reason in result.get("fallbacks") or []
                ]
                if shipped:
                    stats.fallback_events.extend(shipped)
                    # Fold into this process's journal too, so
                    # `fallback_journal()` stays the one source of
                    # truth regardless of sharding.
                    record_fallbacks(shipped)
                if result["failed"]:
                    stats.cells_failed += 1
                elif store is not None:
                    # Flush incrementally: an interrupt or crash later
                    # loses nothing already completed.
                    store.save(str(result["cell_id"]), result["payload"])
                if progress is not None:
                    status = "failed" if result["failed"] else "done"
                    progress(f"{outcome.task_id}: {status}")
            elif outcome.status == "cancelled":
                continue
            else:  # "error" or "lost": fail the sweep loudly
                failure = (
                    f"cell {outcome.task_id!r} {outcome.status} after "
                    f"{outcome.dispatches} dispatch(es): {outcome.error}"
                )
                break
    finally:
        supervisor.shutdown()
        supervisor.join(timeout=30.0)
        if in_main_thread:
            signal.signal(signal.SIGINT, previous_handler)

    stats.elapsed_s = now() - started
    stats.counters = counters.snapshot()
    # Fold worker counters into this process's totals so `repro perf`
    # style reporting sees the whole sweep regardless of sharding.
    COUNTERS.add(stats.counters)
    if failure is not None:
        raise HarnessError(failure)
    if interrupted.is_set():
        raise KeyboardInterrupt
    return stats
