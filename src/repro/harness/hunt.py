"""Dynamic confirmation of the static hunt's survivors.

The static certification (:mod:`repro.analysis.enumerate`) classifies
all 576 Table I combinations in seconds; this module closes the loop
by *measuring* the combos that matter — the twelve model-effective
classes plus any completeness counterexample the static pass flags
(candidate new variants; expected none) — through the standard
supervised harness:

* each target becomes a :class:`~repro.workloads.combos.ComboAttack`
  built from its static witness counts, so the dynamic trial realises
  exactly the count choice the abstract interpreter found admissible;
* cells stream through the group-sequential early-stopping policy
  (:class:`~repro.harness.runner.SequentialPolicy`), journaled to a
  :class:`~repro.harness.checkpoint.CheckpointStore` under
  ``<out>/hunt_checkpoint`` so an interrupted confirmation resumes;
* the static and dynamic verdicts are merged into one agreement table
  (``hunt_dynamic.json``), rendered by ``repro report --hunt``.

The static certificate (``hunt_certificate.json``) is written
separately and never depends on measurement, so ``repro hunt
--static`` output stays byte-identical across runs and machines.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis.enumerate import (
    ComboVerdict,
    build_certificate,
    dynamic_targets,
    hunt_records,
)
from repro.core.channels import ChannelType
from repro.core.model import AttackCategory, _EVAL_CONFIDENCE
from repro.harness.checkpoint import CheckpointStore, atomic_write_json
from repro.harness.runner import (
    ExecutionPolicy,
    ResilientExecutor,
    SequentialPolicy,
    SupervisedCell,
    _slug,
)
from repro.workloads.combos import ComboAttack

CERTIFICATE_FILENAME = "hunt_certificate.json"
DYNAMIC_FILENAME = "hunt_dynamic.json"


def write_certificate(
    out_dir: str, *, confidence: int = _EVAL_CONFIDENCE
) -> Dict[str, object]:
    """Run the static hunt and write ``hunt_certificate.json``.

    Returns the certificate payload; the file is deterministic
    (sorted keys, no timestamps) so repeated runs are byte-identical.
    """
    records = hunt_records(confidence=confidence)
    certificate = build_certificate(records, confidence=confidence)
    os.makedirs(out_dir, exist_ok=True)
    atomic_write_json(
        os.path.join(out_dir, CERTIFICATE_FILENAME), certificate
    )
    return certificate


def _target_variant(record: ComboVerdict) -> ComboAttack:
    """The dynamic variant realising one static target's witness."""
    witness = record.witness
    category = record.terminal.category or record.model.category
    if category is None:
        # A candidate new variant outside Table II (completeness
        # counterexample path, expected empty): no class fits, so the
        # report row carries the combo symbol and the result record
        # borrows the enum's first slot.
        category = AttackCategory.TRAIN_TEST
    return ComboAttack(
        record.combo,
        category=category,
        train_count=witness.train_count if witness else "confidence",
        modify_count=witness.modify_count if witness else "one",
    )


def confirm_dynamic(
    records: List[ComboVerdict],
    out_dir: str,
    *,
    n_runs: int = 60,
    seed: int = 0,
    confidence: int = _EVAL_CONFIDENCE,
    predictor: str = "lvp",
    resume: bool = True,
    executor: Optional[ResilientExecutor] = None,
) -> Dict[str, object]:
    """Measure every dynamic target; write the agreement table.

    Static evidence (the witness count choice and the certificate
    verdict) and dynamic evidence (the supervised cell's sequential
    t-test) are combined per combo; ``agree`` is true when the
    measurement confirms the static leak verdict.
    """
    targets = dynamic_targets(records)
    os.makedirs(out_dir, exist_ok=True)
    if executor is None:
        store = CheckpointStore.open(
            os.path.join(out_dir, "hunt_checkpoint"),
            meta={
                "kind": "hunt-dynamic",
                "n_runs": n_runs,
                "seed": seed,
                "confidence": confidence,
                "predictor": predictor,
            },
            resume=resume,
        )
        executor = ResilientExecutor(
            policy=ExecutionPolicy(
                sequential=SequentialPolicy(),
                # ComboAttack programs are certified by the hunt's own
                # static pass; the 12-variant preflight analyzer does
                # not model arbitrary combos.
                preflight=False,
            ),
            store=store,
        )

    rows: List[Dict[str, object]] = []
    all_agree = True
    for index, record in enumerate(targets):
        variant = _target_variant(record)
        cell_id = f"hunt/{index:03d}-{_slug(record.combo.symbol)}"
        cell: SupervisedCell = executor.run_cell_supervised(
            cell_id, variant, ChannelType.TIMING_WINDOW, predictor,
            n_runs, seed, confidence=confidence,
        )
        result = cell.result
        dynamic = bool(result.attack_succeeds) if result is not None else None
        agree = dynamic is not None and dynamic == record.timing_leak
        all_agree = all_agree and agree
        witness = record.witness
        rows.append({
            "cell_id": cell_id,
            "symbol": record.combo.symbol,
            "category": (
                record.terminal.category.value
                if record.terminal.category else None
            ),
            "terminal": record.chain[-1],
            "static_effective": record.timing_leak,
            "witness": (
                f"{witness.train_count}/{witness.modify_count}"
                if witness else None
            ),
            "dynamic_effective": dynamic,
            "pvalue": result.pvalue if result is not None else None,
            "effective_n": (
                len(result.comparison.mapped) if result is not None else 0
            ),
            "classification": cell.classification.value,
            "agree": agree,
        })

    payload = {
        "schema": "hunt-dynamic/v1",
        "settings": {
            "n_runs": n_runs,
            "seed": seed,
            "confidence": confidence,
            "predictor": predictor,
            "channel": ChannelType.TIMING_WINDOW.value,
        },
        "targets": len(rows),
        "rows": rows,
        "all_agree": all_agree,
    }
    atomic_write_json(os.path.join(out_dir, DYNAMIC_FILENAME), payload)
    return payload


def run_hunt(
    out_dir: str,
    *,
    static_only: bool = False,
    n_runs: int = 60,
    seed: int = 0,
    confidence: int = _EVAL_CONFIDENCE,
    predictor: str = "lvp",
    resume: bool = True,
) -> Dict[str, object]:
    """The full hunt: static certification, then dynamic confirmation.

    Returns ``{"certificate": ..., "dynamic": ...}``; ``dynamic`` is
    ``None`` under ``static_only``.
    """
    records = hunt_records(confidence=confidence)
    certificate = build_certificate(records, confidence=confidence)
    os.makedirs(out_dir, exist_ok=True)
    atomic_write_json(
        os.path.join(out_dir, CERTIFICATE_FILENAME), certificate
    )
    dynamic = None
    if not static_only:
        dynamic = confirm_dynamic(
            records, out_dir, n_runs=n_runs, seed=seed,
            confidence=confidence, predictor=predictor, resume=resume,
        )
    return {"certificate": certificate, "dynamic": dynamic}
