"""The resilient execution layer: supervised experiment cells.

The paper's headline artifacts are statistical sweeps — Table III runs
all twelve attack variants across channels and predictors with
100-run t-tests — and a single noisy cell, hung simulation or crash
mid-sweep must not lose the run.  :class:`ResilientExecutor` wraps
every experiment cell with:

* **retry with reseeding and exponential backoff** — any
  :class:`~repro.errors.ReproError` raised by a cell (including
  injected crashes and watchdog aborts) is retried up to
  ``max_retries`` times, each attempt under a deterministically
  derived fresh seed;
* a **cycle-budget watchdog** — a per-trial bound threaded into the
  core's ``max_cycles`` (runaway simulations abort with
  :class:`~repro.errors.SimulationError`) plus a per-cell budget over
  all attempts, exhausted budgets raising
  :class:`~repro.errors.BudgetExceededError`;
* **adaptive re-measurement** — when a t-test lands in an
  inconclusive band around ``ALPHA``, the cell re-runs with an
  escalated ``n_runs`` instead of reporting a flaky verdict (under a
  :class:`SequentialPolicy` the escalation *extends* the streamed
  sample in place — all prior trials are kept and more are drawn from
  the same per-trial seed schedule — instead of re-simulating from
  scratch);
* **group-sequential early stopping** — opt-in via
  :class:`SequentialPolicy`: each cell streams its trials through
  :meth:`repro.core.attack.AttackRunner.run_incremental` and is
  examined at pre-registered interim looks against an alpha-spending
  boundary (:mod:`repro.stats.sequential`), stopping as soon as the
  verdict is decisive instead of burning the full fixed-N budget;
* **checkpoint/resume** — completed cells are journaled atomically to
  a :class:`~repro.harness.checkpoint.CheckpointStore`, and re-running
  a sweep over the same store reuses every journaled cell verbatim.

Every cell carries a **failure classification** into its artifact
record: ``clean`` (first attempt, no intervention), ``retried``
(recovered after retries or escalation), ``degraded`` (produced a
result with weakened guarantees) or ``failed`` (no result).
"""

from __future__ import annotations

import re
import time
import zlib
from dataclasses import dataclass, field, replace as dc_replace
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.attack import (
    AttackRunner,
    ExperimentResult,
    make_predictor,
)
from repro.core.channels import ChannelType
from repro.core.model import AttackCategory
from repro.core.variants import ALL_VARIANTS, AttackVariant
from repro.crypto.leak import RsaAttackConfig, RsaVpAttack
from repro.crypto.mpi import Mpi
from repro.errors import (
    BudgetExceededError,
    HarnessError,
    ReproError,
)
from repro.harness.checkpoint import (
    CheckpointStore,
    deserialize_result,
    serialize_result,
)
from repro.harness.faults import FaultInjector
from repro.memory.hierarchy import MemoryConfig
from repro.perf.counters import COUNTERS
from repro.stats.distributions import TimingDistribution
from repro.stats.sequential import (
    DEFAULT_LOOK_FRACTIONS,
    GroupSequentialTest,
    MIN_LOOK_TRIALS,
    SequentialDesign,
    default_looks,
)
from repro.stats.summary import DistributionComparison
from repro.stats.ttest import ALPHA


def reseed(base_seed: int, attempt: int, cell_index: int = 0) -> int:
    """Deterministic per-attempt seed; attempt 0 is the base seed.

    ``cell_index`` decorrelates retry streams between cells: the whole
    sweep shares one base seed, so without it every cell's attempt-1
    seed would be identical — correlated retry noise that a parallel
    run (which executes cells in arbitrary order) would bake into the
    artifacts.  Pass a stable per-cell value
    (:func:`cell_seed_index` of the cell id); attempt 0 always returns
    the base seed so first attempts match the historical serial
    behaviour.
    """
    if attempt == 0:
        return base_seed
    return (
        base_seed * 1_000_003 + attempt * 7_919_993 + cell_index * 65_537
    ) % 2_147_483_647


def cell_seed_index(cell_id: str) -> int:
    """A stable small integer derived from a cell id (for reseeding)."""
    return zlib.crc32(cell_id.encode("utf-8"))


class CellClassification(str, Enum):
    """Failure classification attached to every artifact record."""

    CLEAN = "clean"
    RETRIED = "retried"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry behaviour.

    Attributes:
        max_retries: Retries after the first attempt (0 = fail fast).
        backoff_base: Seconds slept before the first retry; 0 disables
            sleeping (the schedule is still recorded).
        backoff_factor: Multiplier between consecutive retries.
    """

    max_retries: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise HarnessError("max_retries must be >= 0")
        if self.backoff_base < 0.0:
            raise HarnessError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise HarnessError("backoff_factor must be >= 1")

    def backoff_before(self, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (attempt 0 never waits)."""
        if attempt == 0 or self.backoff_base == 0.0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Re-measurement escalation around the significance threshold.

    A p-value inside ``[band_low, band_high)`` is *inconclusive*: too
    close to ``ALPHA`` for the verdict to be trusted at the current
    sample size.  The executor then escalates ``n_runs`` by
    ``escalation_factor`` (up to ``max_escalations`` times) instead of
    reporting a flaky verdict.
    """

    band_low: float = ALPHA / 2
    band_high: float = ALPHA * 2
    escalation_factor: int = 2
    max_escalations: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.band_low < self.band_high <= 1.0:
            raise HarnessError(
                "inconclusive band must satisfy 0 <= low < high <= 1"
            )
        if self.escalation_factor < 2:
            raise HarnessError("escalation_factor must be >= 2")
        if self.max_escalations < 0:
            raise HarnessError("max_escalations must be >= 0")

    def inconclusive(self, pvalue: float) -> bool:
        """True when the verdict should not be trusted yet."""
        return self.band_low <= pvalue < self.band_high


@dataclass(frozen=True)
class SequentialPolicy:
    """Group-sequential early stopping for experiment cells.

    Each cell's requested ``n_runs`` becomes the hard cap of a
    group-sequential design (:class:`repro.stats.sequential.SequentialDesign`):
    trials stream in boundary-aligned batches and the cell stops as
    soon as an interim look crosses the alpha-spending boundary.  The
    final look applies the paper's plain fixed-N criterion by default,
    so a cell that never stops early reports exactly the fixed-N
    verdict.

    Attributes:
        look_fractions: Interim-look schedule as fractions of
            ``n_runs`` (used when ``looks`` is unset); the default is
            the classic 20/40/60/80/100% five-look plan.
        looks: Explicit cumulative trial counts instead of fractions.
            Counts at or above a cell's ``n_runs`` are dropped and the
            cap itself is always appended, so one schedule serves
            sweeps with mixed per-cell budgets.
        alpha: Overall significance level.
        spending: Alpha-spending function name
            (:data:`repro.stats.sequential.SPENDING_FUNCTIONS`).
        final_level: Passed through to the design; ``"fixed-n"``
            (default) keeps the fixed-N answer recoverable.
    """

    look_fractions: Tuple[float, ...] = DEFAULT_LOOK_FRACTIONS
    looks: Optional[Tuple[int, ...]] = None
    alpha: float = ALPHA
    spending: str = "obrien-fleming"
    final_level: str = "fixed-n"

    def __post_init__(self) -> None:
        if self.looks is not None:
            if not self.looks:
                raise HarnessError("explicit looks must be non-empty")
            if any(n < MIN_LOOK_TRIALS for n in self.looks):
                raise HarnessError(
                    f"every look needs >= {MIN_LOOK_TRIALS} trials, "
                    f"got {self.looks}"
                )
            if any(b <= a for a, b in zip(self.looks, self.looks[1:])):
                raise HarnessError(
                    f"looks must be strictly increasing, got {self.looks}"
                )
        if not self.look_fractions:
            raise HarnessError("look_fractions must be non-empty")

    def design_for(self, n_runs: int) -> SequentialDesign:
        """The concrete design for a cell with cap ``n_runs``."""
        if self.looks is not None:
            counts = tuple(n for n in self.looks if n < n_runs) + (n_runs,)
        else:
            counts = default_looks(n_runs, self.look_fractions)
        return SequentialDesign(
            looks=counts,
            alpha=self.alpha,
            spending=self.spending,
            final_level=self.final_level,
        )

    def to_meta(self) -> Dict[str, object]:
        """JSON-safe settings record (checkpoint-manifest comparable)."""
        return {
            "look_fractions": list(self.look_fractions),
            "looks": list(self.looks) if self.looks is not None else None,
            "alpha": self.alpha,
            "spending": self.spending,
            "final_level": self.final_level,
        }


@dataclass(frozen=True)
class ExecutionPolicy:
    """Everything the supervised executor enforces per cell.

    Attributes:
        retry: Retry/backoff behaviour.
        adaptive: Optional inconclusive-band re-measurement.  Under a
            sequential policy the escalation keeps all prior trials
            and extends the stream; otherwise it re-runs the cell at
            the escalated ``n_runs`` from scratch.
        sequential: Optional group-sequential early stopping
            (:class:`SequentialPolicy`); ``None`` preserves the
            historical fixed-N behaviour byte for byte.
        max_trial_cycles: Per-trial watchdog, threaded into the core's
            ``max_cycles`` bound.
        cell_cycle_budget: Simulated-cycle budget per cell summed over
            attempts; exceeding it raises
            :class:`~repro.errors.BudgetExceededError`.
        fail_fast: Re-raise instead of recording a ``failed`` cell.
        preflight: Statically validate each cell with
            :func:`repro.analysis.preflight.preflight_cell` before its
            first attempt, raising
            :class:`~repro.errors.AnalysisError` on contradictions so
            no simulation budget is spent on a doomed cell.  Cached
            (resumed) cells are never re-analysed.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    adaptive: Optional[AdaptivePolicy] = None
    sequential: Optional[SequentialPolicy] = None
    max_trial_cycles: Optional[int] = None
    #: Simulation backend for every cell's trial loop (repro.sim);
    #: ``None`` follows ``$REPRO_BACKEND`` and defaults to scalar.
    #: Explicit per-cell ``backend`` overrides still win.
    backend: Optional[str] = None
    #: Lane scheduling across cells: ``"cell"`` keeps the historical
    #: one-backend-instance-per-cell dispatch; ``"pool"`` routes every
    #: cell through the process-global lane pool
    #: (:mod:`repro.sim.schedule`), which shares recorded passes and
    #: warm machine state across cells, looks and jobs.  Sugar for
    #: ``backend="pool"`` — kept separate so a sweep can say *how*
    #: lanes are scheduled without naming an engine.
    lane_schedule: str = "cell"
    cell_cycle_budget: Optional[float] = None
    fail_fast: bool = False
    preflight: bool = True
    #: Treat a static/dynamic verdict disagreement as a hard
    #: :class:`~repro.errors.AnalysisSoundnessError` instead of a
    #: report-time warning.  Applies after the cell completes (cached
    #: cells included: the journaled preflight record is compared
    #: against the journaled dynamic verdict).
    strict_preflight: bool = False

    def __post_init__(self) -> None:
        if self.lane_schedule not in ("cell", "pool"):
            raise HarnessError(
                f"unknown lane schedule {self.lane_schedule!r}; "
                "expected 'cell' or 'pool'"
            )
        if self.lane_schedule == "pool" and self.backend not in (
            None, "pool"
        ):
            raise HarnessError(
                f"--lane-schedule pool needs the pool backend, but "
                f"--backend {self.backend} was pinned explicitly"
            )

    def effective_backend(self) -> Optional[str]:
        """The backend name the policy resolves to (None = default)."""
        if self.lane_schedule == "pool":
            return "pool"
        return self.backend

    @classmethod
    def compat(cls) -> "ExecutionPolicy":
        """Behaviour-preserving policy: retries only on error.

        Used by the plain :mod:`repro.harness.experiment` drivers so
        their results stay identical to the pre-supervision harness
        unless something actually goes wrong.
        """
        return cls()

    @classmethod
    def robust(cls, max_retries: int = 2) -> "ExecutionPolicy":
        """The full-sweep policy: retries plus adaptive re-measurement."""
        return cls(
            retry=RetryPolicy(max_retries=max_retries),
            adaptive=AdaptivePolicy(),
        )


@dataclass
class AttemptRecord:
    """One attempt at one cell."""

    attempt: int
    seed: int
    n_runs: Optional[int]
    backoff_s: float = 0.0
    error: Optional[str] = None
    error_type: Optional[str] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "seed": self.seed,
            "n_runs": self.n_runs,
            "backoff_s": self.backoff_s,
            "error": self.error,
            "error_type": self.error_type,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AttemptRecord":
        return cls(
            attempt=int(payload["attempt"]),
            seed=int(payload["seed"]),
            n_runs=(None if payload.get("n_runs") is None
                    else int(payload["n_runs"])),
            backoff_s=float(payload.get("backoff_s", 0.0)),
            error=payload.get("error"),
            error_type=payload.get("error_type"),
        )


@dataclass
class SequentialOutcome:
    """What one group-sequential attempt at a cell produced.

    Returned by :func:`run_sequential_cell`; the executor's
    :meth:`ResilientExecutor.supervise` unwraps it transparently, so
    ``attempt_fn`` callables may return either a plain result or one
    of these.

    Attributes:
        result: The experiment result over every trial actually
            streamed (its t-test covers the full collected sample, so
            ``attack_succeeds`` stays the authoritative verdict).
        record: JSON-safe look trajectory / boundary record, journaled
            with the cell and carried into artifact records.
        extensions: Adaptive inconclusive-band extensions performed
            (counted as escalations by the executor).
        note: Degradation reason when the cell stayed inconclusive
            after every extension (empty otherwise).
    """

    result: ExperimentResult
    record: Dict[str, object]
    extensions: int = 0
    note: str = ""

    @property
    def effective_n(self) -> int:
        """Trials per hypothesis actually simulated."""
        return int(self.record["effective_n"])


def run_sequential_cell(
    runner: AttackRunner,
    design: SequentialDesign,
    adaptive: Optional[AdaptivePolicy] = None,
) -> SequentialOutcome:
    """Stream one cell's trials through a group-sequential boundary.

    Trials advance in boundary-aligned batches via
    :meth:`~repro.core.attack.AttackRunner.run_incremental`; after each
    scheduled look the interim p-value is fed to the alpha-spending
    boundary and the cell stops on the first decisive look.  When the
    final look lands in the adaptive policy's inconclusive band, the
    sample is *extended* — all prior trials are kept and more are
    drawn from the same per-trial seed schedule — up to
    ``adaptive.max_escalations`` times, replacing the legacy
    from-scratch 2xN re-run.

    Deterministic: the trials simulated depend only on the runner's
    seed/config, the design, and the adaptive band.
    """
    experiment = runner.run_incremental()
    test = GroupSequentialTest(design)
    state = None
    # Pull exactly what each look demands (SequentialDesign.next_demand
    # is the admission contract demand-driven lane schedulers honour).
    while (demand := design.next_demand(experiment.trials_done)) > 0:
        state = experiment.advance(experiment.trials_done + demand)
        COUNTERS.sequential_looks += 1
        if test.decide(state.comparison.pvalue).decision != "continue":
            break
    assert state is not None  # designs always have >= 1 look

    trials_avoided = 0
    if test.stopped_early:
        trials_avoided = 2 * (design.n_max - experiment.trials_done)
        COUNTERS.sequential_early_stops += 1
        COUNTERS.sequential_trials_avoided += trials_avoided
        COUNTERS.sequential_cycles_avoided += int(
            trials_avoided * state.mean_trial_cycles
        )
        # Demand-driven backends account the tail trials a
        # fill-every-lane dispatcher would have already burnt past
        # this decisive look (duck-typed: only the pool implements it).
        clip = getattr(runner.backend, "note_early_stop", None)
        if clip is not None:
            clip(runner, experiment.trials_done)

    extensions = 0
    extension_records: List[Dict[str, object]] = []
    note = ""
    if (
        not test.stopped_early
        and adaptive is not None
        and adaptive.inconclusive(state.comparison.pvalue)
    ):
        while extensions < adaptive.max_escalations:
            reused = 2 * experiment.trials_done
            target = experiment.trials_done * adaptive.escalation_factor
            state = experiment.advance(target)
            extensions += 1
            COUNTERS.escalation_trials_reused += reused
            extension_records.append({
                "n": target,
                "pvalue": state.comparison.pvalue,
                "trials_reused": reused,
            })
            if not adaptive.inconclusive(state.comparison.pvalue):
                break
        if adaptive.inconclusive(state.comparison.pvalue):
            note = (
                f"p-value {state.comparison.pvalue:.4f} still "
                f"inconclusive after {extensions} escalation(s)"
            )

    record: Dict[str, object] = {
        "design": design.to_payload(),
        "looks": [look.to_payload() for look in test.looks],
        "extensions": extension_records,
        "stopped_early": test.stopped_early,
        "planned_n": design.n_max,
        "effective_n": experiment.trials_done,
        "trials_avoided": trials_avoided,
    }
    return SequentialOutcome(
        result=experiment.result(),
        record=record,
        extensions=extensions,
        note=note,
    )


@dataclass
class SupervisedCell:
    """Outcome of one supervised cell: result + execution metadata."""

    cell_id: str
    result: Optional[object]
    classification: CellClassification
    attempts: List[AttemptRecord] = field(default_factory=list)
    escalations: int = 0
    note: str = ""
    #: Static preflight classification payload
    #: (:meth:`repro.analysis.preflight.PreflightReport.to_payload`),
    #: journaled with the cell so resumed runs stay byte-identical.
    preflight: Optional[Dict[str, object]] = None
    #: Group-sequential look trajectory / boundary record
    #: (:attr:`SequentialOutcome.record`); ``None`` for fixed-N cells,
    #: and omitted from journal payloads then so fixed-N journals stay
    #: byte-identical with historical runs.
    sequential: Optional[Dict[str, object]] = None

    @property
    def final_attempt(self) -> Optional[AttemptRecord]:
        """The attempt that produced the result (last successful one)."""
        for record in reversed(self.attempts):
            if record.error is None:
                return record
        return None

    def execution_record(self) -> Dict[str, object]:
        """The failure-classification payload carried by artifacts."""
        final = self.final_attempt
        return {
            "classification": self.classification.value,
            "attempts": [record.to_payload() for record in self.attempts],
            "escalations": self.escalations,
            "final_seed": final.seed if final else None,
            "final_n_runs": final.n_runs if final else None,
            "note": self.note,
        }

    def to_payload(self) -> Dict[str, object]:
        """Checkpoint-journal payload (atomic JSON)."""
        payload: Dict[str, object] = {
            "cell_id": self.cell_id,
            "execution": self.execution_record(),
            "result": (
                serialize_result(self.result)
                if self.result is not None else None
            ),
            "preflight": self.preflight,
        }
        if self.sequential is not None:
            payload["sequential"] = self.sequential
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SupervisedCell":
        execution = payload.get("execution", {})
        return cls(
            cell_id=str(payload["cell_id"]),
            result=(
                deserialize_result(payload["result"])
                if payload.get("result") is not None else None
            ),
            classification=CellClassification(
                execution.get("classification", "clean")
            ),
            attempts=[
                AttemptRecord.from_payload(record)
                for record in execution.get("attempts", [])
            ],
            escalations=int(execution.get("escalations", 0)),
            note=str(execution.get("note", "")),
            preflight=payload.get("preflight"),
            sequential=payload.get("sequential"),
        )


class ResilientExecutor:
    """Supervises experiment cells per an :class:`ExecutionPolicy`."""

    def __init__(
        self,
        policy: Optional[ExecutionPolicy] = None,
        injector: Optional[FaultInjector] = None,
        store: Optional[CheckpointStore] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or ExecutionPolicy.compat()
        self.injector = injector
        self.store = store
        self._sleep = sleep

    # ------------------------------------------------------------------
    def supervise(
        self,
        cell_id: str,
        attempt_fn: Callable[[int, Optional[int]], object],
        *,
        seed: int,
        n_runs: Optional[int] = None,
        pvalue_of: Optional[Callable[[object], float]] = None,
        cycles_of: Optional[Callable[[object], float]] = None,
        degraded_note: Optional[Callable[[object], Optional[str]]] = None,
        preflight: Optional[Dict[str, object]] = None,
    ) -> SupervisedCell:
        """Run one cell under the policy; never raises unless fail_fast.

        Args:
            cell_id: Stable identifier (also the checkpoint key).
            attempt_fn: ``(seed, n_runs) -> result``; ``n_runs`` is
                ``None`` for cells without a sample count (Figure 7).
            seed: Base seed; retries derive fresh seeds from it.
            n_runs: Requested sample count, escalated adaptively.
            pvalue_of: Extracts the decision p-value (enables the
                adaptive policy).
            cycles_of: Extracts simulated cycles spent by one attempt
                (enables the per-cell budget).
            degraded_note: Returns a reason string when the result is
                usable but degraded (e.g. samples lost to faults).
            preflight: Static-classification payload to attach to (and
                journal with) the cell.
        """
        if self.store is not None and self.store.has(cell_id):
            return SupervisedCell.from_payload(self.store.load(cell_id))

        policy = self.policy
        attempts: List[AttemptRecord] = []
        n_runs_now = n_runs
        escalations = 0
        failures = 0
        cycles_spent = 0.0
        note = ""
        result: Optional[object] = None
        sequential_payload: Optional[Dict[str, object]] = None
        attempt = 0

        cell_index = cell_seed_index(cell_id)
        while True:
            seed_now = reseed(seed, attempt - escalations, cell_index)
            backoff = policy.retry.backoff_before(attempt - escalations)
            if backoff:
                self._sleep(backoff)
            record = AttemptRecord(
                attempt=attempt, seed=seed_now, n_runs=n_runs_now,
                backoff_s=backoff,
            )
            try:
                if (
                    policy.cell_cycle_budget is not None
                    and cycles_spent >= policy.cell_cycle_budget
                ):
                    raise BudgetExceededError(
                        f"cell {cell_id!r} exhausted its cycle budget "
                        f"({cycles_spent:.0f} >= "
                        f"{policy.cell_cycle_budget:.0f} simulated cycles)"
                    )
                if self.injector is not None:
                    self.injector.maybe_crash(cell_id, attempt)
                result = attempt_fn(seed_now, n_runs_now)
            except BudgetExceededError as error:
                # The budget is gone; retrying cannot restore it.
                record.error = str(error)
                record.error_type = type(error).__name__
                attempts.append(record)
                return self._conclude(
                    cell_id, None, CellClassification.FAILED, attempts,
                    escalations, str(error), error, preflight,
                )
            except ReproError as error:
                record.error = str(error)
                record.error_type = type(error).__name__
                attempts.append(record)
                failures += 1
                if failures > policy.retry.max_retries:
                    return self._conclude(
                        cell_id, None, CellClassification.FAILED, attempts,
                        escalations,
                        f"gave up after {failures} failed attempts", error,
                        preflight,
                    )
                attempt += 1
                continue

            attempts.append(record)
            outcome: Optional[SequentialOutcome] = None
            if isinstance(result, SequentialOutcome):
                # A sequential attempt did its own escalation (by
                # extension) internally; unwrap it and skip the
                # from-scratch adaptive re-run below.
                outcome = result
                sequential_payload = outcome.record
                escalations += outcome.extensions
                if outcome.note:
                    note = outcome.note
                record.n_runs = outcome.effective_n
                result = outcome.result
            if cycles_of is not None:
                cycles_spent += float(cycles_of(result))
            if degraded_note is not None:
                reason = degraded_note(result)
                if reason:
                    note = reason
            if (
                outcome is None
                and policy.adaptive is not None
                and pvalue_of is not None
                and n_runs_now is not None
                and policy.adaptive.inconclusive(pvalue_of(result))
            ):
                budget_left = (
                    policy.cell_cycle_budget is None
                    or cycles_spent < policy.cell_cycle_budget
                )
                if (
                    escalations < policy.adaptive.max_escalations
                    and budget_left
                ):
                    escalations += 1
                    n_runs_now *= policy.adaptive.escalation_factor
                    attempt += 1
                    continue
                note = note or (
                    f"p-value {pvalue_of(result):.4f} still inconclusive "
                    f"after {escalations} escalation(s)"
                )
                return self._conclude(
                    cell_id, result, CellClassification.DEGRADED,
                    attempts, escalations, note, None, preflight,
                    sequential_payload,
                )
            break

        if note:
            classification = CellClassification.DEGRADED
        elif failures or escalations:
            classification = CellClassification.RETRIED
        else:
            classification = CellClassification.CLEAN
        return self._conclude(
            cell_id, result, classification, attempts, escalations, note,
            None, preflight, sequential_payload,
        )

    def _conclude(
        self,
        cell_id: str,
        result: Optional[object],
        classification: CellClassification,
        attempts: List[AttemptRecord],
        escalations: int,
        note: str,
        error: Optional[BaseException],
        preflight: Optional[Dict[str, object]] = None,
        sequential: Optional[Dict[str, object]] = None,
    ) -> SupervisedCell:
        cell = SupervisedCell(
            cell_id=cell_id,
            result=result,
            classification=classification,
            attempts=attempts,
            escalations=escalations,
            note=note,
            preflight=preflight,
            sequential=sequential,
        )
        if classification is CellClassification.FAILED:
            if self.policy.fail_fast and error is not None:
                raise error
            # Failed cells are not journaled: a resumed run should
            # re-attempt them rather than pin the failure forever.
            return cell
        if self.store is not None:
            self.store.save(cell_id, cell.to_payload())
        return cell

    # ------------------------------------------------------------------
    def run_cell_supervised(
        self,
        cell_id: str,
        variant: AttackVariant,
        channel: ChannelType,
        predictor: str,
        n_runs: int = 100,
        seed: int = 0,
        **overrides,
    ) -> SupervisedCell:
        """Supervised version of :func:`repro.harness.experiment.run_cell`.

        When :attr:`ExecutionPolicy.preflight` is set (the default),
        the cell is first validated statically — an
        :class:`~repro.errors.AnalysisError` aborts the cell before any
        simulation budget is spent.  Cells already present in the
        checkpoint store skip the analysis (their journaled payload,
        including the stored preflight record, is reused verbatim so
        resumed artifacts stay byte-identical).

        Under :attr:`ExecutionPolicy.sequential` the cell streams its
        trials through :func:`run_sequential_cell` instead of running
        the fixed-N experiment; the supervision contract (retries,
        budget, fault injection, journaling) is unchanged.
        """
        from repro.harness.experiment import cell_runner, run_cell

        preflight_payload = self._preflight_payload(
            cell_id, variant, channel, predictor, overrides
        )

        injector = self.injector
        requested_runs = n_runs
        seq_policy = self.policy.sequential

        def build_kwargs(seed_now: int) -> Tuple[Dict[str, object], object]:
            kwargs = dict(overrides)
            if self.policy.max_trial_cycles is not None:
                kwargs.setdefault(
                    "max_trial_cycles", self.policy.max_trial_cycles
                )
            policy_backend = self.policy.effective_backend()
            if policy_backend is not None:
                kwargs.setdefault("backend", policy_backend)
            predictor_arg: object = predictor
            if injector is not None:
                if injector.profile.perturbs_dram:
                    memory_config = kwargs.get("memory_config")
                    if memory_config is None:
                        from repro.core.attack import attack_dram_config
                        memory_config = MemoryConfig(
                            dram=attack_dram_config()
                        )
                    kwargs["memory_config"] = dc_replace(
                        memory_config,
                        dram=injector.perturb_dram(memory_config.dram),
                    )
                if injector.profile.vp_corrupt_rate:
                    def corrupting_factory(confidence: int):
                        return injector.wrap_predictor(
                            make_predictor(predictor, confidence),
                            cell_id, seed_now,
                        )
                    # Preserve the reported predictor name.
                    corrupting_factory.__name__ = predictor
                    predictor_arg = corrupting_factory
            return kwargs, predictor_arg

        def attempt_fn(seed_now: int, n_runs_now: Optional[int]):
            kwargs, predictor_arg = build_kwargs(seed_now)
            if seq_policy is None:
                result = run_cell(
                    variant, channel, predictor_arg, n_runs_now, seed_now,
                    **kwargs,
                )
                if (
                    injector is not None
                    and injector.profile.perturbs_samples
                ):
                    result = _apply_sample_faults(
                        injector, result, cell_id, seed_now
                    )
                return result

            runner = cell_runner(
                variant, channel, predictor_arg, n_runs_now, seed_now,
                **kwargs,
            )
            outcome = run_sequential_cell(
                runner, seq_policy.design_for(n_runs_now),
                self.policy.adaptive,
            )
            if injector is not None and injector.profile.perturbs_samples:
                corrupted = _apply_sample_faults(
                    injector, outcome.result, cell_id, seed_now
                )
                survivors = min(
                    len(corrupted.comparison.mapped),
                    len(corrupted.comparison.unmapped),
                )
                if survivors < outcome.effective_n and not outcome.note:
                    outcome.note = (
                        f"only {survivors}/{outcome.effective_n} "
                        "samples survived fault injection"
                    )
                outcome.result = corrupted
            return outcome

        def degraded_note(result) -> Optional[str]:
            if seq_policy is not None:
                # Sequential attempts size their own samples; any
                # fault-injection degradation note is attached by
                # attempt_fn above.
                return None
            mapped = len(result.comparison.mapped)
            unmapped = len(result.comparison.unmapped)
            if mapped < requested_runs or unmapped < requested_runs:
                return (
                    f"only {min(mapped, unmapped)}/{requested_runs} "
                    "samples survived fault injection"
                )
            return None

        cell = self.supervise(
            cell_id,
            attempt_fn,
            seed=seed,
            n_runs=n_runs,
            pvalue_of=lambda result: result.pvalue,
            cycles_of=lambda result: (
                result.mean_trial_cycles * 2
                * len(result.comparison.mapped)
            ),
            degraded_note=degraded_note,
            preflight=preflight_payload,
        )
        self._enforce_static_agreement(cell, predictor)
        return cell

    def _enforce_static_agreement(
        self, cell: "SupervisedCell", predictor: object
    ) -> None:
        """Under ``strict_preflight``, verify static == dynamic verdict.

        Raises:
            AnalysisSoundnessError: When the static classification
                predicts one verdict and the measurement produced the
                other.  Control cells (``predictor="none"``) are
                expected ineffective regardless of the static verdict,
                matching the report-time agreement semantics.
        """
        if not self.policy.strict_preflight:
            return
        payload = cell.preflight if isinstance(cell.preflight, dict) else None
        classification = (
            payload.get("classification") if payload is not None else None
        )
        if not isinstance(classification, dict) or cell.result is None:
            return
        static_effective = classification.get("effective")
        if static_effective is None:
            return
        predictor_name = (
            predictor if isinstance(predictor, str)
            else getattr(predictor, "__name__", "custom")
        )
        predicted = bool(static_effective) and predictor_name not in ("none", "")
        dynamic = bool(cell.result.attack_succeeds)
        if predicted != dynamic:
            from repro.errors import AnalysisSoundnessError

            raise AnalysisSoundnessError(
                f"cell {cell.cell_id!r}: static analysis predicts "
                f"{'effective' if predicted else 'ineffective'} "
                f"({classification.get('symbol', '?')}, predictor "
                f"{predictor_name!r}) but the measurement is "
                f"{'effective' if dynamic else 'ineffective'} "
                f"(p={cell.result.pvalue:.3g})"
            )

    def _preflight_payload(
        self,
        cell_id: str,
        variant: AttackVariant,
        channel: ChannelType,
        predictor: str,
        overrides: Dict[str, object],
    ) -> Optional[Dict[str, object]]:
        """Statically validate a cell about to run for the first time.

        Raises:
            AnalysisError: When the static analyzer finds a
                contradiction (via
                :meth:`~repro.analysis.preflight.PreflightReport.raise_if_failed`).
        """
        if not self.policy.preflight:
            return None
        if self.store is not None and self.store.has(cell_id):
            return None
        from repro.analysis.preflight import preflight_cell

        kwargs: Dict[str, object] = {}
        for key in ("confidence", "chain_length", "modify_mode", "layout"):
            if overrides.get(key) is not None:
                kwargs[key] = overrides[key]
        predictor_name = (
            predictor if isinstance(predictor, str)
            else getattr(predictor, "__name__", "custom")
        )
        report = preflight_cell(
            variant, channel, predictor=predictor_name, **kwargs
        )
        report.raise_if_failed()
        return report.to_payload()

    def run_rsa_supervised(
        self,
        cell_id: str,
        exponent: int,
        seed: int = 7,
        memory_config: Optional[MemoryConfig] = None,
        **config_overrides,
    ) -> SupervisedCell:
        """Supervised version of the Figure 7 RSA exponent leak."""
        injector = self.injector

        def attempt_fn(seed_now: int, n_runs_now: Optional[int]):
            mem = memory_config
            if (
                injector is not None
                and injector.profile.perturbs_dram
                and mem is not None
            ):
                mem = dc_replace(
                    mem, dram=injector.perturb_dram(mem.dram)
                )
            kwargs = dict(config_overrides)
            if self.policy.max_trial_cycles is not None:
                kwargs.setdefault(
                    "max_trial_cycles", self.policy.max_trial_cycles
                )
            config = RsaAttackConfig(
                seed=seed_now, memory_config=mem, **kwargs
            )
            return RsaVpAttack(config).run(Mpi.from_int(exponent))

        return self.supervise(cell_id, attempt_fn, seed=seed)


def _apply_sample_faults(
    injector: FaultInjector,
    result: ExperimentResult,
    cell_id: str,
    attempt_seed: int,
) -> ExperimentResult:
    """Rebuild a result after dropping/duplicating timing samples.

    Raises (via the t-test) :class:`~repro.errors.StatsError` when too
    few samples survive — the empty-sample degraded path the executor
    retries.
    """
    comparison = result.comparison
    mapped = TimingDistribution(
        comparison.mapped.label,
        injector.corrupt_samples(
            comparison.mapped.samples, cell_id, attempt_seed, "mapped"
        ),
    )
    unmapped = TimingDistribution(
        comparison.unmapped.label,
        injector.corrupt_samples(
            comparison.unmapped.samples, cell_id, attempt_seed, "unmapped"
        ),
    )
    return dc_replace(
        result, comparison=DistributionComparison.compare(mapped, unmapped)
    )


# ----------------------------------------------------------------------
# Resilient sweep drivers (supervised analogues of experiment.py)
# ----------------------------------------------------------------------

def _slug(text: str) -> str:
    collapsed = re.sub(
        r"-+", "-",
        "".join(ch if ch.isalnum() else "-" for ch in text.lower()),
    )
    return collapsed.strip("-")


#: The four Figure 5/8 panel specifications, in paper order.
_PANEL_SPECS: Tuple[Tuple[str, ChannelType, str], ...] = (
    ("(1) Timing-Window Channel (no VP)", ChannelType.TIMING_WINDOW, "none"),
    ("(2) Timing-Window Channel (LVP)", ChannelType.TIMING_WINDOW, "lvp"),
    ("(3) Persistent Channel (no VP)", ChannelType.PERSISTENT, "none"),
    ("(4) Persistent Channel (LVP)", ChannelType.PERSISTENT, "lvp"),
)


def snapshot_overrides(
    snapshot_trials: bool, audit_snapshots: bool
) -> Dict[str, object]:
    """Sparse :class:`~repro.core.attack.AttackConfig` overrides.

    Only set flags are included, so legacy-protocol call sites build
    exactly the kwargs they always did (and journal byte-identity with
    historical runs is preserved).
    """
    overrides: Dict[str, object] = {}
    if snapshot_trials:
        overrides["snapshot_trials"] = True
    if audit_snapshots:
        overrides["audit_snapshots"] = True
    return overrides


def figure_panels_supervised(
    executor: ResilientExecutor,
    variant: AttackVariant,
    figure: str,
    n_runs: int = 100,
    seed: int = 0,
    snapshot_trials: bool = False,
    audit_snapshots: bool = False,
) -> List[Tuple[str, SupervisedCell]]:
    """Supervised Figure 5/8 panels for ``variant``."""
    overrides = snapshot_overrides(snapshot_trials, audit_snapshots)
    panels: List[Tuple[str, SupervisedCell]] = []
    for title, channel, predictor in _PANEL_SPECS:
        cell_id = f"{figure}/{channel.value}-{predictor}"
        panels.append((
            title,
            executor.run_cell_supervised(
                cell_id, variant, channel, predictor, n_runs, seed,
                **overrides,
            ),
        ))
    return panels


def table3_supervised(
    executor: ResilientExecutor,
    n_runs: int = 100,
    seed: int = 0,
    predictor: str = "lvp",
    snapshot_trials: bool = False,
    audit_snapshots: bool = False,
) -> Dict[AttackCategory, Dict[str, Optional[SupervisedCell]]]:
    """Supervised Table III sweep; resumes over the executor's store."""
    overrides = snapshot_overrides(snapshot_trials, audit_snapshots)
    results: Dict[AttackCategory, Dict[str, Optional[SupervisedCell]]] = {}
    for variant in ALL_VARIANTS:
        slug = _slug(variant.category.value)
        cells: Dict[str, Optional[SupervisedCell]] = {
            "tw_novp": None, "tw_vp": None, "pc_novp": None, "pc_vp": None,
        }
        specs = [
            ("tw_novp", ChannelType.TIMING_WINDOW, "none"),
            ("tw_vp", ChannelType.TIMING_WINDOW, predictor),
        ]
        if ChannelType.PERSISTENT in variant.supported_channels:
            specs += [
                ("pc_novp", ChannelType.PERSISTENT, "none"),
                ("pc_vp", ChannelType.PERSISTENT, predictor),
            ]
        for key, channel, cell_predictor in specs:
            cells[key] = executor.run_cell_supervised(
                f"table3/{slug}/{key}", variant, channel, cell_predictor,
                n_runs, seed, **overrides,
            )
        results[variant.category] = cells
    return results


def figure7_supervised(
    executor: ResilientExecutor,
    seed: int = 7,
    exponent: Optional[int] = None,
) -> SupervisedCell:
    """Supervised Figure 7 RSA exponent leak."""
    from repro.harness.experiment import FIGURE7_EXPONENT, RSA_DRAM

    return executor.run_rsa_supervised(
        "fig7/rsa",
        exponent if exponent is not None else FIGURE7_EXPONENT,
        seed=seed,
        memory_config=MemoryConfig(dram=RSA_DRAM),
    )


def plain_results(
    supervised: Dict[AttackCategory, Dict[str, Optional[SupervisedCell]]],
) -> Dict[AttackCategory, Dict[str, Optional[ExperimentResult]]]:
    """Strip supervision metadata: the classic table3_results shape."""
    return {
        category: {
            key: (cell.result if cell is not None else None)
            for key, cell in cells.items()
        }
        for category, cells in supervised.items()
    }


def plain_panels(
    panels: List[Tuple[str, SupervisedCell]],
) -> List[Tuple[str, ExperimentResult]]:
    """Strip supervision metadata from figure panels, dropping failures."""
    return [
        (title, cell.result)
        for title, cell in panels
        if cell.result is not None
    ]
