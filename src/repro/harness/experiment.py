"""High-level experiment drivers, one per paper table/figure.

Every function here regenerates the data behind one table or figure
of the paper; the benchmark suite and the examples are thin wrappers
over these.  Runs are deterministic for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attack import AttackConfig, AttackRunner, ExperimentResult
from repro.core.channels import ChannelType
from repro.core.model import AttackCategory
from repro.core.variants import (
    AttackVariant,
    TestHitAttack,
    TrainTestAttack,
)
from repro.crypto.leak import RsaAttackResult
from repro.defenses.base import Defense
from repro.defenses.random_window import RandomWindowDefense
from repro.errors import HarnessError
from repro.memory.memsys import DramConfig
from repro.stats.ttest import ALPHA

#: The 60-bit exponent used by the Figure 7 demonstration (60
#: iterations, as in the paper's "60 runs").
FIGURE7_EXPONENT = 0b101101110010110101001110110101100011010111001011010100111011

#: Moderate-noise DRAM model for the RSA case study: wide enough that
#: the per-bit success rate is realistically below 100 % (the paper
#: reports 95.7 %), narrow enough that the Figure 7 bands stay visible.
RSA_DRAM = DramConfig(
    base_latency=180, jitter=48, tail_probability=0.02, tail_extra=80
)


def cell_runner(
    variant: AttackVariant,
    channel: ChannelType,
    predictor: str,
    n_runs: int = 100,
    seed: int = 0,
    defense: Optional[Defense] = None,
    **overrides,
) -> AttackRunner:
    """The configured :class:`AttackRunner` behind one experiment cell.

    Shared by :func:`run_cell` (fixed-N) and the group-sequential
    harness path, which streams the same runner incrementally instead
    of running it to the fixed cap.
    """
    config = AttackConfig(
        n_runs=n_runs,
        channel=channel,
        predictor=predictor,
        seed=seed,
        defense=defense,
        **overrides,
    )
    return AttackRunner(variant, config)


def run_cell(
    variant: AttackVariant,
    channel: ChannelType,
    predictor: str,
    n_runs: int = 100,
    seed: int = 0,
    defense: Optional[Defense] = None,
    **overrides,
) -> ExperimentResult:
    """Run one (attack, channel, predictor) experiment cell."""
    return cell_runner(
        variant, channel, predictor, n_runs, seed, defense=defense,
        **overrides,
    ).run_experiment()


def _default_executor(executor):
    """The behaviour-preserving supervised executor used by drivers.

    Every driver below runs its cells through the resilient execution
    layer; the default :meth:`ExecutionPolicy.compat` policy only
    intervenes on errors, so results are identical to the historical
    fire-and-forget harness unless something actually fails.
    """
    if executor is not None:
        return executor
    from repro.harness.runner import ResilientExecutor
    return ResilientExecutor()


def figure5_panels(
    n_runs: int = 100, seed: int = 0, executor=None,
) -> List[Tuple[str, ExperimentResult]]:
    """Figure 5: Train + Test with/without a VP, both channels.

    Panels (1)–(4): timing-window no-VP, timing-window LVP, persistent
    no-VP, persistent LVP.  Expected shape: the no-VP p-values are
    above 0.05 and the LVP ones below.
    """
    from repro.harness.runner import figure_panels_supervised, plain_panels

    return plain_panels(figure_panels_supervised(
        _default_executor(executor), TrainTestAttack(), "fig5",
        n_runs, seed,
    ))


def figure8_panels(
    n_runs: int = 100, seed: int = 0, executor=None,
) -> List[Tuple[str, ExperimentResult]]:
    """Figure 8: Test + Hit, same four panels as Figure 5."""
    from repro.harness.runner import figure_panels_supervised, plain_panels

    return plain_panels(figure_panels_supervised(
        _default_executor(executor), TestHitAttack(), "fig8",
        n_runs, seed,
    ))


def table3_results(
    n_runs: int = 100, seed: int = 0, predictor: str = "lvp",
    executor=None,
) -> Dict[AttackCategory, Dict[str, Optional[ExperimentResult]]]:
    """Table III: every category x channel x {no VP, VP} cell."""
    from repro.harness.runner import plain_results, table3_supervised

    return plain_results(table3_supervised(
        _default_executor(executor), n_runs, seed, predictor
    ))


def figure7_result(seed: int = 7, exponent: int = FIGURE7_EXPONENT,
                   executor=None) -> RsaAttackResult:
    """Figure 7: the per-iteration RSA exponent leak."""
    from repro.harness.runner import figure7_supervised

    cell = figure7_supervised(
        _default_executor(executor), seed=seed, exponent=exponent
    )
    if cell.result is None:
        raise HarnessError(
            f"Figure 7 cell failed permanently: {cell.note or 'no result'}"
        )
    return cell.result


def window_sweep(
    variant: AttackVariant,
    windows: Sequence[int],
    n_runs: int = 100,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    channel: ChannelType = ChannelType.TIMING_WINDOW,
    chain_length: Optional[int] = None,
    core_config=None,
) -> Tuple[List[Tuple[int, float]], Optional[int]]:
    """Section VI-B: sweep the R-type window size over one attack.

    For each window size the experiment runs once per seed (machine
    noise *and* the defense's random stream both vary with the seed)
    and the reported p-value is the median — the security boundary is
    a statistical threshold-crossing, and a single seed can wobble it
    by one or two window sizes.

    Returns the (window, median p-value) rows and the minimal *stable*
    secure window: the smallest size from which every swept window
    stays above 0.05.
    """
    if not windows:
        raise HarnessError("window sweep needs at least one window size")
    if not seeds:
        raise HarnessError("window sweep needs at least one seed")
    rows: List[Tuple[int, float]] = []
    for window in windows:
        pvalues = []
        for seed in seeds:
            result = run_cell(
                variant, channel, "lvp", n_runs, seed,
                defense=RandomWindowDefense(
                    window_size=window, seed=0x5EED ^ (seed * 2654435761)
                ),
                chain_length=chain_length,
                core_config=core_config,
            )
            pvalues.append(result.pvalue)
        pvalues.sort()
        median = pvalues[len(pvalues) // 2]
        rows.append((window, median))
    secure_at: Optional[int] = None
    for index in range(len(rows)):
        if all(pvalue >= ALPHA for _, pvalue in rows[index:]):
            secure_at = rows[index][0]
            break
    return rows, secure_at


def defense_matrix(
    cases: Sequence[Tuple[AttackVariant, ChannelType, Optional[Defense], str]],
    n_runs: int = 60,
    seed: int = 4,
) -> List[Dict[str, object]]:
    """Evaluate a list of (attack, channel, defense, label) cases."""
    rows: List[Dict[str, object]] = []
    for variant, channel, defense, label in cases:
        result = run_cell(
            variant, channel, "lvp", n_runs, seed, defense=defense
        )
        rows.append({
            "attack": variant.name,
            "channel": channel.value,
            "defense": label,
            "pvalue": result.pvalue,
        })
    return rows


def predictor_comparison(
    n_runs: int = 100,
    seed: int = 0,
    predictors: Sequence[str] = ("lvp", "vtage"),
    use_oracle: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Section IV-D3: do the attacks work on other predictor types?

    Returns ``{predictor: {attack: pvalue}}`` for Train + Test and
    Test + Hit on the timing-window channel.
    """
    out: Dict[str, Dict[str, float]] = {}
    for predictor in predictors:
        out[predictor] = {}
        for variant in (TrainTestAttack(), TestHitAttack()):
            result = run_cell(
                variant, ChannelType.TIMING_WINDOW, predictor, n_runs, seed,
                use_oracle=use_oracle,
            )
            out[predictor][variant.name] = result.pvalue
    return out
