"""ASCII renderers for the paper's figures.

Figures 5 and 8 are frequency histograms of mapped/unmapped timing
distributions (0–600 cycles, with the p-value annotated; "red" in the
paper becomes an ``[EFFECTIVE]`` marker here).  Figure 7 is a scatter
of per-iteration observations for exponent bits 0 and 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.stats.distributions import TimingDistribution, frequency_histogram
from repro.stats.ttest import ALPHA

#: Characters used for the two overlaid series.
_MAPPED_CHAR = "#"
_UNMAPPED_CHAR = "."

#: Width of the histogram bars in characters.
_BAR_WIDTH = 40


def render_histogram_panel(
    title: str,
    mapped: TimingDistribution,
    unmapped: TimingDistribution,
    pvalue: float,
    bin_width: float = 25.0,
    low: float = 0.0,
    high: float = 600.0,
    mapped_label: str = "mapped",
    unmapped_label: str = "unmapped",
) -> str:
    """One Figure 5/8-style panel as ASCII art.

    Each bin shows two bars: ``#`` for the mapped distribution and
    ``.`` for the unmapped one, scaled to percent of runs.
    """
    mapped_bins = frequency_histogram(
        mapped.samples, bin_width=bin_width, low=low, high=high
    )
    unmapped_bins = frequency_histogram(
        unmapped.samples, bin_width=bin_width, low=low, high=high
    )
    effective = pvalue < ALPHA
    marker = "[EFFECTIVE]" if effective else "[not effective]"
    lines = [
        f"--- {title} ---",
        f"pvalue={pvalue:.4f} {marker}   "
        f"{_MAPPED_CHAR}={mapped_label} (n={len(mapped)})   "
        f"{_UNMAPPED_CHAR}={unmapped_label} (n={len(unmapped)})",
    ]
    peak = max(
        [frequency for _, frequency in mapped_bins]
        + [frequency for _, frequency in unmapped_bins]
        + [1.0]
    )
    for (start, mapped_pct), (_, unmapped_pct) in zip(mapped_bins, unmapped_bins):
        if mapped_pct == 0.0 and unmapped_pct == 0.0:
            continue
        mapped_bar = _MAPPED_CHAR * round(_BAR_WIDTH * mapped_pct / peak)
        unmapped_bar = _UNMAPPED_CHAR * round(_BAR_WIDTH * unmapped_pct / peak)
        lines.append(
            f"{start:6.0f}-{start + bin_width:<6.0f} "
            f"|{mapped_bar:<{_BAR_WIDTH}}| {mapped_pct:5.1f}%  "
            f"|{unmapped_bar:<{_BAR_WIDTH}}| {unmapped_pct:5.1f}%"
        )
    return "\n".join(lines)


def render_figure(
    figure_title: str,
    panels: Sequence[Tuple[str, TimingDistribution, TimingDistribution, float]],
    mapped_label: str = "mapped",
    unmapped_label: str = "unmapped",
) -> str:
    """A multi-panel figure (Figures 5 and 8 have four panels)."""
    parts = [f"=== {figure_title} ==="]
    for title, mapped, unmapped, pvalue in panels:
        parts.append(
            render_histogram_panel(
                title, mapped, unmapped, pvalue,
                mapped_label=mapped_label, unmapped_label=unmapped_label,
            )
        )
    return "\n\n".join(parts)


def render_iteration_scatter(
    title: str,
    observations: Sequence[float],
    bits: Sequence[int],
    height: int = 12,
) -> str:
    """Figure 7-style scatter: observation vs. iteration, marked by bit.

    ``o`` marks iterations whose true exponent bit is 0, ``x`` marks
    bit 1; the two horizontal bands are the attack's signal.
    """
    if not observations or len(observations) != len(bits):
        return f"--- {title} --- (no data)"
    low = min(observations)
    high = max(observations)
    span = max(high - low, 1.0)
    rows = [[" "] * len(observations) for _ in range(height)]
    for column, (value, bit) in enumerate(zip(observations, bits)):
        row = int((high - value) / span * (height - 1))
        rows[row][column] = "x" if bit else "o"
    lines = [f"--- {title} ---", "o = e_bit 0, x = e_bit 1"]
    for index, row in enumerate(rows):
        level = high - span * index / (height - 1)
        lines.append(f"{level:7.0f} |{''.join(row)}")
    lines.append(" " * 8 + "+" + "-" * len(observations))
    lines.append(" " * 9 + f"iteration 0..{len(observations) - 1}")
    return "\n".join(lines)
