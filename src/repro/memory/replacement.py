"""Cache replacement policies.

Policies are stateful per cache set.  The cache calls
:meth:`ReplacementPolicy.on_access` on every hit or fill and
:meth:`ReplacementPolicy.victim` when a fill needs to evict.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import MemorySystemError


class ReplacementPolicy(abc.ABC):
    """Replacement state for one cache set with ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise MemorySystemError(f"ways must be >= 1, got {ways}")
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, way: int) -> None:
        """Record a hit or fill on ``way``."""

    @abc.abstractmethod
    def victim(self, valid: Sequence[bool]) -> int:
        """Choose the way to evict.

        Args:
            valid: Per-way validity; invalid ways are always preferred.
        """

    def on_invalidate(self, way: int) -> None:
        """Record that ``way`` was invalidated (optional hook)."""

    def reset(self) -> None:
        """Restore the as-constructed replacement state.

        Part of the warm-machine reset protocol: a reset policy must
        be indistinguishable from a freshly constructed one so reused
        simulation state stays byte-identical to cold construction.
        """

    def snapshot(self) -> object:
        """Opaque immutable replacement state (snapshot/fork protocol).

        Policies whose only state is the RNG shared with the owning
        cache (random replacement) have nothing of their own to save;
        the cache captures that RNG once for all of its sets.
        """
        return None

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`."""
        if state is not None:
            raise MemorySystemError(
                f"unexpected replacement snapshot state {state!r}"
            )

    def _first_invalid(self, valid: Sequence[bool]) -> Optional[int]:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return None


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Most recent at the end.
        self._order: List[int] = list(range(ways))

    def on_access(self, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_access`."""
        self._order.remove(way)
        self._order.append(way)

    def victim(self, valid: Sequence[bool]) -> int:
        """See :meth:`ReplacementPolicy.victim`."""
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._order[0]

    def reset(self) -> None:
        """See :meth:`ReplacementPolicy.reset`."""
        self._order = list(range(self.ways))

    def snapshot(self) -> object:
        """See :meth:`ReplacementPolicy.snapshot`."""
        return tuple(self._order)

    def restore(self, state: object) -> None:
        """See :meth:`ReplacementPolicy.restore`."""
        self._order = list(state)  # type: ignore[arg-type]


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (insertion order, hits ignored)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._inserted: List[int] = list(range(ways))
        self._filled: Dict[int, bool] = {w: False for w in range(ways)}

    def on_access(self, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_access`."""
        if not self._filled[way]:
            self._filled[way] = True
            self._inserted.remove(way)
            self._inserted.append(way)

    def on_invalidate(self, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_invalidate`."""
        self._filled[way] = False

    def victim(self, valid: Sequence[bool]) -> int:
        """See :meth:`ReplacementPolicy.victim`."""
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        way = self._inserted[0]
        self._filled[way] = False
        return way

    def reset(self) -> None:
        """See :meth:`ReplacementPolicy.reset`."""
        self._inserted = list(range(self.ways))
        self._filled = {way: False for way in range(self.ways)}

    def snapshot(self) -> object:
        """See :meth:`ReplacementPolicy.snapshot`."""
        return (
            tuple(self._inserted),
            tuple(self._filled[way] for way in range(self.ways)),
        )

    def restore(self, state: object) -> None:
        """See :meth:`ReplacementPolicy.restore`."""
        inserted, filled = state  # type: ignore[misc]
        self._inserted = list(inserted)
        self._filled = {way: filled[way] for way in range(self.ways)}


class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement with a seeded generator."""

    def __init__(self, ways: int, rng: Optional[random.Random] = None) -> None:
        super().__init__(ways)
        self._rng = rng or random.Random(0)

    def on_access(self, way: int) -> None:
        """See :meth:`ReplacementPolicy.on_access`."""
        pass

    def victim(self, valid: Sequence[bool]) -> int:
        """See :meth:`ReplacementPolicy.victim`."""
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.ways)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(
    name: str, ways: int, rng: Optional[random.Random] = None
) -> ReplacementPolicy:
    """Construct a replacement policy by name (``lru``/``fifo``/``random``).

    Raises:
        MemorySystemError: For unknown policy names.
    """
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise MemorySystemError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if factory is RandomPolicy:
        return RandomPolicy(ways, rng=rng)
    return factory(ways)
