"""Address-space mapping helpers.

The simulator runs multiple processes (sender and receiver) on a
shared memory hierarchy.  Each process uses *virtual* addresses; the
cache hierarchy is indexed by *physical* addresses.  The mapping is
deliberately simple and deterministic:

* Private data: physical address = ``(pid + 1) << PID_SHIFT | vaddr``,
  so different processes never alias in the caches.
* Shared regions (e.g. a shared library or a shared-memory segment):
  any process's virtual range maps to one common physical range, so
  FLUSH+RELOAD across processes works, as the paper's persistent
  channels require.

The Value Prediction System, in contrast, is indexed by *virtual*
addresses (per the paper's threat model, Section II footnote 1),
optionally mixed with the pid — that logic lives in
:mod:`repro.vp.indexing`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MemorySystemError

#: Bit position where the pid is inserted to form private physical addresses.
PID_SHIFT = 48

#: Base of the physical region backing shared segments.
SHARED_PHYS_BASE = 0x7F00_0000_0000


@dataclass(frozen=True)
class SharedRegion:
    """A virtual address range shared by all processes.

    Attributes:
        base: Starting virtual address of the shared range.
        size: Size of the range in bytes.
        phys_base: Physical base address backing the range.
    """

    base: int
    size: int
    phys_base: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemorySystemError(f"shared region size must be positive, got {self.size}")
        if self.base < 0 or self.phys_base < 0:
            raise MemorySystemError("shared region addresses must be non-negative")

    def contains(self, vaddr: int) -> bool:
        """True when the address falls inside the region."""
        return self.base <= vaddr < self.base + self.size

    def translate(self, vaddr: int) -> int:
        """Physical address for a virtual one inside the region."""
        return self.phys_base + (vaddr - self.base)


class AddressMapper:
    """Translates (pid, virtual address) pairs to physical addresses."""

    def __init__(self) -> None:
        self._shared: List[SharedRegion] = []
        self._next_shared_phys = SHARED_PHYS_BASE

    def add_shared_region(self, base: int, size: int) -> SharedRegion:
        """Register a virtual range as shared among all processes.

        Returns the created :class:`SharedRegion`.

        Raises:
            MemorySystemError: If the range overlaps an existing shared
                region.
        """
        for existing in self._shared:
            if base < existing.base + existing.size and existing.base < base + size:
                raise MemorySystemError(
                    f"shared region [{base:#x}, {base + size:#x}) overlaps "
                    f"existing region at {existing.base:#x}"
                )
        region = SharedRegion(base=base, size=size, phys_base=self._next_shared_phys)
        self._next_shared_phys += _round_up(size, 4096)
        self._shared.append(region)
        return region

    def translate(self, pid: int, vaddr: int) -> int:
        """Translate a virtual address for process ``pid``.

        Raises:
            MemorySystemError: For negative addresses or pids, or virtual
                addresses large enough to collide with the pid field.
        """
        if vaddr < 0:
            raise MemorySystemError(f"negative virtual address {vaddr:#x}")
        if pid < 0:
            raise MemorySystemError(f"negative pid {pid}")
        for region in self._shared:
            if region.contains(vaddr):
                return region.translate(vaddr)
        if vaddr >= (1 << PID_SHIFT) - (1 << 44):
            # Reserve the top of the virtual space so private translations
            # cannot collide with the shared physical window.
            raise MemorySystemError(
                f"virtual address {vaddr:#x} exceeds private address space"
            )
        return ((pid + 1) << PID_SHIFT) | vaddr

    def is_shared(self, vaddr: int) -> bool:
        """True if ``vaddr`` falls in any shared region."""
        return any(region.contains(vaddr) for region in self._shared)

    @property
    def shared_regions(self) -> Tuple[SharedRegion, ...]:
        """The registered shared regions."""
        return tuple(self._shared)


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def line_address(addr: int, line_size: int) -> int:
    """The base address of the cache line containing ``addr``."""
    return addr - (addr % line_size)


def split_address(addr: int, line_size: int, num_sets: int) -> Tuple[int, int]:
    """Split ``addr`` into (set index, tag) for a set-associative cache."""
    line = addr // line_size
    return line % num_sets, line // num_sets
