"""DRAM latency model and backing value store.

Two concerns live here:

* :class:`DramModel` — main-memory access latency with configurable
  jitter and occasional long-tail disturbances.  Realistic dispersion
  matters because the paper judges attacks by whether two *timing
  distributions* are statistically distinguishable (Student's t-test
  over 100 runs); a noiseless model would make every attack trivially
  "work".
* :class:`BackingStore` — the architectural memory contents.  Value
  prediction is about *data values*: a prediction verifies correctly
  iff the predicted value equals the loaded one, so the simulator
  needs real values behind every address.  Unwritten locations return
  a deterministic pseudo-random default so two unrelated addresses
  essentially never hold equal values (the paper's footnote 4 makes
  the same ~2^-64 collision argument).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import MemorySystemError

_VALUE_MASK = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """SplitMix64 mixing function; deterministic default memory values."""
    value = (value + 0x9E3779B97F4A7C15) & _VALUE_MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _VALUE_MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _VALUE_MASK
    return value ^ (value >> 31)


@dataclass
class DramConfig:
    """Main-memory timing parameters (cycles).

    Attributes:
        base_latency: Minimum access latency.
        jitter: Uniform extra latency in ``[0, jitter]`` per access,
            modelling row-buffer state, scheduling and interconnect
            variation.
        tail_probability: Probability of an additional long-tail delay
            (e.g. refresh collision).
        tail_extra: Size of the long-tail delay in cycles.
    """

    base_latency: int = 180
    jitter: int = 24
    tail_probability: float = 0.02
    tail_extra: int = 60

    def __post_init__(self) -> None:
        if self.base_latency < 1:
            raise MemorySystemError("DRAM base latency must be >= 1")
        if self.jitter < 0:
            raise MemorySystemError("DRAM jitter must be >= 0")
        if not 0.0 <= self.tail_probability <= 1.0:
            raise MemorySystemError("tail probability must be in [0, 1]")
        if self.tail_extra < 0:
            raise MemorySystemError("tail extra latency must be >= 0")


class DramModel:
    """Draws per-access main-memory latencies from a seeded generator."""

    def __init__(self, config: Optional[DramConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config or DramConfig()
        self._rng = rng or random.Random(0xD7A3)
        self.accesses = 0

    def reset(self, rng_seed: Optional[int] = None) -> None:
        """Reseed the latency stream and zero the access counter.

        With the seed a fresh construction would have used, the reset
        model draws the exact latency sequence of a new
        :class:`DramModel` — the warm-machine reset protocol.
        """
        if rng_seed is not None:
            self._rng.seed(rng_seed)
        self.accesses = 0

    def reseed(self, rng_seed: int) -> None:
        """Reseed the latency stream without zeroing the access counter.

        Used by the snapshot/fork protocol to start a trial's measured
        window on a fresh per-trial jitter stream while the counters
        keep the forked prologue history.
        """
        self._rng.seed(rng_seed)

    def snapshot(self) -> object:
        """Opaque immutable state (snapshot/fork protocol)."""
        return (self._rng.getstate(), self.accesses)

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`."""
        rng_state, self.accesses = state  # type: ignore[misc]
        self._rng.setstate(rng_state)

    def access_latency(self) -> int:
        """Latency of one main-memory access, in cycles."""
        self.accesses += 1
        config = self.config
        latency = config.base_latency
        if config.jitter:
            latency += self._rng.randint(0, config.jitter)
        if config.tail_extra and self._rng.random() < config.tail_probability:
            latency += config.tail_extra
        return latency


class BackingStore:
    """Architectural memory values, keyed by physical address.

    Unwritten addresses return a deterministic pseudo-random 64-bit
    default derived from the address, so distinct locations hold
    distinct-looking values.
    """

    def __init__(self, default_seed: int = 0) -> None:
        self._values: Dict[int, int] = {}
        self._default_seed = default_seed & _VALUE_MASK

    def read(self, paddr: int) -> int:
        """Value at ``paddr`` (deterministic default when unwritten)."""
        try:
            return self._values[paddr]
        except KeyError:
            return _splitmix64(paddr ^ self._default_seed)

    def write(self, paddr: int, value: int) -> None:
        """Store ``value`` (truncated to 64 bits) at ``paddr``."""
        self._values[paddr] = value & _VALUE_MASK

    def is_written(self, paddr: int) -> bool:
        """True if ``paddr`` was explicitly written."""
        return paddr in self._values

    def written_count(self) -> int:
        """Number of explicitly written locations."""
        return len(self._values)

    def clear(self) -> None:
        """Forget all explicit writes (defaults become visible again)."""
        self._values.clear()

    def reset(self, default_seed: Optional[int] = None) -> None:
        """Forget writes and (optionally) rebase the default values."""
        self._values.clear()
        if default_seed is not None:
            self._default_seed = default_seed & _VALUE_MASK

    def snapshot(self) -> object:
        """Opaque state: a shallow copy of the written values.

        The value dict is flat (int -> int), so a plain ``dict`` copy
        gives full isolation without a deepcopy.
        """
        return (dict(self._values), self._default_seed)

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot`."""
        values, self._default_seed = state  # type: ignore[misc]
        self._values = dict(values)
