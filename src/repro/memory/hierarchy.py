"""Memory hierarchy facade: TLB + L1D + L2 + DRAM + backing values.

This is the memory system of Figure 1 ("main caches, TLBs, memory").
The pipeline interacts with it through :class:`MemorySystem`:

* :meth:`MemorySystem.load` returns the loaded value, the total access
  latency, and whether it hit in L1 — an L1 *miss* is what engages the
  load-based Value Prediction System per the paper's threat model.
* Fills can be deferred (``fill=False`` plus a later
  :meth:`MemorySystem.apply_fill`), which is the hook used by the
  D-type (delay side-effects) defense and the InvisiSpec-like baseline:
  a speculative load obtains data and timing without perturbing cache
  state until it is safe to do so.
* :meth:`MemorySystem.flush` implements ``clflush``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from repro.errors import MemorySystemError
from repro.memory.address import AddressMapper, SharedRegion, line_address
from repro.memory.cache import SetAssociativeCache
from repro.memory.memsys import BackingStore, DramConfig, DramModel
from repro.memory.tlb import Tlb


@dataclass
class MemoryConfig:
    """Configuration of the whole memory hierarchy (latencies in cycles)."""

    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l1_hit_latency: int = 3
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    l2_hit_latency: int = 14
    l2_jitter: int = 3
    replacement_policy: str = "lru"
    tlb_entries: int = 64
    tlb_page_size: int = 4096
    tlb_walk_latency: int = 24
    dram: DramConfig = field(default_factory=DramConfig)
    flush_latency: int = 8
    store_latency: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("l1_hit_latency", "l2_hit_latency", "flush_latency",
                     "store_latency"):
            if getattr(self, name) < 0:
                raise MemorySystemError(f"{name} must be >= 0")
        if self.l2_jitter < 0:
            raise MemorySystemError("l2_jitter must be >= 0")


@dataclass(frozen=True)
class LoadResult:
    """Outcome of a data load.

    Attributes:
        value: The architectural value read.
        latency: Total cycles until the value is available.
        l1_hit: True if the access hit in the L1 data cache.
        l2_hit: True if the access hit in L2 (only meaningful when
            ``l1_hit`` is False).
        paddr: Physical address, usable with
            :meth:`MemorySystem.apply_fill` for deferred fills.
        tlb_latency: The portion of ``latency`` spent on a TLB walk.
    """

    value: int
    latency: int
    l1_hit: bool
    l2_hit: bool
    paddr: int
    tlb_latency: int = 0


class MemorySystem:
    """The shared memory hierarchy used by all simulated processes."""

    def __init__(
        self,
        config: Optional[MemoryConfig] = None,
        mapper: Optional[AddressMapper] = None,
    ) -> None:
        self.config = config or MemoryConfig()
        self.mapper = mapper or AddressMapper()
        seed = self.config.seed
        self._rng = random.Random(seed ^ 0xC0FFEE)
        self.l1 = SetAssociativeCache(
            "L1D",
            self.config.l1_size,
            self.config.l1_ways,
            line_size=self.config.line_size,
            policy=self.config.replacement_policy,
            rng=random.Random(seed ^ 0x11),
        )
        self.l2 = SetAssociativeCache(
            "L2",
            self.config.l2_size,
            self.config.l2_ways,
            line_size=self.config.line_size,
            policy=self.config.replacement_policy,
            rng=random.Random(seed ^ 0x22),
        )
        self.tlb = Tlb(
            entries=self.config.tlb_entries,
            page_size=self.config.tlb_page_size,
            walk_latency=self.config.tlb_walk_latency,
        )
        self.dram = DramModel(self.config.dram, rng=random.Random(seed ^ 0x33))
        self.store_values = BackingStore(default_seed=seed)

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore the hierarchy to its just-constructed state.

        The warm-machine reset protocol: instead of rebuilding every
        cache set, TLB entry and RNG per trial, a reused
        :class:`MemorySystem` is reset in place under a (possibly new)
        seed.  After ``reset(s)`` the hierarchy's observable behaviour —
        hit/miss sequences, replacement decisions, DRAM latency draws,
        default memory values — is byte-identical to
        ``MemorySystem(replace(config, seed=s), mapper)`` with the same
        shared regions already registered.  The address mapper is
        deliberately untouched: translations are stateless and region
        registration is not idempotent.
        """
        if seed is None:
            seed = self.config.seed
        else:
            self.config = dc_replace(self.config, seed=seed)
        self._rng.seed(seed ^ 0xC0FFEE)
        self.l1.reset(seed ^ 0x11)
        self.l2.reset(seed ^ 0x22)
        self.tlb.reset()
        self.dram.reset(seed ^ 0x33)
        self.store_values.reset(seed)

    def snapshot(self) -> object:
        """Capture the whole hierarchy's mutable state, cheaply.

        Part of the snapshot/fork protocol (:mod:`repro.snapshot`):
        every component contributes an immutable (or shallow-copied)
        state object, so ``snapshot`` + :meth:`restore` is equivalent
        to replaying the exact access history since construction — but
        costs dictionary/tuple copies instead of simulation.  The
        address mapper is excluded for the same reason :meth:`reset`
        skips it: translations are stateless and region registration
        is not idempotent, so snapshots must be restored onto a
        hierarchy with the same regions already registered.
        """
        return (
            self.config.seed,
            self._rng.getstate(),
            self.l1.snapshot(),
            self.l2.snapshot(),
            self.tlb.snapshot(),
            self.dram.snapshot(),
            self.store_values.snapshot(),
        )

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot` (in place)."""
        (seed, rng_state, l1_state, l2_state, tlb_state, dram_state,
         store_state) = state  # type: ignore[misc]
        if seed != self.config.seed:
            self.config = dc_replace(self.config, seed=seed)
        self._rng.setstate(rng_state)
        self.l1.restore(l1_state)
        self.l2.restore(l2_state)
        self.tlb.restore(tlb_state)
        self.dram.restore(dram_state)
        self.store_values.restore(store_state)

    def reseed_jitter(self, seed: int) -> None:
        """Reseed only the latency-jitter RNG streams (L2 + DRAM).

        The prologue-memoization fork re-enters the measured window of
        a trial from a shared post-prologue snapshot; per-trial timing
        variation must still come from somewhere, so the two jitter
        sources — the L2 hit jitter stream and the DRAM latency
        stream — are reseeded with the trial seed while every piece of
        architectural and replacement state stays forked.  Uses the
        same seed derivation as :meth:`reset` so a cold machine built
        under ``seed`` draws the identical latency sequence.
        """
        self._rng.seed(seed ^ 0xC0FFEE)
        self.dram.reseed(seed ^ 0x33)

    # ------------------------------------------------------------------
    # Architectural (timing-free) accessors
    # ------------------------------------------------------------------
    def translate(self, pid: int, vaddr: int) -> int:
        """Virtual-to-physical translation (no timing side effects)."""
        return self.mapper.translate(pid, vaddr)

    def read_value(self, pid: int, vaddr: int) -> int:
        """Architectural read without touching caches or TLB."""
        return self.store_values.read(self.translate(pid, vaddr))

    def write_value(self, pid: int, vaddr: int, value: int) -> None:
        """Architectural write without touching caches or TLB."""
        self.store_values.write(self.translate(pid, vaddr), value)

    def add_shared_region(self, base: int, size: int) -> SharedRegion:
        """Expose a virtual range as shared between all processes."""
        return self.mapper.add_shared_region(base, size)

    # ------------------------------------------------------------------
    # Timed accesses
    # ------------------------------------------------------------------
    def load(self, pid: int, vaddr: int, fill: bool = True) -> LoadResult:
        """Perform a timed load.

        Args:
            pid: Issuing process.
            vaddr: Virtual address.
            fill: When False, the access computes value and latency but
                leaves all cache/replacement state untouched (used for
                speculative loads under delayed-side-effect defenses).
        """
        paddr = self.translate(pid, vaddr)
        tlb_latency = self.tlb.access(pid, vaddr) if fill else (
            0 if self.tlb.contains(pid, vaddr) else self.tlb.walk_latency
        )
        line = line_address(paddr, self.config.line_size)
        if fill:
            l1_hit = self.l1.lookup(line)
        else:
            l1_hit = self.l1.contains(line)
        if l1_hit:
            latency = self.config.l1_hit_latency + tlb_latency
            return LoadResult(
                value=self.store_values.read(paddr),
                latency=latency,
                l1_hit=True,
                l2_hit=False,
                paddr=paddr,
                tlb_latency=tlb_latency,
            )
        if fill:
            l2_hit = self.l2.lookup(line)
        else:
            l2_hit = self.l2.contains(line)
        if l2_hit:
            latency = (
                self.config.l1_hit_latency
                + self.config.l2_hit_latency
                + (self._rng.randint(0, self.config.l2_jitter)
                   if self.config.l2_jitter else 0)
                + tlb_latency
            )
        else:
            latency = (
                self.config.l1_hit_latency
                + self.config.l2_hit_latency
                + self.dram.access_latency()
                + tlb_latency
            )
        if fill:
            self.apply_fill(paddr)
        return LoadResult(
            value=self.store_values.read(paddr),
            latency=latency,
            l1_hit=False,
            l2_hit=l2_hit,
            paddr=paddr,
            tlb_latency=tlb_latency,
        )

    def apply_fill(self, paddr: int) -> None:
        """Install the line containing ``paddr`` into L1 and L2."""
        line = line_address(paddr, self.config.line_size)
        self.l2.fill(line)
        self.l1.fill(line)

    def apply_deferred_fill(self, paddr: int, pid: int, vaddr: int) -> None:
        """Apply a fill that was deferred by a defense, TLB included.

        A load issued with ``fill=False`` left *all* microarchitectural
        state untouched — including the TLB.  When the deferred fill is
        finally released, the translation becomes visible too;
        otherwise a warm-vs-cold TLB difference would itself leak (an
        artifact this simulator exposed during development).
        """
        self.tlb.access(pid, vaddr)
        self.apply_fill(paddr)

    def store(self, pid: int, vaddr: int, value: int) -> int:
        """Perform a timed store (write-allocate); returns latency.

        Stores complete into a write buffer from the pipeline's point
        of view, so their visible latency is small; they do allocate
        the line.
        """
        paddr = self.translate(pid, vaddr)
        tlb_latency = self.tlb.access(pid, vaddr)
        self.store_values.write(paddr, value)
        line = line_address(paddr, self.config.line_size)
        hit = self.l1.lookup(line)
        if not hit:
            self.l2.lookup(line)
            self.apply_fill(paddr)
        return self.config.store_latency + tlb_latency

    def flush(self, pid: int, vaddr: int) -> int:
        """Flush the line containing ``vaddr`` from all levels."""
        paddr = self.translate(pid, vaddr)
        line = line_address(paddr, self.config.line_size)
        self.l1.invalidate(line)
        self.l2.invalidate(line)
        return self.config.flush_latency

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def is_cached(self, pid: int, vaddr: int) -> bool:
        """True if the line holding ``vaddr`` is in L1 or L2 (no side effects)."""
        paddr = self.translate(pid, vaddr)
        line = line_address(paddr, self.config.line_size)
        return self.l1.contains(line) or self.l2.contains(line)

    def reset_stats(self) -> None:
        """Zero all hit/miss counters (cache contents are preserved)."""
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.tlb.stats.reset()
