"""A small fully-associative TLB model.

The TLB contributes realistic extra latency on the first touch of a
page.  Entries are keyed by (pid, virtual page number) so processes do
not share translations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.errors import MemorySystemError


@dataclass
class TlbStats:
    """Hit/miss counters for the TLB."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.hits + self.misses

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Tuple[int, int]:
        """Counter values as an immutable tuple (snapshot/fork protocol)."""
        return (self.hits, self.misses)

    def restore(self, state: Tuple[int, int]) -> None:
        """Restore counters captured by :meth:`snapshot`."""
        self.hits, self.misses = state


class Tlb:
    """Fully-associative, LRU-replaced translation lookaside buffer.

    Args:
        entries: Capacity in translations.
        page_size: Page size in bytes (power of two).
        walk_latency: Extra cycles added on a TLB miss (page walk).
    """

    def __init__(
        self,
        entries: int = 64,
        page_size: int = 4096,
        walk_latency: int = 30,
    ) -> None:
        if entries < 1:
            raise MemorySystemError(f"TLB entries must be >= 1, got {entries}")
        if page_size <= 0 or (page_size & (page_size - 1)) != 0:
            raise MemorySystemError(f"page_size must be a power of two, got {page_size}")
        if walk_latency < 0:
            raise MemorySystemError(f"walk_latency must be >= 0, got {walk_latency}")
        self.entries = entries
        self.page_size = page_size
        self.walk_latency = walk_latency
        self.stats = TlbStats()
        self._map: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()

    def access(self, pid: int, vaddr: int) -> int:
        """Translate; returns the extra latency (0 on hit, walk on miss)."""
        key = (pid, vaddr // self.page_size)
        if key in self._map:
            self._map.move_to_end(key)
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        self._map[key] = True
        if len(self._map) > self.entries:
            self._map.popitem(last=False)
        return self.walk_latency

    def contains(self, pid: int, vaddr: int) -> bool:
        """Presence check with no side effects."""
        return (pid, vaddr // self.page_size) in self._map

    def reset(self) -> None:
        """Drop all translations and zero the stats (warm-machine reset)."""
        self._map.clear()
        self.stats.reset()

    def snapshot(self) -> object:
        """Opaque immutable state (snapshot/fork protocol).

        All values in the map are ``True``; the tuple of keys preserves
        the LRU ordering, which is the only other state.
        """
        return (tuple(self._map), self.stats.snapshot())

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot` (in place)."""
        keys, stats_state = state  # type: ignore[misc]
        self._map.clear()
        for key in keys:
            self._map[key] = True
        self.stats.restore(stats_state)

    def flush_all(self) -> None:
        """Drop every translation (e.g. on a simulated context switch)."""
        self._map.clear()

    def flush_pid(self, pid: int) -> None:
        """Drop all translations belonging to ``pid``."""
        stale = [key for key in self._map if key[0] == pid]
        for key in stale:
            del self._map[key]

    def occupancy(self) -> int:
        """Number of valid translations."""
        return len(self._map)
