"""Memory-system substrate: caches, TLB, DRAM model, address mapping.

The hierarchy of Figure 1's "Memory System" box.  The central entry
point is :class:`~repro.memory.hierarchy.MemorySystem`.
"""

from repro.memory.address import (
    PID_SHIFT,
    AddressMapper,
    SharedRegion,
    line_address,
    split_address,
)
from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.hierarchy import LoadResult, MemoryConfig, MemorySystem
from repro.memory.memsys import BackingStore, DramConfig, DramModel
from repro.memory.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memory.tlb import Tlb, TlbStats

__all__ = [
    "PID_SHIFT",
    "AddressMapper",
    "BackingStore",
    "CacheStats",
    "DramConfig",
    "DramModel",
    "FifoPolicy",
    "LoadResult",
    "LruPolicy",
    "MemoryConfig",
    "MemorySystem",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SharedRegion",
    "Tlb",
    "TlbStats",
    "line_address",
    "make_policy",
    "split_address",
]
