"""Set-associative cache model.

Timing is handled by :mod:`repro.memory.hierarchy`; this module only
models presence/absence of lines, replacement, and flush — which is
all the attacks need from a cache:

* a *miss* engages the Value Prediction System (load-based VPS);
* ``clflush`` forces misses ("the miss ... can be forced by a
  malicious attacker that invalidates or flushes the cache");
* line persistence after a squash is the paper's persistent channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import MemorySystemError
from repro.memory.replacement import ReplacementPolicy, make_policy


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CacheStats:
    """Hit/miss/fill/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits divided by accesses (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """See :meth:`repro.vp.base.ValuePredictor.reset`."""
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.flushes = 0

    def snapshot(self) -> Tuple[int, ...]:
        """Counter values as an immutable tuple (snapshot/fork protocol)."""
        return (self.hits, self.misses, self.fills, self.evictions,
                self.flushes)

    def restore(self, state: Tuple[int, ...]) -> None:
        """Restore counters captured by :meth:`snapshot`."""
        (self.hits, self.misses, self.fills, self.evictions,
         self.flushes) = state


class SetAssociativeCache:
    """A set-associative cache tracking line presence.

    Args:
        name: Name used in stats and traces (e.g. ``"L1D"``).
        size_bytes: Total capacity in bytes.
        ways: Associativity.
        line_size: Line size in bytes (power of two).
        policy: Replacement policy name (``lru``, ``fifo``, ``random``).
        rng: Seeded generator for the random policy.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int = 64,
        policy: str = "lru",
        rng: Optional[random.Random] = None,
    ) -> None:
        if not _is_power_of_two(line_size):
            raise MemorySystemError(f"line_size must be a power of two, got {line_size}")
        if size_bytes <= 0 or size_bytes % (ways * line_size) != 0:
            raise MemorySystemError(
                f"size {size_bytes} is not divisible by ways*line_size "
                f"({ways}*{line_size})"
            )
        num_sets = size_bytes // (ways * line_size)
        if not _is_power_of_two(num_sets):
            raise MemorySystemError(f"number of sets must be a power of two, got {num_sets}")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        self.stats = CacheStats()
        self._policy_name = policy
        self._rng = rng
        # Per-set: list of tags (None = invalid) and a replacement policy.
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(policy, ways, rng=rng) for _ in range(num_sets)
        ]

    def reset(self, rng_seed: Optional[int] = None) -> None:
        """Restore the as-constructed state (warm-machine reset protocol).

        Invalidates every line, zeroes the stats, resets each set's
        replacement state in place and — when ``rng_seed`` is given —
        reseeds the shared replacement RNG, so a reset cache is
        byte-identical to one freshly constructed with the same
        parameters (no per-set reallocation).
        """
        for tags in self._tags:
            for way in range(self.ways):
                tags[way] = None
        for set_policy in self._policies:
            set_policy.reset()
        if self._rng is not None and rng_seed is not None:
            self._rng.seed(rng_seed)
        self.stats.reset()

    def snapshot(self) -> object:
        """Opaque immutable state of tags, replacement and stats.

        Structural sharing keeps this cheap: each set's tag row becomes
        a tuple, replacement state is captured per policy (tuples), and
        the shared replacement RNG — owned by the memory system — is
        captured via ``getstate``.  No deepcopy.
        """
        return (
            tuple(tuple(tags) for tags in self._tags),
            tuple(policy.snapshot() for policy in self._policies),
            self._rng.getstate() if self._rng is not None else None,
            self.stats.snapshot(),
        )

    def restore(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot` (in place)."""
        tags_state, policy_state, rng_state, stats_state = state  # type: ignore[misc]
        for tags, saved in zip(self._tags, tags_state):
            tags[:] = saved
        for policy, saved in zip(self._policies, policy_state):
            policy.restore(saved)
        if self._rng is not None and rng_state is not None:
            self._rng.setstate(rng_state)
        self.stats.restore(stats_state)

    # ------------------------------------------------------------------
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_size
        return line % self.num_sets, line // self.num_sets

    def lookup(self, addr: int, update_replacement: bool = True) -> bool:
        """True if the line containing ``addr`` is present.

        Updates hit/miss stats and (on hit) the replacement state.
        """
        set_index, tag = self._index_tag(addr)
        tags = self._tags[set_index]
        for way, existing in enumerate(tags):
            if existing == tag:
                self.stats.hits += 1
                if update_replacement:
                    self._policies[set_index].on_access(way)
                return True
        self.stats.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Presence check with no side effects on stats or replacement."""
        set_index, tag = self._index_tag(addr)
        return tag in self._tags[set_index]

    def fill(self, addr: int) -> Optional[int]:
        """Bring the line containing ``addr`` in.

        Returns the *address* of an evicted line, or ``None`` if no
        valid line was evicted.  Filling an already-present line only
        refreshes replacement state.
        """
        set_index, tag = self._index_tag(addr)
        tags = self._tags[set_index]
        for way, existing in enumerate(tags):
            if existing == tag:
                self._policies[set_index].on_access(way)
                return None
        valid = [existing is not None for existing in tags]
        way = self._policies[set_index].victim(valid)
        evicted_tag = tags[way]
        evicted_addr: Optional[int] = None
        if evicted_tag is not None:
            self.stats.evictions += 1
            evicted_addr = (evicted_tag * self.num_sets + set_index) * self.line_size
        tags[way] = tag
        self._policies[set_index].on_access(way)
        self.stats.fills += 1
        return evicted_addr

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; True if it was present."""
        set_index, tag = self._index_tag(addr)
        tags = self._tags[set_index]
        for way, existing in enumerate(tags):
            if existing == tag:
                tags[way] = None
                self._policies[set_index].on_invalidate(way)
                self.stats.flushes += 1
                return True
        return False

    def invalidate_all(self) -> None:
        """Empty the cache (replacement state is reset too)."""
        self._tags = [[None] * self.ways for _ in range(self.num_sets)]
        self._policies = [
            make_policy(self._policy_name, self.ways) for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    def resident_lines(self) -> List[int]:
        """Addresses of all currently valid lines (for tests/inspection)."""
        lines = []
        for set_index, tags in enumerate(self._tags):
            for tag in tags:
                if tag is not None:
                    lines.append((tag * self.num_sets + set_index) * self.line_size)
        return sorted(lines)

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(
            1 for tags in self._tags for tag in tags if tag is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
            f"{self.ways}-way, {self.num_sets} sets, line={self.line_size})"
        )
