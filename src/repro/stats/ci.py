"""Confidence intervals.

The paper reports "averages over 100 runs for each attack, with a
95%-confidence interval calculated using the Student's t-test".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import special

from repro.errors import StatsError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    lower: float
    upper: float
    level: float

    @property
    def half_width(self) -> float:
        """Half the interval's width."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True when the two intervals intersect."""
        return self.lower <= other.upper and other.lower <= self.upper


def _t_quantile(probability: float, dof: int) -> float:
    """Inverse Student-t CDF via stdtrit."""
    return float(special.stdtrit(dof, probability))


def mean_confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    Raises:
        StatsError: For fewer than 2 samples or a silly level.
    """
    if len(samples) < 2:
        raise StatsError("confidence interval needs at least 2 samples")
    if not 0.0 < level < 1.0:
        raise StatsError(f"confidence level must be in (0, 1), got {level}")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    if variance == 0.0:
        return ConfidenceInterval(mean=mean, lower=mean, upper=mean, level=level)
    margin = _t_quantile(0.5 + level / 2.0, n - 1) * math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean, lower=mean - margin, upper=mean + margin, level=level
    )
