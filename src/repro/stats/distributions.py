"""Timing-distribution containers and histogramming.

Figures 5 and 8 of the paper plot frequency histograms (percent of
runs per cycle bin) of the receiver's measured timings for the
"mapped" and "unmapped" hypotheses.  :class:`TimingDistribution` holds
one such sample set; :func:`histogram` produces the binned view the
figure renderers consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import StatsError


@dataclass
class TimingDistribution:
    """A labelled set of timing samples (cycles)."""

    label: str
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Append one sample (or emit the ALU add helper)."""
        self.samples.append(float(value))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self.samples:
            raise StatsError(f"distribution {self.label!r} is empty")
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (n-1 denominator)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self.samples) / (n - 1))

    @property
    def minimum(self) -> float:
        """Smallest sample."""
        if not self.samples:
            raise StatsError(f"distribution {self.label!r} is empty")
        return min(self.samples)

    @property
    def maximum(self) -> float:
        """Largest sample."""
        if not self.samples:
            raise StatsError(f"distribution {self.label!r} is empty")
        return max(self.samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self.samples:
            raise StatsError(f"distribution {self.label!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise StatsError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (len(ordered) - 1) * q / 100.0
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction


def histogram(
    samples: Sequence[float],
    bin_width: float = 20.0,
    low: float = 0.0,
    high: float = 600.0,
) -> List[Tuple[float, int]]:
    """Bin ``samples`` into ``[low, high)`` with ``bin_width`` bins.

    Returns ``(bin_start, count)`` pairs covering the whole range;
    samples outside the range land in the first/last bin (so figure
    axes match the paper's 0–600 cycle window without losing tails).

    Raises:
        StatsError: On a non-positive bin width or an empty range.
    """
    if bin_width <= 0:
        raise StatsError(f"bin width must be positive, got {bin_width}")
    if high <= low:
        raise StatsError(f"empty histogram range [{low}, {high})")
    count = int(math.ceil((high - low) / bin_width))
    bins = [0] * count
    for sample in samples:
        index = int((sample - low) // bin_width)
        index = max(0, min(count - 1, index))
        bins[index] += 1
    return [(low + i * bin_width, bins[i]) for i in range(count)]


def frequency_histogram(
    samples: Sequence[float],
    bin_width: float = 20.0,
    low: float = 0.0,
    high: float = 600.0,
) -> List[Tuple[float, float]]:
    """Like :func:`histogram` but in percent of samples, as in Figures 5/8."""
    total = len(samples)
    binned = histogram(samples, bin_width=bin_width, low=low, high=high)
    if total == 0:
        return [(start, 0.0) for start, _ in binned]
    return [(start, 100.0 * count / total) for start, count in binned]
