"""Two-sample t-tests.

The paper judges every attack by whether the receiver's "mapped" and
"unmapped" timing distributions are statistically distinguishable:
"If the pvalue is smaller than 0.05, timing distributions are
differentiable and the attack succeeds" (Section IV-D), using
Student's t-test [Gosset 1908] with averages over 100 runs.

Both the classic pooled-variance Student test and the Welch
(unequal-variance) variant are provided; statistics are computed here
and only the t-distribution CDF comes from SciPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import special

from repro.errors import StatsError

#: The paper's significance threshold.
ALPHA = 0.05


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample t-test.

    Attributes:
        statistic: The t statistic.
        pvalue: Two-sided p-value.
        dof: Degrees of freedom used.
        mean_a: Mean of the first sample.
        mean_b: Mean of the second sample.
    """

    statistic: float
    pvalue: float
    dof: float
    mean_a: float
    mean_b: float

    @property
    def distinguishable(self) -> bool:
        """True when the distributions differ at the paper's 0.05 level."""
        return self.pvalue < ALPHA


def _mean_var(samples: Sequence[float]) -> tuple:
    """Mean and (n-1)-denominator sample variance.

    The sample variance is undefined below two observations; silently
    returning 0.0 there used to let a 0/0 t statistic through when a
    caller bypassed :func:`_validate`, so this is enforced here too.
    """
    n = len(samples)
    if n < 2:
        raise StatsError(
            f"sample variance needs at least 2 observations, got {n}"
        )
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, variance, n


def _two_sided_p(statistic: float, dof: float) -> float:
    """Two-sided p-value from the t CDF (via the regularised beta)."""
    if dof <= 0:
        return 1.0
    if math.isinf(statistic):
        return 0.0
    # stdtr is the Student t CDF.
    return 2.0 * (1.0 - special.stdtr(dof, abs(statistic)))


def _validate(sample_a: Sequence[float], sample_b: Sequence[float]) -> None:
    if len(sample_a) < 2 or len(sample_b) < 2:
        raise StatsError(
            "each sample needs at least 2 observations "
            f"(got {len(sample_a)} and {len(sample_b)})"
        )


def student_t_test(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> TTestResult:
    """Pooled-variance two-sample Student's t-test (two-sided).

    Degenerate zero-variance inputs (both samples constant) get a
    defined result instead of a 0/0: identical means are maximally
    indistinguishable (statistic 0.0, p-value 1.0) and different means
    maximally distinguishable (signed infinite statistic, p-value 0.0).
    """
    _validate(sample_a, sample_b)
    mean_a, var_a, n_a = _mean_var(sample_a)
    mean_b, var_b, n_b = _mean_var(sample_b)
    dof = n_a + n_b - 2
    pooled = ((n_a - 1) * var_a + (n_b - 1) * var_b) / dof
    if pooled == 0.0:
        if mean_a == mean_b:
            statistic, pvalue = 0.0, 1.0
        else:
            statistic, pvalue = math.copysign(math.inf, mean_a - mean_b), 0.0
    else:
        statistic = (mean_a - mean_b) / math.sqrt(pooled * (1 / n_a + 1 / n_b))
        pvalue = _two_sided_p(statistic, dof)
    return TTestResult(
        statistic=statistic, pvalue=pvalue, dof=dof, mean_a=mean_a, mean_b=mean_b
    )


def welch_t_test(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> TTestResult:
    """Welch's unequal-variance two-sample t-test (two-sided).

    Zero-variance inputs degenerate the same way as
    :func:`student_t_test`: equal means give (0.0, p=1.0), different
    means give a signed infinite statistic with p=0.0.
    """
    _validate(sample_a, sample_b)
    mean_a, var_a, n_a = _mean_var(sample_a)
    mean_b, var_b, n_b = _mean_var(sample_b)
    se_a = var_a / n_a
    se_b = var_b / n_b
    if se_a + se_b == 0.0:
        if mean_a == mean_b:
            statistic = 0.0
        else:
            statistic = math.copysign(math.inf, mean_a - mean_b)
        return TTestResult(
            statistic=statistic,
            pvalue=1.0 if mean_a == mean_b else 0.0,
            dof=float(n_a + n_b - 2),
            mean_a=mean_a,
            mean_b=mean_b,
        )
    statistic = (mean_a - mean_b) / math.sqrt(se_a + se_b)
    dof = (se_a + se_b) ** 2 / (
        se_a ** 2 / (n_a - 1) + se_b ** 2 / (n_b - 1)
    )
    return TTestResult(
        statistic=statistic,
        pvalue=_two_sided_p(statistic, dof),
        dof=dof,
        mean_a=mean_a,
        mean_b=mean_b,
    )
