"""Statistics used by the paper's evaluation methodology."""

from repro.stats.bandwidth import (
    cycles_to_seconds,
    success_rate,
    transmission_rate_bps,
    transmission_rate_kbps,
)
from repro.stats.ci import ConfidenceInterval, mean_confidence_interval
from repro.stats.distributions import (
    TimingDistribution,
    frequency_histogram,
    histogram,
)
from repro.stats.sequential import (
    DEFAULT_LOOK_FRACTIONS,
    GroupSequentialTest,
    LookDecision,
    SequentialDesign,
    default_looks,
    obrien_fleming_spending,
    pocock_spending,
    run_group_sequential,
)
from repro.stats.summary import DistributionComparison
from repro.stats.ttest import ALPHA, TTestResult, student_t_test, welch_t_test

__all__ = [
    "ALPHA",
    "DEFAULT_LOOK_FRACTIONS",
    "ConfidenceInterval",
    "DistributionComparison",
    "GroupSequentialTest",
    "LookDecision",
    "SequentialDesign",
    "TTestResult",
    "TimingDistribution",
    "default_looks",
    "obrien_fleming_spending",
    "pocock_spending",
    "run_group_sequential",
    "cycles_to_seconds",
    "frequency_histogram",
    "histogram",
    "mean_confidence_interval",
    "student_t_test",
    "success_rate",
    "transmission_rate_bps",
    "transmission_rate_kbps",
    "welch_t_test",
]
