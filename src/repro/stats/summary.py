"""Comparison summaries pairing distributions with test results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.stats.ci import ConfidenceInterval, mean_confidence_interval
from repro.stats.distributions import TimingDistribution
from repro.stats.ttest import ALPHA, TTestResult, welch_t_test


@dataclass
class DistributionComparison:
    """A mapped-vs-unmapped comparison, the unit of the paper's evaluation.

    Attributes:
        mapped: Timings for the "mapped" hypothesis (e.g. secret = 1,
            indices collide).
        unmapped: Timings for the "unmapped" hypothesis.
        test: The two-sample t-test over the two distributions.
    """

    mapped: TimingDistribution
    unmapped: TimingDistribution
    test: TTestResult

    @classmethod
    def compare(
        cls,
        mapped: TimingDistribution,
        unmapped: TimingDistribution,
    ) -> "DistributionComparison":
        """Run the t-test and build the summary."""
        return cls(
            mapped=mapped,
            unmapped=unmapped,
            test=welch_t_test(mapped.samples, unmapped.samples),
        )

    @property
    def pvalue(self) -> float:
        """The comparison's two-sided p-value."""
        return self.test.pvalue

    @property
    def attack_succeeds(self) -> bool:
        """The paper's criterion: distributions differ at p < 0.05."""
        return self.test.pvalue < ALPHA

    def mapped_ci(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval of the mapped distribution's mean."""
        return mean_confidence_interval(self.mapped.samples, level=level)

    def unmapped_ci(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval of the unmapped distribution's mean."""
        return mean_confidence_interval(self.unmapped.samples, level=level)

    def describe(self) -> str:
        """One-line human-readable summary."""
        verdict = "EFFECTIVE" if self.attack_succeeds else "not effective"
        return (
            f"mapped mean={self.mapped.mean:.1f} "
            f"unmapped mean={self.unmapped.mean:.1f} "
            f"pvalue={self.pvalue:.4f} -> {verdict}"
        )
