"""Transmission-rate and success-rate metrics.

Table III reports each attack's transmission rate ("Tran. Rate ...,
or bandwidth") in Kbps, and the RSA case study reports a bit success
rate (95.7 % over 60 runs) and 9.65 Kbps.  Cycles convert to seconds
through the core's nominal clock.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import StatsError


def cycles_to_seconds(cycles: float, clock_ghz: float) -> float:
    """Wall-clock seconds spent in ``cycles`` at ``clock_ghz``."""
    if clock_ghz <= 0:
        raise StatsError(f"clock must be positive, got {clock_ghz}")
    if cycles < 0:
        raise StatsError(f"cycles must be non-negative, got {cycles}")
    return cycles / (clock_ghz * 1e9)


def transmission_rate_bps(
    bits: float, cycles: float, clock_ghz: float
) -> float:
    """Bits per second for ``bits`` leaked over ``cycles`` of activity."""
    if bits < 0:
        raise StatsError(f"bits must be non-negative, got {bits}")
    seconds = cycles_to_seconds(cycles, clock_ghz)
    if seconds == 0:
        raise StatsError("cannot compute a rate over zero cycles")
    return bits / seconds


def transmission_rate_kbps(
    bits: float, cycles: float, clock_ghz: float
) -> float:
    """Transmission rate in Kbps (as reported in Table III)."""
    return transmission_rate_bps(bits, cycles, clock_ghz) / 1000.0


def success_rate(observed: Sequence[int], expected: Sequence[int]) -> float:
    """Fraction of positions where ``observed`` matches ``expected``.

    Raises:
        StatsError: On length mismatch or empty sequences.
    """
    if len(observed) != len(expected):
        raise StatsError(
            f"length mismatch: {len(observed)} observed vs "
            f"{len(expected)} expected"
        )
    if not observed:
        raise StatsError("cannot compute a success rate over zero bits")
    matches = sum(1 for o, e in zip(observed, expected) if o == e)
    return matches / len(observed)
