"""Group-sequential t-tests: spend trials only where the statistics need them.

The paper's verdict for every Table II/III attack cell is a fixed-N
Student's t-test — 100 runs per hypothesis, succeed iff p < 0.05
(Section IV-D).  Most cells are nowhere near the boundary: a working
attack separates its mapped/unmapped distributions so far that the
p-value is astronomically small after a fraction of the budget, and a
control cell (no predictor) hovers around p ≈ 0.5 forever.  A
group-sequential design makes that observable *without* giving up
error control: the experiment is examined at a few pre-registered
interim **looks** (e.g. after 20/40/60/80/100 trials) and stopped as
soon as the evidence crosses an alpha-spending boundary.

The boundary here is the classic Lan–DeMets O'Brien–Fleming-style
spending function

    a(t) = 2 * (1 - Phi(z_{alpha/2} / sqrt(t)))

which releases almost no alpha early (a(0.2) ≈ 1.2e-5 for alpha=0.05)
and the full alpha at t=1 — exactly the shape wanted for attack
verdicts: only overwhelming evidence stops a cell early, and a cell
that survives to the final look is judged by (almost) the fixed-N
criterion.  Interim looks are charged their *increment* of the
spending function, ``a(t_k) - a(t_{k-1})``; by the union bound the
total probability of any interim stop under the null is at most
``a(t_{K-1})``, independent of the correlation structure — no
multivariate-normal integration needed, and the guarantee is exact
rather than asymptotic.

Two final-look conventions are supported:

* ``final_level="fixed-n"`` (default): the final look applies the
  paper's plain ``p < alpha`` criterion, so a cell that never stops
  early returns **bit-for-bit the fixed-N verdict** — the property the
  harness relies on for artifact validation.  Worst-case type-I error
  is bounded by ``alpha + a(t_{K-1})`` (≈ 0.078 for the default
  five-look design); the empirical inflation is far smaller because an
  interim boundary crossing under the null almost always implies a
  final-look rejection too (the Monte-Carlo calibration test in
  ``tests/test_sequential.py`` pins this down).
* ``final_level="spend"``: the final look is charged the *remaining*
  alpha, making the total provably ≤ alpha — the textbook design, at
  the cost of a (slightly) stricter final threshold than fixed-N.

Everything here is pure deterministic arithmetic over p-values; the
simulator side (trial streaming, seed schedules) lives in
:mod:`repro.core.attack` and :mod:`repro.harness.runner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy import special

from repro.errors import StatsError
from repro.stats.ttest import ALPHA, welch_t_test

#: Default interim-look schedule as fractions of the trial budget.
DEFAULT_LOOK_FRACTIONS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)

#: A two-sample t-test needs at least this many trials per hypothesis.
MIN_LOOK_TRIALS = 2


def obrien_fleming_spending(t: float, alpha: float = ALPHA) -> float:
    """Cumulative alpha spent at information fraction ``t`` (O'Brien–Fleming).

    The Lan–DeMets spending-function approximation of the classic
    O'Brien–Fleming boundary: essentially no alpha is released early
    and the full ``alpha`` is available at ``t = 1``.
    """
    if t <= 0.0:
        return 0.0
    if t >= 1.0:
        return alpha
    z = float(special.ndtri(1.0 - alpha / 2.0))
    return float(2.0 * (1.0 - special.ndtr(z / math.sqrt(t))))


def pocock_spending(t: float, alpha: float = ALPHA) -> float:
    """Pocock-style spending: near-uniform alpha release across looks."""
    if t <= 0.0:
        return 0.0
    if t >= 1.0:
        return alpha
    return float(alpha * math.log(1.0 + (math.e - 1.0) * t))


#: Supported spending functions, by name.
SPENDING_FUNCTIONS = {
    "obrien-fleming": obrien_fleming_spending,
    "pocock": pocock_spending,
}


def default_looks(
    n_max: int,
    fractions: Sequence[float] = DEFAULT_LOOK_FRACTIONS,
) -> Tuple[int, ...]:
    """Boundary-aligned cumulative trial counts for ``n_max`` trials.

    Rounds each fraction of ``n_max`` to a whole trial count, drops
    duplicates and counts too small for a t-test, and always ends at
    ``n_max`` so the fixed-N answer stays recoverable.
    """
    if n_max < MIN_LOOK_TRIALS:
        raise StatsError(
            f"n_max must be >= {MIN_LOOK_TRIALS}, got {n_max}"
        )
    counts: List[int] = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise StatsError(
                f"look fractions must lie in (0, 1], got {fraction}"
            )
        n = round(fraction * n_max)
        if n < MIN_LOOK_TRIALS or n > n_max:
            continue
        if not counts or n > counts[-1]:
            counts.append(n)
    if not counts or counts[-1] != n_max:
        counts.append(n_max)
    return tuple(counts)


@dataclass(frozen=True)
class SequentialDesign:
    """A pre-registered group-sequential design over one experiment.

    Attributes:
        looks: Strictly increasing cumulative trial counts (per
            hypothesis); the last entry is the fixed-N cap ``n_max``.
        alpha: Overall significance level (the paper's 0.05).
        spending: Name of the spending function
            (:data:`SPENDING_FUNCTIONS`).
        final_level: ``"fixed-n"`` judges the final look by the plain
            ``p < alpha`` criterion (fixed-N verdict recoverable);
            ``"spend"`` charges it the remaining alpha (provably
            ≤ alpha overall).
    """

    looks: Tuple[int, ...]
    alpha: float = ALPHA
    spending: str = "obrien-fleming"
    final_level: str = "fixed-n"

    def __post_init__(self) -> None:
        if not self.looks:
            raise StatsError("a sequential design needs at least one look")
        if any(n < MIN_LOOK_TRIALS for n in self.looks):
            raise StatsError(
                f"every look needs >= {MIN_LOOK_TRIALS} trials per "
                f"hypothesis, got {self.looks}"
            )
        if any(b <= a for a, b in zip(self.looks, self.looks[1:])):
            raise StatsError(
                f"looks must be strictly increasing, got {self.looks}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise StatsError(f"alpha must lie in (0, 1), got {self.alpha}")
        if self.spending not in SPENDING_FUNCTIONS:
            raise StatsError(
                f"unknown spending function {self.spending!r}; choose "
                f"from {sorted(SPENDING_FUNCTIONS)}"
            )
        if self.final_level not in ("fixed-n", "spend"):
            raise StatsError(
                f"final_level must be 'fixed-n' or 'spend', "
                f"got {self.final_level!r}"
            )

    # ------------------------------------------------------------------
    @property
    def n_max(self) -> int:
        """The fixed-N trial cap (the last look)."""
        return self.looks[-1]

    @property
    def num_looks(self) -> int:
        return len(self.looks)

    def information_fraction(self, look: int) -> float:
        """``t_k``: fraction of the trial budget used at look ``look``."""
        return self.looks[look] / self.n_max

    def cumulative_spend(self, look: int) -> float:
        """``a(t_k)``: alpha spent through look ``look`` (0-based)."""
        spend = SPENDING_FUNCTIONS[self.spending]
        return spend(self.information_fraction(look), self.alpha)

    def level_at(self, look: int) -> float:
        """Nominal p-value threshold applied at look ``look`` (0-based).

        Interim looks are charged their spending-function increment
        ``a(t_k) - a(t_{k-1})`` (union-bound exact).  The final look
        follows :attr:`final_level`.
        """
        if not 0 <= look < self.num_looks:
            raise StatsError(
                f"look index {look} out of range for {self.num_looks} looks"
            )
        if look == self.num_looks - 1:
            if self.final_level == "fixed-n":
                return self.alpha
            previous = self.cumulative_spend(look - 1) if look else 0.0
            return max(self.alpha - previous, 0.0)
        previous = self.cumulative_spend(look - 1) if look else 0.0
        return max(self.cumulative_spend(look) - previous, 0.0)

    def next_demand(self, trials_done: int) -> int:
        """Trials per hypothesis the next look still needs (0 = done).

        The demand-driven admission contract for lane schedulers: a
        backend that dispatches exactly this many trials per
        hypothesis never simulates past the next decision point, so
        an early stop wastes nothing.  ``trials_done`` between looks
        (a resumed cell) is pulled forward to the next boundary.
        """
        for n in self.looks:
            if n > trials_done:
                return n - trials_done
        return 0

    def interim_spend(self) -> float:
        """Total alpha available to interim (non-final) looks."""
        if self.num_looks == 1:
            return 0.0
        return self.cumulative_spend(self.num_looks - 2)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable description (journaled with each cell)."""
        return {
            "looks": list(self.looks),
            "alpha": self.alpha,
            "spending": self.spending,
            "final_level": self.final_level,
            "levels": [self.level_at(k) for k in range(self.num_looks)],
        }


@dataclass(frozen=True)
class LookDecision:
    """The boundary decision taken at one interim or final look."""

    look: int  #: 1-based look number.
    n: int  #: Cumulative trials per hypothesis at this look.
    pvalue: float
    level: float  #: Nominal threshold applied at this look.
    decision: str  #: ``"reject"`` | ``"continue"`` | ``"accept"``.

    def to_payload(self) -> Dict[str, object]:
        return {
            "look": self.look,
            "n": self.n,
            "pvalue": self.pvalue,
            "level": self.level,
            "decision": self.decision,
        }


class GroupSequentialTest:
    """Stateful boundary walker: feed one p-value per scheduled look.

    The caller owns sample collection (and the t-test); this class
    owns the stopping decision, so the statistics stay decoupled from
    the simulator.  Decisions:

    * ``"reject"`` — the p-value crossed this look's boundary; the
      distributions are distinguishable and the experiment stops.
    * ``"continue"`` — keep sampling until the next look.
    * ``"accept"`` — final look reached without crossing any boundary;
      the attack is judged not effective (at the design's level).
    """

    def __init__(self, design: SequentialDesign) -> None:
        self.design = design
        self.looks: List[LookDecision] = []

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once a terminal (reject/accept) decision was taken."""
        return bool(self.looks) and self.looks[-1].decision != "continue"

    @property
    def effective(self) -> bool:
        """True when the test ended in a rejection (attack succeeds)."""
        return bool(self.looks) and self.looks[-1].decision == "reject"

    @property
    def stopped_early(self) -> bool:
        """True when a rejection happened before the final look."""
        return (
            self.effective
            and self.looks[-1].n < self.design.n_max
        )

    @property
    def effective_n(self) -> int:
        """Trials per hypothesis actually consumed so far."""
        return self.looks[-1].n if self.looks else 0

    # ------------------------------------------------------------------
    def decide(self, pvalue: float) -> LookDecision:
        """Record the next scheduled look's p-value; return the decision.

        Raises:
            StatsError: When called after a terminal decision or past
                the last scheduled look.
        """
        if self.done:
            raise StatsError("sequential test already reached a decision")
        index = len(self.looks)
        if index >= self.design.num_looks:
            raise StatsError("no looks left in the sequential design")
        level = self.design.level_at(index)
        final = index == self.design.num_looks - 1
        if pvalue < level:
            decision = "reject"
        elif final:
            decision = "accept"
        else:
            decision = "continue"
        look = LookDecision(
            look=index + 1,
            n=self.design.looks[index],
            pvalue=pvalue,
            level=level,
            decision=decision,
        )
        self.looks.append(look)
        return look

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable trajectory of the looks taken."""
        return {
            "looks": [look.to_payload() for look in self.looks],
            "effective": self.effective,
            "stopped_early": self.stopped_early,
            "effective_n": self.effective_n,
        }


def run_group_sequential(
    design: SequentialDesign,
    sample_a: Sequence[float],
    sample_b: Sequence[float],
) -> GroupSequentialTest:
    """Walk a full design over two pre-collected sample vectors.

    Convenience for calibration and tests: the prefix of each sample
    vector at every scheduled look is fed through Welch's t-test and
    the boundary.  Both vectors must cover ``design.n_max`` samples.
    """
    if len(sample_a) < design.n_max or len(sample_b) < design.n_max:
        raise StatsError(
            f"samples must cover n_max={design.n_max} "
            f"(got {len(sample_a)} and {len(sample_b)})"
        )
    test = GroupSequentialTest(design)
    for n in design.looks:
        result = welch_t_test(sample_a[:n], sample_b[:n])
        if test.decide(result.pvalue).decision != "continue":
            break
    return test
