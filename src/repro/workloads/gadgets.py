"""Reusable attack-program gadgets.

These build the proof-of-concept code shapes of Figures 3 and 4 with
the :class:`~repro.isa.builder.ProgramBuilder`:

* train loops — repeated ``flush; load`` at a pinned PC so a
  PC-indexed VPS accumulates confidence at a chosen index;
* timed triggers — an RDTSC-bracketed ``load + dependent chain``
  window (the timing-window channel);
* encode triggers — a trigger load whose (possibly speculative) value
  indexes a probe array, Spectre-style (the persistent channel);
* probe loops — RDTSC-bracketed reloads of probe lines
  (FLUSH+RELOAD's reload half).

PC collisions between programs are what make cross-process attacks
work: every gadget takes a ``load_pc`` and pins its interesting load
there, reproducing the "``nop(); // pad to map to sender's index``"
padding of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import AttackError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.perf.memo import memoize_program

#: Register conventions used by the gadgets.
REG_LOADED = 3     #: destination of the interesting load
REG_CHAIN = 30     #: accumulator of the dependent chain
REG_T1 = 9         #: first timestamp
REG_T2 = 10        #: second timestamp
REG_ENCODED = 6    #: destination of the encode load
REG_SHIFTED = 4    #: value << stride_shift


@dataclass(frozen=True)
class Layout:
    """Address and PC plan shared by the attack programs.

    Attributes:
        collide_pc: The PC at which colliding loads are pinned — the
            shared Value Prediction System index of the attack.
        alt_pc: A second, non-colliding load PC (used by secret-index
            senders for their secret = 0 path).
        receiver_base_pc / sender_base_pc / probe_base_pc: Distinct
            code regions so only deliberately pinned loads collide.
        receiver_known_addr: The receiver's known data ("arr3").
        sender_known_addr: The sender's known data ("arr1").
        secret_addr / secret_addr2: Sender-private secret locations.
        probe_base / probe_stride: The FLUSH+RELOAD probe array
            ("arr2"); stride 512 bytes as in Figure 4.
        probe_lines: Size of the probe array in lines (paper: 256).
    """

    collide_pc: int = 0x1000
    alt_pc: int = 0x1800
    receiver_base_pc: int = 0x200
    sender_base_pc: int = 0x400
    probe_base_pc: int = 0x10000
    receiver_known_addr: int = 0x110000
    sender_known_addr: int = 0x120000
    secret_addr: int = 0x130000
    secret_addr2: int = 0x140000
    probe_base: int = 0x600000
    probe_stride: int = 512
    probe_lines: int = 256
    receiver_pid: int = 2
    sender_pid: int = 1

    @property
    def probe_stride_shift(self) -> int:
        """log2 of the probe stride (for the ``x*512`` address math)."""
        shift = self.probe_stride.bit_length() - 1
        if 1 << shift != self.probe_stride:
            raise AttackError(
                f"probe stride {self.probe_stride} must be a power of two"
            )
        return shift

    def probe_line_addr(self, index: int) -> int:
        """Virtual address of probe line ``index``."""
        return self.probe_base + index * self.probe_stride


#: Instructions in a train-loop body before its load (flush, fence).
_TRAIN_PREFIX_INSTRUCTIONS = 2

# Every factory below is pure — same arguments, same Program — and
# Programs are immutable once built, so the factories are memoized.
# Trials of a cell (and cells sharing a layout) rebuild identical
# train/trigger/probe programs thousands of times; the cache turns
# that into a dictionary lookup and, because the cached Program keeps
# its expanded dynamic trace, it doubles as a decoded-uop cache.


@memoize_program()
def train_program(
    name: str,
    pid: int,
    base_pc: int,
    load_pc: int,
    addr: int,
    count: int,
    tag: str = "train-load",
    secret: bool = False,
) -> Program:
    """A train loop: ``count`` times ``flush(addr); fence; load addr``.

    The load is pinned at ``load_pc`` on *every* iteration (a true
    loop, not an unrolled copy), which is how the predictor's
    confidence accumulates at one index.  The flush forces each
    iteration to miss, engaging the load-based VPS per the threat
    model; the trailing fence keeps iterations from overlapping so the
    training count is exact.  ``secret=True`` marks the trained load
    as a taint source for the static analyzer.
    """
    if count < 1:
        raise AttackError(f"train count must be >= 1, got {count}")
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    builder.pin_pc(load_pc - _TRAIN_PREFIX_INSTRUCTIONS * 4)
    with builder.loop(count):
        builder.flush(imm=addr)
        builder.fence()
        builder.load(REG_LOADED, imm=addr, tag=tag, secret=secret)
        builder.fence()
    return builder.build()


@memoize_program()
def timed_trigger_program(
    name: str,
    pid: int,
    base_pc: int,
    load_pc: int,
    addr: int,
    chain_length: int,
    tag: str = "trigger-load",
    secret: bool = False,
) -> Program:
    """An RDTSC-bracketed trigger: the timing-window channel.

    Shape (Figure 3 receiver, lines 15-21)::

        flush(addr); fence
        t1 = rdtsc; fence
        r = load addr          # pinned at load_pc
        dependent chain (r)
        fence; t2 = rdtsc

    The measurement is ``t2 - t1``: a correct prediction overlaps the
    chain with the miss (fast); no prediction serialises them
    (medium); a misprediction adds the squash penalty and re-execution
    (slow).
    """
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    builder.flush(imm=addr)
    builder.fence()
    builder.rdtsc(REG_T1, tag="t1")
    builder.fence()
    builder.pin_pc(load_pc)
    builder.load(REG_LOADED, imm=addr, tag=tag, secret=secret)
    builder.dependent_chain(chain_length, dst=REG_CHAIN, src=REG_LOADED)
    builder.fence()
    builder.rdtsc(REG_T2, tag="t2")
    return builder.build()


@memoize_program()
def plain_trigger_program(
    name: str,
    pid: int,
    base_pc: int,
    load_pc: int,
    addr: int,
    chain_length: int,
    tag: str = "trigger-load",
    secret: bool = False,
) -> Program:
    """A trigger without RDTSC, for internal-interference attacks.

    The receiver observes the *run time* of this (victim) program —
    per the threat model, two processes need not share the predictor
    "as long as the receiver can observe timing differences in the
    execution of the sender".
    """
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    builder.flush(imm=addr)
    builder.fence()
    builder.pin_pc(load_pc)
    builder.load(REG_LOADED, imm=addr, tag=tag, secret=secret)
    builder.dependent_chain(chain_length, dst=REG_CHAIN, src=REG_LOADED)
    builder.fence()
    return builder.build()


@memoize_program()
def encode_trigger_program(
    name: str,
    pid: int,
    base_pc: int,
    load_pc: int,
    addr: int,
    layout: Layout,
    flush_lines: Sequence[int],
    tag: str = "trigger-load",
    secret: bool = False,
) -> Program:
    """A trigger whose value transiently indexes the probe array.

    Shape (Figure 4 receiver, lines 11-14)::

        flush(probe lines); flush(addr); fence
        x = load addr            # pinned at load_pc; may be predicted
        y = load probe[x * 512]  # executes speculatively

    With value prediction, the encode load runs with the *predicted*
    ``x`` long before the trigger's data returns; the cache fill it
    performs survives even if the prediction later squashes — the
    persistent channel.
    """
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    for line in flush_lines:
        builder.flush(imm=layout.probe_line_addr(line))
    builder.flush(imm=addr)
    builder.fence()
    builder.pin_pc(load_pc)
    builder.load(REG_LOADED, imm=addr, tag=tag, secret=secret)
    builder.shl(REG_SHIFTED, REG_LOADED, layout.probe_stride_shift)
    builder.load(
        REG_ENCODED, base=REG_SHIFTED, imm=layout.probe_base, tag="encode-load"
    )
    builder.fence()
    return builder.build()


@memoize_program()
def probe_program(
    name: str,
    pid: int,
    base_pc: int,
    layout: Layout,
    lines: Sequence[int],
) -> Program:
    """The reload half of FLUSH+RELOAD over the given probe lines.

    Every reload is bracketed by RDTSC pairs; use
    :func:`repro.core.channels.probe_latencies_from_rdtsc` on the run
    result to recover per-line latencies (Figure 4, lines 18-24).
    """
    if not lines:
        raise AttackError("probe requires at least one line")
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    for line in lines:
        builder.fence()
        builder.rdtsc(REG_T1, tag="probe-t1")
        builder.fence()
        builder.load(REG_LOADED, imm=layout.probe_line_addr(line), tag="probe-load")
        builder.fence()
        builder.rdtsc(REG_T2, tag="probe-t2")
    return builder.build()


@memoize_program()
def idle_program(name: str, pid: int, base_pc: int, nops: int = 8) -> Program:
    """A do-nothing filler program (the sender's secret = 0 path)."""
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    for _ in range(max(1, nops)):
        builder.nop()
    return builder.build()


@memoize_program()
def mul_burst_trigger_program(
    name: str,
    pid: int,
    base_pc: int,
    load_pc: int,
    addr: int,
    burst: int = 64,
    tag: str = "trigger-load",
    secret: bool = False,
) -> Program:
    """A trigger whose dependents saturate the multiplier port.

    The trigger load feeds ``burst`` *independent* multiplies (all
    sourcing the loaded register, none sourcing each other), so once a
    value — predicted or actual — arrives, they issue back-to-back and
    monopolise the core's single multiplier port for ``burst`` cycles.

    This is the sender side of the volatile (port-contention) channel:
    under a prediction the burst fires early, inside the miss window;
    a misprediction replays it, doubling the pressure a co-running
    observer feels (cf. SMotherSpectre-style contention channels,
    the paper's reference [1]).
    """
    if burst < 1:
        raise AttackError(f"burst must be >= 1, got {burst}")
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    builder.flush(imm=addr)
    builder.fence()
    builder.pin_pc(load_pc)
    builder.load(REG_LOADED, imm=addr, tag=tag, secret=secret)
    for index in range(burst):
        destination = 8 + (index % 20)
        builder.mul(destination, REG_LOADED, imm=3, tag="mul-burst")
    builder.fence()
    return builder.build()


@memoize_program()
def mul_probe_program(
    name: str,
    pid: int,
    base_pc: int,
    burst: int = 480,
) -> Program:
    """The observer side of the volatile channel.

    An RDTSC-bracketed stream of independent multiplies long enough to
    span the victim's transient window *and* any squash-and-replay
    re-execution.  With an otherwise idle machine it issues one
    multiply per cycle; every cycle the victim steals the multiplier
    port adds one cycle to the measured window.
    """
    if burst < 1:
        raise AttackError(f"burst must be >= 1, got {burst}")
    builder = ProgramBuilder(name, pid=pid, base_pc=base_pc)
    builder.li(4, 3)
    builder.fence()
    builder.rdtsc(REG_T1, tag="t1")
    builder.fence()
    for index in range(burst):
        destination = 8 + (index % 20)
        builder.mul(destination, 4, imm=5, tag="probe-mul")
    builder.fence()
    builder.rdtsc(REG_T2, tag="t2")
    return builder.build()
