"""Attack and performance workload generators."""

from repro.workloads.gadgets import Layout

__all__ = ["Layout"]
