"""Performance workloads: measuring value prediction's benefit.

The paper motivates value predictors with speedups "from 4.8% [11] to
11.2% [9]".  These generators build workloads with controllable value
locality so the benches can reproduce that *shape*: speedup grows with
the fraction of value-predictable misses and lands in the
single-digit-percent band for realistic mixes.

A workload is a pointer-chase-flavoured loop: each iteration loads a
value from a (cold) location and feeds dependent ALU work.  When the
locations hold *stable* values, a trained LVP breaks the
load-to-dependent serialisation; when values change every iteration,
prediction cannot help (and mispredictions hurt).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import AttackError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.memory.hierarchy import MemorySystem
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.vp.base import ValuePredictor

#: Base address of the workload's data region.
DATA_BASE = 0x800000


@dataclass(frozen=True)
class PerfWorkload:
    """A value-locality workload.

    Attributes:
        program: The straight-line loop program.
        stable_addrs: Addresses whose values stay constant (value-
            predictable once trained).
        volatile_addrs: Addresses whose values the harness mutates
            between runs (never predictable).
    """

    program: Program
    stable_addrs: Tuple[int, ...]
    volatile_addrs: Tuple[int, ...]


def value_locality_workload(
    iterations: int = 40,
    loads_per_iteration: int = 4,
    stable_fraction: float = 1.0,
    dependent_work: int = 12,
    pid: int = 1,
    seed: int = 0,
) -> PerfWorkload:
    """Build a workload with a given fraction of value-stable loads.

    Each iteration flushes and reloads ``loads_per_iteration``
    locations (so every load misses and the VPS is engaged) and runs
    ``dependent_work`` dependent ALU operations on the loaded values.

    Raises:
        AttackError: For a fraction outside [0, 1] or empty shapes.
    """
    if not 0.0 <= stable_fraction <= 1.0:
        raise AttackError(f"stable_fraction must be in [0,1], got {stable_fraction}")
    if iterations < 1 or loads_per_iteration < 1:
        raise AttackError("iterations and loads_per_iteration must be >= 1")
    rng = random.Random(seed)
    stable_count = round(loads_per_iteration * stable_fraction)
    addresses = [DATA_BASE + index * 0x100 for index in range(loads_per_iteration)]
    stable = tuple(addresses[:stable_count])
    volatile = tuple(addresses[stable_count:])

    builder = ProgramBuilder(
        f"perf-{stable_fraction:.2f}", pid=pid, base_pc=0x100
    )
    builder.li(1, 1)
    with builder.loop(iterations):
        # Volatile locations are overwritten with the (ever-changing)
        # accumulator each iteration, so their next load returns a
        # value no last-value predictor can have learnt.
        for addr in volatile:
            builder.store(1, imm=addr, tag="mutate")
        builder.fence()
        for addr in addresses:
            builder.flush(imm=addr)
        builder.fence()
        for slot, addr in enumerate(addresses):
            builder.load(2 + slot, imm=addr, tag="perf-load")
        # Dependent work chained off the loaded values.
        for step in range(dependent_work):
            source = 2 + (step % loads_per_iteration)
            builder.add(1, 1, src2=source, tag="work")
        builder.fence()
    return PerfWorkload(
        program=builder.build(), stable_addrs=stable, volatile_addrs=volatile
    )


def run_workload(
    workload: PerfWorkload,
    predictor: ValuePredictor,
    memory: MemorySystem,
    core_config: CoreConfig = None,
    volatile_seed: int = 1,
) -> int:
    """Run the workload once; returns elapsed cycles.

    Stable addresses get fixed values; volatile addresses get fresh
    pseudo-random values so a last-value predictor can never be right
    about them.
    """
    rng = random.Random(volatile_seed)
    for index, addr in enumerate(workload.stable_addrs):
        memory.write_value(workload.program.pid, addr, 1000 + index)
    for addr in workload.volatile_addrs:
        memory.write_value(
            workload.program.pid, addr, rng.randrange(1 << 32)
        )
    core = Core(memory, predictor, core_config or CoreConfig())
    result = core.run(workload.program)
    return result.cycles


def speedup_percent(baseline_cycles: int, vp_cycles: int) -> float:
    """Speedup of the VP run over the baseline, in percent."""
    if vp_cycles <= 0:
        raise AttackError("vp cycles must be positive")
    return 100.0 * (baseline_cycles - vp_cycles) / baseline_cycles
