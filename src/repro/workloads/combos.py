"""Dynamic realisation of arbitrary (train, modify, trigger) combos.

The six classes of :mod:`repro.core.variants` hand-implement the
Table II categories.  :class:`ComboAttack` instead compiles *any*
:class:`~repro.core.model.Combo` — including the 564 the model calls
reducible or invalid — into a runnable attack variant, using the same
symbol grounding as the soundness synthesizer and the static hunt
(:func:`repro.core.synthesis.ground_access`).  The hunt's dynamic
confirmation stage (:mod:`repro.harness.hunt`) runs these through the
standard :class:`~repro.core.attack.AttackRunner` measurement path so
static certificates and dynamic p-values describe literally the same
programs.

Timing-window only: the generic grounding has no probe-array or
co-runner story, and Table III's primary channel is the timing window.
The measured window is RDTSC-bracketed when the receiver triggers and
the trigger program's own run time when the sender does (internal
interference), mirroring the hand-written variants.
"""

from __future__ import annotations

from typing import List

from repro.core.actions import Action, Actor
from repro.core.attack import TrialEnv
from repro.core.channels import ChannelType
from repro.core.model import (
    AttackCategory,
    Combo,
    _count_value,
    question_of_dimension,
)
from repro.core.synthesis import GroundedAccess, ground_access
from repro.core.variants import AttackVariant
from repro.workloads import gadgets
from repro.workloads.gadgets import Layout


class ComboAttack(AttackVariant):
    """One Table I combination, runnable on a :class:`TrialEnv`.

    Args:
        combo: Any (train, modify, trigger) combination.
        category: The Table II category reported in results — for
            effective combos their own category, for reducible ones
            the terminal class's (the hunt passes it in).
        train_count: ``"confidence"`` or ``"confidence-1"``.
        modify_count: ``"retrain"`` or ``"one"`` (ignored when the
            modify step is empty).
    """

    supported_channels = (ChannelType.TIMING_WINDOW,)
    default_chain_length = 80
    prologue_deterministic = True

    def __init__(
        self,
        combo: Combo,
        *,
        category: AttackCategory,
        train_count: str = "confidence",
        modify_count: str = "one",
    ) -> None:
        self.combo = combo
        self.category = category
        self.train_count = train_count
        self.modify_count = modify_count
        self.name = f"combo {combo.symbol}"
        self.pattern = combo.symbol
        self.num_phases = 2 if combo.modify.is_none else 3

    # ------------------------------------------------------------------
    def _ground(self, action: Action, mapped: bool) -> GroundedAccess:
        assert action.dimension is not None
        return ground_access(
            action, mapped, question_of_dimension(self.combo, action.dimension)
        )

    def run_prologue(self, env: TrialEnv, mapped: bool) -> None:
        """Write every access's value, then run train/modify programs."""
        self._require_channel(env)
        # Known objects are shared-library data: the same value exists
        # in both address spaces (Section V-B), so write under both
        # pids exactly as the synthesizer and the static hunt do.
        for action in self.combo.actions:
            grounded = self._ground(action, mapped)
            env.memory.write_value(1, grounded.addr, grounded.value)
            env.memory.write_value(2, grounded.addr, grounded.value)

        steps = [(
            self.combo.train, "combo-train", "train-load",
            _count_value(self.train_count, env.confidence),
        )]
        if not self.combo.modify.is_none:
            steps.append((
                self.combo.modify, "combo-modify", "modify-load",
                _count_value(self.modify_count, env.confidence),
            ))
        for action, name, tag, count in steps:
            if count < 1:
                continue
            grounded = self._ground(action, mapped)
            env.core.run(gadgets.train_program(
                name, grounded.pid, grounded.base_pc, grounded.pc,
                grounded.addr, count, tag=tag, secret=action.is_secret,
            ))

    def run_measured(self, env: TrialEnv, mapped: bool) -> float:
        """RDTSC window (receiver trigger) or trigger run time (sender)."""
        grounded = self._ground(self.combo.trigger, mapped)
        if self.combo.trigger.actor is Actor.RECEIVER:
            result = env.core.run(gadgets.timed_trigger_program(
                "combo-trigger", grounded.pid, grounded.base_pc,
                grounded.pc, grounded.addr, env.chain_length,
                secret=self.combo.trigger.is_secret,
            ))
            return float(result.rdtsc_delta())
        result = env.core.run(gadgets.plain_trigger_program(
            "combo-trigger", grounded.pid, grounded.base_pc,
            grounded.pc, grounded.addr, env.chain_length,
            secret=self.combo.trigger.is_secret,
        ))
        return float(result.cycles)

    def trigger_pcs(self, layout: Layout) -> List[int]:
        """Both hypotheses' trigger PCs (they differ for index combos)."""
        return sorted({
            self._ground(self.combo.trigger, mapped).pc
            for mapped in (True, False)
        })
