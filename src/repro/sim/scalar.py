"""The reference trial-loop backend: one interpreter run per trial.

This is *the* historical execution path, factored behind the
:class:`~repro.sim.SimBackend` protocol verbatim: trials run strictly
in the canonical schedule order — mapped(i), unmapped(i) for ascending
``i`` — through :meth:`~repro.core.attack.AttackRunner.run_trial`, so
every artifact ever produced with the default backend replays
bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.attack import AttackRunner, TrialResult


class ScalarBackend:
    """Runs each trial through the scalar interpreter, in order."""

    name = "scalar"

    def run_pairs(
        self, runner: "AttackRunner", start: int, stop: int
    ) -> List[Tuple["TrialResult", "TrialResult"]]:
        """Trials ``start .. stop-1`` in the canonical interleaving."""
        pairs: List[Tuple["TrialResult", "TrialResult"]] = []
        for index in range(start, stop):
            mapped_trial = runner.run_trial(True, index)
            unmapped_trial = runner.run_trial(False, index)
            pairs.append((mapped_trial, unmapped_trial))
        return pairs
