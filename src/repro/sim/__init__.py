"""Simulation backends: how an experiment's trials get executed.

The :class:`SimBackend` protocol abstracts the *trial loop* of an
experiment — given an :class:`~repro.core.attack.AttackRunner` and a
range of trial indices, produce the canonical stream of
``(mapped, unmapped)`` :class:`~repro.core.attack.TrialResult` pairs.
Two implementations ship:

``scalar``
    The reference backend: the exact interleaved
    :meth:`~repro.core.attack.AttackRunner.run_trial` loop the package
    has always run.  Always available; always the default.

``batched``
    A structure-of-arrays lockstep backend (:mod:`repro.sim.batched`)
    that simulates many trials of one cell program simultaneously with
    numpy lane vectors, byte-identical to ``scalar`` by construction
    and verified per trial by the cross-backend identity suite.  Needs
    numpy (the ``repro[batch]`` extra); configurations outside its
    native envelope fall back to ``scalar`` per chunk with the reason
    journaled (:func:`fallback_journal`).

``pool``
    The lane-pool scheduler (:mod:`repro.sim.schedule`): continuous
    batching across cell and look boundaries on top of ``batched``.
    Compatible dispatches share one recorded lockstep pass (a tape)
    replayed per seed schedule, and interpretive passes reuse warm
    machine hierarchies.  Byte-identical to ``batched``/``scalar``;
    a process-global singleton, so concurrent jobs pool their work.

Backend selection is threaded from the CLI / environment down to the
runner: ``--backend`` → :class:`~repro.harness.runner.ExecutionPolicy`
→ :class:`~repro.core.attack.AttackConfig.backend` →
:func:`resolve_backend_name` (which also honours ``$REPRO_BACKEND``)
→ :func:`get_backend`.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import BackendUnavailableError, SimBackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.attack import AttackRunner, TrialResult
    from typing import Protocol

    class SimBackend(Protocol):
        """Executes a range of an experiment's trial schedule."""

        name: str

        def run_pairs(
            self, runner: "AttackRunner", start: int, stop: int
        ) -> List[Tuple["TrialResult", "TrialResult"]]:
            """Trials ``start .. stop-1``, as (mapped, unmapped) pairs."""


#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"

#: The always-available reference backend.
DEFAULT_BACKEND = "scalar"


def _load_scalar() -> "SimBackend":
    from repro.sim.scalar import ScalarBackend

    return ScalarBackend()


def _load_batched() -> "SimBackend":
    from repro.sim.batched import BatchedBackend

    return BatchedBackend()


def _load_pool() -> "SimBackend":
    from repro.sim.schedule import pool_backend

    return pool_backend()


_LOADERS: Dict[str, Callable[[], "SimBackend"]] = {
    "scalar": _load_scalar,
    "batched": _load_batched,
    "pool": _load_pool,
}

#: Names accepted by ``--backend`` / ``$REPRO_BACKEND``.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(_LOADERS))


def resolve_backend_name(explicit: Optional[str] = None) -> str:
    """The backend name to use: explicit > ``$REPRO_BACKEND`` > scalar.

    Raises :class:`~repro.errors.SimBackendError` for unknown names so
    a typo fails loudly instead of silently running the default.
    """
    name = explicit
    if name is None:
        env = os.environ.get(BACKEND_ENV, "").strip()
        name = env or DEFAULT_BACKEND
    if name not in _LOADERS:
        raise SimBackendError(
            f"unknown simulation backend {name!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        )
    return name


def get_backend(name: str) -> "SimBackend":
    """Instantiate a backend by name.

    The batched backend raises
    :class:`~repro.errors.BackendUnavailableError` here — at selection
    time, not first use — when numpy is missing.
    """
    if name not in _LOADERS:
        raise SimBackendError(
            f"unknown simulation backend {name!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        )
    return _LOADERS[name]()


# ---------------------------------------------------------------------------
# Fallback journal
# ---------------------------------------------------------------------------
# The batched backend records every scalar fallback here (and on its
# own ``fallback_events`` list) so "it ran, but not vectorized" is an
# observable fact rather than a silent perf cliff.  Process-local and
# deterministic: entries are (cell description, reason) tuples in
# occurrence order.

_FALLBACK_JOURNAL: List[Tuple[str, str]] = []


def journal_fallback(cell: str, reason: str) -> None:
    """Record one batched→scalar fallback (kept process-local)."""
    _FALLBACK_JOURNAL.append((cell, reason))


def fallback_journal() -> List[Tuple[str, str]]:
    """A copy of the process's batched→scalar fallback records."""
    return list(_FALLBACK_JOURNAL)


def clear_fallback_journal() -> None:
    """Forget recorded fallbacks (test isolation)."""
    _FALLBACK_JOURNAL.clear()


def record_fallbacks(events: List[Tuple[str, str]]) -> None:
    """Merge fallback events shipped from another process's journal.

    Pool and serve workers run the batched backend in their own
    processes; their journals are process-local.  The parent calls
    this with each worker result's shipped events so the sweep-wide
    journal (and anything reporting on it) sees every fallback, not
    just the parent's.
    """
    _FALLBACK_JOURNAL.extend(
        (str(cell), str(reason)) for cell, reason in events
    )


def fallback_histogram(
    events: Optional[List[Tuple[str, str]]] = None,
) -> Dict[str, int]:
    """Fallback counts per reason (``events`` defaults to the journal)."""
    histogram: Dict[str, int] = {}
    for _, reason in (fallback_journal() if events is None else events):
        histogram[reason] = histogram.get(reason, 0) + 1
    return histogram


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "SimBackend",
    "SimBackendError",
    "clear_fallback_journal",
    "fallback_histogram",
    "fallback_journal",
    "get_backend",
    "journal_fallback",
    "record_fallbacks",
    "resolve_backend_name",
]
