"""The batched backend: many trials of one cell in numpy lockstep.

:class:`BatchedBackend` satisfies the :class:`~repro.sim.SimBackend`
protocol by carving the requested trial range into chunks of up to
:data:`CHUNK_LANES` lanes and running each hypothesis's chunk as one
:class:`~repro.sim.lockstep.LockstepMachine` pass — the real Table II
variant code drives a :class:`~repro.sim.lockstep.LaneCore` facade over
a machine whose jitter draws, default memory values and cycle schedules
are ``[lanes]`` vectors while caches, TLB and the value predictor stay
the real, shared, scalar structures.

Byte-identity with the scalar backend is a construction invariant, not
an aspiration: a scalar trial is a pure function of its seed, the two
protocols' seed schedules are replicated exactly (per-lane trial seeds
for the default warm/cold protocol; a uniform prologue seed followed by
per-lane ``reseed_jitter`` for the snapshot protocol), and anything the
lockstep engine cannot prove schedule-exact and lane-uniform raises
:class:`~repro.sim.lockstep.LaneDivergence`.  Divergence — or *any*
failure of the vectorized attempt — falls the whole chunk back to the
scalar backend's canonical interleaved loop, so a genuine error
reproduces with authentic scalar semantics and a benign divergence
costs only speed.  Every fallback is journaled
(:func:`repro.sim.journal_fallback`) and counted
(``COUNTERS.batched_fallback_trials``): "it ran, but not vectorized"
is an observable fact, never a silent perf cliff.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.core.channels import ChannelType
from repro.errors import BackendUnavailableError
from repro.memory.hierarchy import MemoryConfig
from repro.perf.counters import COUNTERS
from repro.sim import journal_fallback
from repro.sim.scalar import ScalarBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.attack import AttackRunner, TrialResult

#: Lockstep lane width: wide enough to amortize the per-column Python
#: overhead across lanes, small enough that a late-chunk divergence
#: does not discard much vector work.
CHUNK_LANES = 128

#: Predictor spec strings with a lane-uniform shared-state form.  The
#: oracle wrapper composes (it is a pure PC filter); lvp, vtage and
#: the no-predictor are deterministic pure-Python state machines, so
#: one shared instance (or, after a lane split, per-lane deepcopies)
#: replays any lane-uniform training sequence exactly.  Callables are
#: opaque — they fall back.
_VECTOR_PREDICTORS = ("lvp", "none", "vtage")


def _trial_seed(config: Any, mapped: bool, index: int) -> int:
    """The scalar seed schedule (``AttackRunner.run_trial``), verbatim."""
    return config.seed * 1_000_003 + index * 7919 + (1 if mapped else 0)


class BatchedBackend:
    """Lockstep-vectorized trial execution with journaled scalar fallback."""

    name = "batched"

    def __init__(self) -> None:
        try:
            import numpy  # noqa: F401  (availability probe)
        except ImportError as exc:  # pragma: no cover - needs bare env
            raise BackendUnavailableError(
                "the batched backend needs numpy, which is not installed; "
                "install the batch extra (pip install 'repro[batch]') or "
                "numpy itself, or select --backend scalar"
            ) from exc
        from repro.sim import lockstep

        self._lockstep = lockstep
        self._scalar = ScalarBackend()
        #: (cell, reason) tuples for every fallback this backend took;
        #: the process-global journal gets the same records.
        self.fallback_events: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    def run_pairs(
        self, runner: "AttackRunner", start: int, stop: int
    ) -> List[Tuple["TrialResult", "TrialResult"]]:
        """Trials ``start .. stop-1``; chunks vectorize or fall back."""
        if stop <= start:
            return []
        reason = self._static_fallback_reason(runner)
        if reason is not None:
            self._journal(runner, reason)
            COUNTERS.batched_fallback_trials += 2 * (stop - start)
            return self._scalar.run_pairs(runner, start, stop)
        pairs: List[Tuple["TrialResult", "TrialResult"]] = []
        index = start
        while index < stop:
            chunk_stop = min(stop, index + CHUNK_LANES)
            pairs.extend(self._run_chunk(runner, index, chunk_stop))
            index = chunk_stop
        return pairs

    # ------------------------------------------------------------------
    def _static_fallback_reason(self, runner: "AttackRunner") -> Optional[str]:
        """Config-level reasons the engine cannot host this cell.

        These are the *known* unsupported shapes, reported with a
        stable human-readable reason; anything subtler is caught at
        run time by the engine's divergence guards instead.
        """
        config = runner.config
        if config.channel is ChannelType.VOLATILE:
            return "channel volatile needs SMT co-runners"
        if callable(config.predictor):
            return "custom predictor factories have no lane-uniform form"
        if str(config.predictor) not in _VECTOR_PREDICTORS:
            return (
                f"predictor {config.predictor!r} has no lane-uniform form"
            )
        if config.audit_snapshots:
            return "snapshot auditing replays each trial cold by design"
        memory_config = config.memory_config
        if (
            memory_config is not None
            and memory_config.replacement_policy != "lru"
        ):
            return (
                f"replacement policy {memory_config.replacement_policy!r} "
                "draws per-trial randomness into cache structure"
            )
        return None

    @staticmethod
    def _bare_chain(defense: Any) -> bool:
        """Whether the defense leaves the predictor chain unwrapped.

        Probed, not hard-coded: config-only defenses (D, InvisiSpec)
        return their argument from ``wrap_predictor`` unchanged, and
        that identity is exactly the property a lane split needs.
        """
        if defense is None:
            return True
        from repro.vp.nopred import NoPredictor

        probe = NoPredictor()
        try:
            return defense.wrap_predictor(probe) is probe
        except Exception:  # pragma: no cover - defensive
            return False

    def _journal(self, runner: "AttackRunner", reason: str) -> None:
        config = runner.config
        predictor = (
            config.predictor
            if isinstance(config.predictor, str)
            else getattr(config.predictor, "__name__", "custom")
        )
        cell = (
            f"{runner.variant.name}/{config.channel.value}"
            f"/vp={predictor}"
            f"/defense={config.defense.name if config.defense else 'none'}"
            f"/seed={config.seed}"
        )
        journal_fallback(cell, reason)
        self.fallback_events.append((cell, reason))

    # ------------------------------------------------------------------
    def _run_chunk(
        self, runner: "AttackRunner", start: int, stop: int
    ) -> List[Tuple["TrialResult", "TrialResult"]]:
        """One chunk, vectorized; any failure replays it on scalar."""
        indices = range(start, stop)
        try:
            mapped_rows, mapped_machine, _ = self._run_batch(
                runner, True, indices
            )
            unmapped_rows, unmapped_machine, _ = self._run_batch(
                runner, False, indices
            )
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except Exception as exc:
            # LaneDivergence mostly; but *any* vectorized failure is
            # recoverable the same way, and a genuine configuration or
            # simulation error will re-raise from the scalar replay
            # with its authentic scalar behavior.
            self._journal(runner, f"{type(exc).__name__}: {exc}")
            COUNTERS.batched_fallback_chunks += 1
            COUNTERS.batched_fallback_trials += 2 * len(indices)
            return self._scalar.run_pairs(runner, start, stop)
        # Commit only after both hypotheses vectorized cleanly, so a
        # fallen-back chunk contributes exactly its scalar accounting.
        lanes = len(indices)
        COUNTERS.trials += 2 * lanes
        COUNTERS.batched_chunks += 1
        COUNTERS.batched_vector_trials += 2 * lanes
        for machine in (mapped_machine, unmapped_machine):
            COUNTERS.simulated_cycles += machine.simulated_cycles
            COUNTERS.batched_lane_cycles += machine.simulated_cycles
            COUNTERS.batched_lanes_retired += machine.total_retired
            COUNTERS.batched_lanes_squashed += machine.total_squashes
        return [
            (mapped_rows[lane], unmapped_rows[lane])
            for lane in range(lanes)
        ]

    def _run_batch(
        self,
        runner: "AttackRunner",
        mapped: bool,
        indices: Sequence[int],
        seeds: Optional[Sequence[int]] = None,
        mem: Any = None,
        tape: Any = None,
    ) -> Tuple[List["TrialResult"], Any, Any]:
        """All of one hypothesis's trials in the chunk, in lockstep.

        ``seeds`` overrides the per-runner trial-seed schedule (the
        lane pool fuses compatible cells' trials into one pass, so one
        runner's pass may carry foreign seeds); ``mem`` supplies an
        already-reset warm memory system and ``tape`` a
        :class:`~repro.sim.tape.TapeRecorder` — both pool mechanisms,
        inert for per-cell batched execution.  Returns ``(rows,
        machine, measurement)`` where the measurement is the raw lane
        vector (a traced vector under recording) the rows were built
        from.
        """
        from repro.core.attack import TrialResult, attack_dram_config

        lockstep = self._lockstep
        config = runner.config
        if seeds is None:
            seeds = [_trial_seed(config, mapped, i) for i in indices]
        else:
            seeds = list(seeds)
        base_memory = config.memory_config or MemoryConfig(
            dram=attack_dram_config()
        )
        shared_region = (
            config.layout.probe_base,
            config.layout.probe_lines * config.layout.probe_stride,
        )
        snapshot_mode = config.snapshot_trials
        machine_seed = (
            runner._prologue_seed(mapped) if snapshot_mode else seeds[0]
        )
        predictor = runner._fresh_predictor()
        machine = lockstep.LockstepMachine(
            core_config=runner._core_config(),
            memory_config=replace(base_memory, seed=machine_seed),
            predictor=predictor,
            lane_seeds=seeds,
            shared_region=shared_region,
            mem=mem,
            tape=tape,
        )
        # A lane split (per-lane predictor deepcopies, for non-uniform
        # trainings like the persistent channel's probe-array reads) is
        # sound only for bare predictor chains: deepcopying a stateful
        # defense wrapper would fork state the defense deliberately
        # shares across trials (e.g. the R window RNG).  D/InvisiSpec
        # adjust the core config without wrapping, so they stay bare.
        machine.allow_lane_split = self._bare_chain(config.defense)
        # Any RNG living on the predictor chain (the R defense's shared
        # window stream) draws per-*trial* randomness the lockstep
        # batch cannot replay: guard it so the first draw restores the
        # stream and falls the chunk back to scalar.
        chain: Any = predictor
        while chain is not None:
            rng = getattr(chain, "_rng", None)
            if isinstance(rng, random.Random):
                machine.guard_rng(rng)
            chain = getattr(chain, "inner", None)
        env = runner._env_around(machine.mem, lockstep.LaneCore(machine))
        try:
            if snapshot_mode:
                # The snapshot protocol: one prologue under the fixed
                # per-hypothesis seed with a single shared jitter
                # stream (every scalar fork shares that one prologue's
                # draws), then per-lane trial streams for the measured
                # window — exactly ``reseed_jitter(trial_seed)``.
                machine.use_uniform_streams(machine_seed)
                runner.variant.run_prologue(env, mapped)
                machine.use_lane_streams(seeds)
                runner.variant.run_measured(env, mapped)
            else:
                # The default protocol: each lane models a fresh
                # machine under its own trial seed — per-lane jitter
                # streams from the start and per-lane backing-store
                # defaults; structural state is lane-uniform because
                # every lane executes the identical access sequence.
                machine.set_lane_default_seeds(seeds)
                runner.variant.run(env, mapped)
        except lockstep._LaneMeasurement as measured:
            values = measured.values
        else:
            raise lockstep.LaneDivergence(
                "measured window returned without a lane measurement"
            )
        sim_cycles = (
            machine.cycle
            + config.sync_base_cycles
            + config.sync_phase_cycles * runner.variant.num_phases
        )
        if config.channel is ChannelType.PERSISTENT:
            # The modelled decode cost (`AttackRunner._finish_trial`):
            # the receiver reloads the full probe range per trial.
            sim_cycles = sim_cycles + (
                config.decode_cycles_per_line * config.layout.probe_lines
            )
        rows = [
            TrialResult(
                measurement=float(values[lane]),
                sim_cycles=int(sim_cycles[lane]),
            )
            for lane in range(len(seeds))
        ]
        return rows, machine, values
