"""The lane-pool scheduler: continuous batching across cell boundaries.

:class:`PoolBackend` is a drop-in :class:`~repro.sim.SimBackend` that
keeps the lockstep engine's throughput independent of how trials
arrive.  The per-cell batched backend (:mod:`repro.sim.batched`) made
one *cell* fast; a sweep still paid for every cell separately — a
fresh machine per chunk, a full re-interpretation of the same dynamic
uop trace per group-sequential look, and lane economics tied to the
dispatch width.  The pool removes all three with two shared, process-
global resources:

* **Tape cache** (compatibility grouping + refill).  The first
  multi-batch dispatch of a program shape runs once under a
  :class:`~repro.sim.tape.TapeRecorder`; every later compatible
  dispatch — the same cell's next interim look, another cell with the
  same shape, another ``repro serve`` job's trials — is admitted into
  that one recorded lockstep pass by *replaying* the tape under the
  new per-lane seed schedule.  Replay has no machine, no fixed lane
  width and no per-column interpretation, so the scheduler admits
  exactly the trials the next look demands (1 lane or 128) and every
  ``TrialResult`` stays byte-identical to the per-cell batched
  backend regardless of admission order or width: the result is a
  pure function of the trial seed, and the seed schedule is the one
  thing the pool never changes.
* **Warm-machine pool.**  Passes that must run interpretively (tape
  miss, non-tapeable shapes like the persistent channel's predictor
  lane split, or a guard divergence) reuse a pooled
  :class:`~repro.memory.hierarchy.MemorySystem` via the byte-exact
  ``reset(seed)`` protocol instead of rebuilding caches per chunk.
  A pooled hierarchy is checked out for the duration of a pass and
  returned only after clean completion, so a mid-pass failure can
  never leak corrupt structural state into a later cell.

Demand-driven admission is structural: :meth:`PoolBackend.run_pairs`
dispatches exactly the ``start..stop`` range the sequential engine's
next look pulled — never padding lanes with speculative trials beyond
a cell's next undecided look boundary — and
:meth:`PoolBackend.note_early_stop` accounts the trials a
fill-the-vector scheduler would have burnt
(``COUNTERS.pool_trials_clipped``).  Occupancy is therefore exact by
construction (``pool_lanes_filled == pool_lanes_offered``); the
counters exist so CI can assert the invariant holds rather than trust
it.

Fallback semantics are inherited, not reimplemented: the pool
subclasses :class:`~repro.sim.batched.BatchedBackend` and only
overrides how one hypothesis's pass executes, so any vectorized
failure still falls the whole chunk back to the scalar backend with
the same journal entry and counter accounting the batched backend
gives.  A tape can only make the right answer cheaper, never a wrong
answer possible: replay re-checks every recorded guard and a
divergence falls back to a fresh interpretive pass.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.perf.counters import COUNTERS
from repro.sim.batched import BatchedBackend, _trial_seed
from repro.sim.tape import (
    ReplayDivergence,
    ReplayResult,
    Tape,
    TapeInvalid,
    TapeRecorder,
    replay,
)

__all__ = ["PoolBackend", "pool_backend"]


def _simple(value: Any) -> bool:
    return isinstance(value, (type(None), bool, int, float, str))


def _defense_key(defense: Any) -> Tuple[Any, ...]:
    """A stable identity for the defense's behaviour, if one exists.

    Config-only defenses expose nothing but simple attributes, so
    their class plus sorted attribute values names the behaviour
    exactly.  Anything holding live state (an RNG, a wrapped
    predictor) gets an ``id``-based key: the tape is then shared only
    across dispatches of the *same* defense object — which still
    covers every look of one cell, the dominant reuse — and the
    object is pinned by the caller so the id cannot be recycled.
    """
    if defense is None:
        return ("none",)
    attrs = vars(defense)
    # Live state often hides behind private names (the R defense's
    # ``_rng``), so the *classification* looks at every attribute;
    # only the public, simple ones form the value key.
    if all(_simple(value) for value in attrs.values()):
        return ("cfg", type(defense).__name__, tuple(
            (name, value)
            for name, value in sorted(attrs.items())
            if not name.startswith("_")
        ))
    return ("id", id(defense))


class PoolBackend(BatchedBackend):
    """Cross-cell continuous batching over the lockstep engine."""

    name = "pool"

    #: AttackConfig fields excluded from the compatibility key.
    #: ``seed``/``n_runs`` parameterize the seed schedule and budget,
    #: not the recorded pass; the ``sync_*``/``decode_*`` costs are
    #: applied to the replayed cycle vector per cell; ``backend`` is
    #: how the trial reached us; ``defense``/``memory_config`` get
    #: structured keys of their own.
    _KEY_EXCLUDED = frozenset({
        "seed", "n_runs", "backend", "defense", "memory_config",
        "sync_base_cycles", "sync_phase_cycles",
        "decode_cycles_per_line",
    })

    def __init__(self) -> None:
        super().__init__()
        self._tapes: Dict[Tuple[Any, ...], Tape] = {}
        self._norecord: Set[Tuple[Any, ...]] = set()
        #: Strong references behind ``("id", ...)`` defense keys, so a
        #: garbage-collected defense cannot hand its id to a stranger.
        self._pins: Dict[int, Any] = {}
        self._mems: Dict[Tuple[Any, ...], Any] = {}
        #: Memoized compatibility keys per live config object.  The
        #: config is stored in the value, which both pins its id and
        #: lets the hit path verify identity before trusting the key.
        self._key_cache: Dict[Tuple[int, bool], Tuple[Any, Tuple[Any, ...]]] = {}

    def reset(self) -> None:
        """Drop all pooled state (tests and long-lived daemons)."""
        self._tapes.clear()
        self._norecord.clear()
        self._pins.clear()
        self._mems.clear()
        self._key_cache.clear()

    # -- compatibility grouping -----------------------------------------
    def _compat_key(
        self, runner: "Any", mapped: bool
    ) -> Tuple[Any, ...]:
        """What must match for two dispatches to share one pass.

        Everything that shapes the dynamic uop trace or the recorded
        constants: the variant's program, the channel/layout/core
        parameters, the (seed-masked) memory geometry and the defense
        behaviour.  The snapshot protocol additionally pins the
        prologue seed, because the memoized prologue state is baked
        into the tape's constants.

        Memoized per live config object: AttackConfig is frozen for
        the life of a cell and a sequential cell dispatches hundreds
        of passes with the same config, so the repr-heavy key is built
        once per (config, hypothesis) rather than per pass.
        """
        config = runner.config
        cache_slot = (id(config), mapped)
        hit = self._key_cache.get(cache_slot)
        if hit is not None and hit[0] is config:
            return hit[1]
        fields = tuple(
            (f.name, repr(getattr(config, f.name)))
            for f in dataclasses.fields(config)
            if f.name not in self._KEY_EXCLUDED
        )
        memory_config = config.memory_config
        mem_key = (
            None if memory_config is None
            else repr(dataclasses.replace(memory_config, seed=0))
        )
        defense_key = _defense_key(config.defense)
        if defense_key[0] == "id":
            self._pins[id(config.defense)] = config.defense
        prologue = (
            runner._prologue_seed(mapped)
            if config.snapshot_trials else None
        )
        key = (
            runner.variant.name, mapped, fields, mem_key, defense_key,
            prologue,
        )
        self._key_cache[cache_slot] = (config, key)
        return key

    # -- warm-machine pool ----------------------------------------------
    def _mem_key(self, runner: "Any") -> Tuple[Any, ...]:
        config = runner.config
        memory_config = config.memory_config
        shared_region = (
            config.layout.probe_base,
            config.layout.probe_lines * config.layout.probe_stride,
        )
        return (
            None if memory_config is None
            else repr(dataclasses.replace(memory_config, seed=0)),
            shared_region,
        )

    def _checkout_mem(self, runner: "Any") -> Tuple[Any, Any]:
        """Pop a warm hierarchy for this pass, or None to build fresh.

        Checked out, not borrowed: the entry leaves the pool and is
        returned by :meth:`_checkin_mem` only after the pass completed
        cleanly, so an exception mid-pass (divergence, watchdog, tape
        abort) simply never returns the now-suspect hierarchy.
        """
        key = self._mem_key(runner)
        mem = self._mems.pop(key, None)
        if mem is not None:
            COUNTERS.pool_warm_mems += 1
        return key, mem

    def _checkin_mem(self, key: Tuple[Any, ...], machine: Any) -> None:
        self._mems[key] = machine.mem

    # -- demand accounting ----------------------------------------------
    def note_early_stop(self, runner: "Any", trials_done: int) -> None:
        """A sequential cell stopped with budget left: count the save.

        The trials a fill-every-lane scheduler would have already
        dispatched past the decisive look — one full chunk's worth per
        hypothesis, clipped to the cell's fixed-N budget — were never
        admitted, because admission is demand-driven.
        """
        from repro.sim.batched import CHUNK_LANES

        n_max = runner.config.n_runs
        COUNTERS.pool_trials_clipped += 2 * max(
            0, min(CHUNK_LANES, n_max) - trials_done
        )

    # -- the per-hypothesis pass ----------------------------------------
    def _run_batch(
        self,
        runner: "Any",
        mapped: bool,
        indices: Sequence[int],
        seeds: Optional[Sequence[int]] = None,
        mem: Any = None,
        tape: Any = None,
    ) -> Tuple[List["Any"], Any, Any]:
        config = runner.config
        if seeds is None:
            seeds = [_trial_seed(config, mapped, i) for i in indices]
        lanes = len(seeds)
        COUNTERS.pool_lanes_offered += lanes
        key = self._compat_key(runner, mapped)
        cached = self._tapes.get(key)
        if cached is not None:
            try:
                rows = self._replay_rows(runner, cached, seeds)
            except ReplayDivergence:
                COUNTERS.pool_replay_divergences += 1
            else:
                COUNTERS.pool_passes_replayed += 1
                COUNTERS.pool_lane_refills += lanes
                COUNTERS.pool_lanes_filled += lanes
                return rows
        rows_m = self._interpret(runner, mapped, indices, seeds, key)
        COUNTERS.pool_lanes_filled += lanes
        return rows_m

    def _interpret(
        self,
        runner: "Any",
        mapped: bool,
        indices: Sequence[int],
        seeds: Sequence[int],
        key: Tuple[Any, ...],
    ) -> Tuple[List["Any"], Any, Any]:
        """A real lockstep pass on a warm hierarchy, recording if due.

        Recording pays a one-time tracing overhead, so it happens only
        when a later compatible dispatch exists to amortize it: the
        dispatch does not already cover the cell's whole fixed-N
        budget (a sequential cell's first look, or the first chunk of
        a >128-trial cell).  A pass the tape cannot express aborts
        loudly mid-flight, poisons whatever it touched (the checked-
        out hierarchy simply is not returned) and re-runs untaped.
        """
        mem_key, mem = self._checkout_mem(runner)
        record = (
            key not in self._norecord
            and len(seeds) >= 2
            and (indices[0] > 0 or len(seeds) < runner.config.n_runs)
        )
        if record:
            recorder = TapeRecorder(len(seeds))
            try:
                rows, machine, values = super()._run_batch(
                    runner, mapped, indices, seeds=seeds,
                    mem=self._reset_mem(mem, runner, mapped, seeds),
                    tape=recorder,
                )
            except TapeInvalid:
                COUNTERS.pool_tapes_invalid += 1
                self._norecord.add(key)
                mem = None  # mid-pass abort: hierarchy is suspect
            else:
                tape = recorder.finalize(values, machine.cycle)
                tape.compiled()  # codegen now, not on the first replay
                self._tapes[key] = tape
                COUNTERS.pool_passes_recorded += 1
                self._checkin_mem(mem_key, machine)
                return rows, machine, values
        rows, machine, values = super()._run_batch(
            runner, mapped, indices, seeds=seeds,
            mem=self._reset_mem(mem, runner, mapped, seeds),
        )
        self._checkin_mem(mem_key, machine)
        return rows, machine, values

    def _reset_mem(
        self, mem: Any, runner: "Any", mapped: bool, seeds: Sequence[int]
    ) -> Any:
        """Reset a checked-out hierarchy to this pass's machine seed."""
        if mem is None:
            return None
        config = runner.config
        machine_seed = (
            runner._prologue_seed(mapped)
            if config.snapshot_trials else seeds[0]
        )
        mem.reset(machine_seed)
        return mem

    def _replay_rows(
        self, runner: "Any", tape: Tape, seeds: Sequence[int]
    ) -> Tuple[List["Any"], ReplayResult, np.ndarray]:
        """Rows for one hypothesis straight off the tape, no machine.

        Mirrors the tail of ``BatchedBackend._run_batch``: the
        modelled synchronisation and decode costs are per-cell
        constants applied *after* the pass, which is why cells with
        different cost models can still share a tape.
        """
        from repro.core.attack import TrialResult
        from repro.core.channels import ChannelType

        config = runner.config
        default_seeds = None
        if not config.snapshot_trials:
            default_seeds = np.asarray(
                [s & 0xFFFFFFFFFFFFFFFF for s in seeds], dtype=np.uint64
            )
        out = replay(tape, seeds, default_seeds)
        sim_cycles = (
            out.final_cycle
            + config.sync_base_cycles
            + config.sync_phase_cycles * runner.variant.num_phases
        )
        if config.channel is ChannelType.PERSISTENT:
            sim_cycles = sim_cycles + (
                config.decode_cycles_per_line * config.layout.probe_lines
            )
        rows = [
            TrialResult(
                measurement=float(out.measurement[lane]),
                sim_cycles=int(sim_cycles[lane]),
            )
            for lane in range(len(seeds))
        ]
        return rows, out, out.measurement


_POOL: Optional[PoolBackend] = None


def pool_backend() -> PoolBackend:
    """The process-global pool (tapes and warm machines are shared).

    A singleton by design: every :class:`AttackRunner` resolves its
    backend eagerly, and the whole point of the pool is that runners —
    including ones serving different ``repro serve`` jobs — admit
    their trials through the *same* tape cache and machine pool.
    """
    global _POOL
    if _POOL is None:
        _POOL = PoolBackend()
    return _POOL
