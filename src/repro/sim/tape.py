"""Trial-pass tapes: record one lockstep pass, replay it for new seeds.

The lane-pool scheduler (:mod:`repro.sim.schedule`) keeps the 128-lane
lockstep vector busy across cell and look boundaries.  Its key cost
observation: a :class:`~repro.sim.lockstep.LockstepMachine` pass is a
*Python* interpreter over the dynamic uop trace whose wall-clock is
dominated by per-column overhead, nearly independent of the lane count.
Every later group-sequential look of a cell — and every compatible cell
sharing the same program shape — re-interprets the identical trace,
differing **only** in the per-lane trial seeds.

A :class:`Tape` captures what actually depends on those seeds.  During
a recording pass the machine wraps exactly three kinds of per-lane
values in a :class:`TV` (traced vector):

* L2-jitter and DRAM-latency draws (:class:`~random.Random` streams
  seeded per lane) — recorded as *leaves*, re-drawn at replay from
  fresh streams in the recorded occurrence order;
* lane-default backing values (``splitmix64(paddr ^ seed_k)``) —
  recorded as leaves parameterized by ``paddr``;
* everything arithmetically derived from those, via ``TV``'s numpy
  operator interception — recorded as a straight-line SSA op list.

All other vectors in a vectorizable pass are provably lane-uniform
(the cycle clock starts at zeros, structural state is shared, and the
engine collapses any value that feeds structure through
``_uniform_int``), so they fold into scalar constants and the tape is
**lane-width agnostic**: a tape recorded at 24 lanes replays at 1, 7
or 128.

Replay soundness does not rest on the recording being representative.
Every lane-dependent branch the engine took flows through a *guard*:
``bool(np.all(...))`` / ``bool(np.any(...))`` sites call ``TV.all`` /
``TV.any``, which append a guard node carrying the recorded outcome,
and uniformity collapses append the collapsed constant.  Replay
re-evaluates every guard against the new seeds' values and raises
:class:`ReplayDivergence` on the first mismatch; the caller then falls
back to a fresh interpretive pass (which may itself diverge to the
scalar backend).  Correctness therefore never depends on a replay
succeeding — a tape can only make the right answer cheaper, never a
wrong answer possible.

Recording aborts loudly (:class:`TapeInvalid`) on anything the tape
cannot express: a predictor lane split, a traced vector escaping into
an untraced numpy path (``TV.__array__`` refuses to demote), or a
non-uniform constant.  The aborted pass's machine state is discarded
and the pass re-runs untaped.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ReplayDivergence",
    "ReplayResult",
    "Tape",
    "TapeInvalid",
    "TapeRecorder",
    "TV",
    "replay",
]


class TapeInvalid(Exception):
    """The pass left the tape's envelope while recording.

    Internal control flow of the pool scheduler: the recording attempt
    is abandoned, the key is marked non-recordable, and the pass
    re-runs untaped.  Never surfaced to callers.
    """


class ReplayDivergence(Exception):
    """A replayed guard evaluated differently under the new seeds.

    The recorded control path is not valid for these lanes; the caller
    falls back to a fresh interpretive pass.
    """


#: Ufunc names a traced vector may record.  Everything the lockstep
#: engine's cycle/value arithmetic can reach; an unlisted ufunc aborts
#: recording rather than guessing.
_UFUNCS = frozenset({
    "add", "subtract", "multiply", "maximum", "minimum",
    "bitwise_and", "bitwise_or", "bitwise_xor", "invert",
    "left_shift", "right_shift",
    "less", "less_equal", "greater", "greater_equal",
    "equal", "not_equal", "logical_and", "logical_or", "logical_not",
})


def _const_ref(value: Any) -> Tuple[str, Any, Optional[str]]:
    """A constant operand as a ``("c", scalar, dtype)`` reference.

    Vector constants must be lane-uniform — anything per-lane reaches
    a tape only through leaves — so they fold to a scalar, making the
    tape independent of the recorded lane count.  The dtype is kept so
    replay reproduces numpy's exact promotion behaviour.
    """
    if isinstance(value, np.ndarray):
        if value.ndim == 0:
            return ("c", value.item(), value.dtype.name)
        first = value.flat[0]
        if not bool(np.all(value == first)):
            raise TapeInvalid("non-uniform constant vector in a tape")
        return ("c", first.item(), value.dtype.name)
    if isinstance(value, np.generic):
        return ("c", value.item(), value.dtype.name)
    if isinstance(value, (bool, int, float)):
        return ("c", value, None)
    raise TapeInvalid(f"untapeable operand {type(value).__name__}")


class TV:
    """A traced vector: a concrete per-lane array plus its tape node.

    Not an ``ndarray`` subclass — silent demotion through
    ``np.asarray`` is exactly the unsoundness this wrapper exists to
    prevent, so ``__array__`` raises instead.  The ``shadow`` array is
    the value the interpretive pass would have computed; the recording
    pass's results are read from shadows, so recording can never
    change an answer.
    """

    __slots__ = ("shadow", "tape", "idx")

    def __init__(self, shadow: np.ndarray, tape: "TapeRecorder", idx: int):
        self.shadow = shadow
        self.tape = tape
        self.idx = idx

    # -- loud-failure discipline ---------------------------------------
    def __array__(self, dtype: object = None, copy: object = None):
        raise TapeInvalid(
            "a traced vector reached an untraced numpy path"
        )

    def __bool__(self) -> bool:
        raise TapeInvalid("a traced vector collapsed to one bool")

    def __len__(self) -> int:
        return len(self.shadow)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"TV(n{self.idx}, {self.shadow!r})"

    # -- recording core -------------------------------------------------
    def _ref(self) -> Tuple[str, int]:
        return ("n", self.idx)

    def __array_ufunc__(
        self, ufunc: Any, method: str, *inputs: Any, **kwargs: Any
    ) -> "TV":
        if method != "__call__" or kwargs.get("out") is not None:
            raise TapeInvalid(f"untapeable ufunc use {ufunc.__name__}")
        name = ufunc.__name__
        if name not in _UFUNCS:
            raise TapeInvalid(f"untapeable ufunc {name}")
        tape = self.tape
        refs = []
        shadows = []
        for value in inputs:
            if isinstance(value, TV):
                if value.tape is not tape:
                    raise TapeInvalid("traced vectors from two tapes met")
                refs.append(value._ref())
                shadows.append(value.shadow)
            else:
                refs.append(_const_ref(value))
                shadows.append(value)
        with np.errstate(over="ignore"):
            shadow = ufunc(*shadows)
        return tape._emit(("u", name, tuple(refs)), shadow)

    # -- Python operator protocol (plain int/float on either side) -----
    def _binop(self, name: str, other: Any, swapped: bool) -> "TV":
        ufunc = getattr(np, name)
        if swapped:
            return self.__array_ufunc__(ufunc, "__call__", other, self)
        return self.__array_ufunc__(ufunc, "__call__", self, other)

    def __add__(self, other: Any) -> "TV":
        return self._binop("add", other, False)

    def __radd__(self, other: Any) -> "TV":
        return self._binop("add", other, True)

    def __sub__(self, other: Any) -> "TV":
        return self._binop("subtract", other, False)

    def __rsub__(self, other: Any) -> "TV":
        return self._binop("subtract", other, True)

    def __mul__(self, other: Any) -> "TV":
        return self._binop("multiply", other, False)

    def __rmul__(self, other: Any) -> "TV":
        return self._binop("multiply", other, True)

    def __and__(self, other: Any) -> "TV":
        return self._binop("bitwise_and", other, False)

    def __rand__(self, other: Any) -> "TV":
        return self._binop("bitwise_and", other, True)

    def __or__(self, other: Any) -> "TV":
        return self._binop("bitwise_or", other, False)

    def __ror__(self, other: Any) -> "TV":
        return self._binop("bitwise_or", other, True)

    def __xor__(self, other: Any) -> "TV":
        return self._binop("bitwise_xor", other, False)

    def __rxor__(self, other: Any) -> "TV":
        return self._binop("bitwise_xor", other, True)

    def __lshift__(self, other: Any) -> "TV":
        return self._binop("left_shift", other, False)

    def __rshift__(self, other: Any) -> "TV":
        return self._binop("right_shift", other, False)

    def __invert__(self) -> "TV":
        return self.__array_ufunc__(np.invert, "__call__", self)

    def __lt__(self, other: Any) -> "TV":
        return self._binop("less", other, False)

    def __le__(self, other: Any) -> "TV":
        return self._binop("less_equal", other, False)

    def __gt__(self, other: Any) -> "TV":
        return self._binop("greater", other, False)

    def __ge__(self, other: Any) -> "TV":
        return self._binop("greater_equal", other, False)

    def __eq__(self, other: Any) -> "TV":  # type: ignore[override]
        return self._binop("equal", other, False)

    def __ne__(self, other: Any) -> "TV":  # type: ignore[override]
        return self._binop("not_equal", other, False)

    __hash__ = None  # type: ignore[assignment]

    # -- ndarray method surface the engine touches ----------------------
    def astype(self, dtype: Any) -> "TV":
        shadow = self.shadow.astype(dtype)
        return self.tape._emit(
            ("astype", np.dtype(dtype).name, self._ref()), shadow
        )

    def copy(self) -> "TV":
        # Tape values are SSA (never mutated in place), so a defensive
        # copy shares the node and only copies the shadow.
        return TV(self.shadow.copy(), self.tape, self.idx)

    def __getitem__(self, index: Any) -> Any:
        # Concrete read-out (the backend's per-lane TrialResult
        # construction); pure shadow access, nothing to record.
        return self.shadow[index]

    def all(self, axis: Any = None, out: Any = None, **kwargs: Any) -> bool:
        """``np.all`` lands here: collapse to a bool, guarded.

        Every lane-dependent branch the engine takes goes through
        ``bool(np.all(...))`` / ``bool(np.any(...))``, so these two
        methods give complete branch coverage with no engine changes.
        """
        if axis is not None or out is not None:
            raise TapeInvalid("untapeable reduction arguments")
        outcome = bool(np.all(self.shadow))
        self.tape._guard(("g_bool", "all", self._ref(), outcome))
        return outcome

    def any(self, axis: Any = None, out: Any = None, **kwargs: Any) -> bool:
        if axis is not None or out is not None:
            raise TapeInvalid("untapeable reduction arguments")
        outcome = bool(np.any(self.shadow))
        self.tape._guard(("g_bool", "any", self._ref(), outcome))
        return outcome

    def sum(self, axis: Any = None, **kwargs: Any) -> int:
        """``np.sum`` lands here: a per-run cycle total (an *output*).

        The engine's only traced reduction is the simulated-cycle
        accumulation at the end of ``run_program``; record it as an
        output node so replay reports lane-correct cycle totals.
        """
        if axis is not None:
            raise TapeInvalid("untapeable reduction arguments")
        total = int(np.sum(self.shadow))
        self.tape._sum_output(self._ref())
        return total


class TapeRecorder:
    """Accumulates one pass's nodes; finalized into a :class:`Tape`."""

    def __init__(self, lanes: int) -> None:
        if lanes < 2:
            # A 1-lane recording cannot distinguish lane-uniform from
            # lane-dependent (everything is trivially uniform), so its
            # constants would be unsound to fold.
            raise TapeInvalid("recording needs at least 2 lanes")
        self.lanes = lanes
        self.nodes: List[Tuple[Any, ...]] = []
        #: ``(retired_columns, squashes)`` per completed ``run_program``
        #: — per-lane-uniform counts, scaled by the replay lane count.
        self.runs: List[Tuple[int, int]] = []
        self._sum_refs: List[Tuple[str, int]] = []

    # -- engine-facing hooks --------------------------------------------
    def leaf_l2(self, shadow: np.ndarray, jitter: int) -> TV:
        return self._emit(("leaf_l2", jitter), shadow)

    def leaf_dram(
        self, shadow: np.ndarray,
        base: int, jitter: int, tail_extra: int, tail_probability: float,
    ) -> TV:
        return self._emit(
            ("leaf_dram", base, jitter, tail_extra, tail_probability),
            shadow,
        )

    def leaf_default(self, shadow: np.ndarray, paddr: int) -> TV:
        return self._emit(("leaf_default", paddr), shadow)

    def note_run(self, retired_columns: int, squashes: int) -> None:
        self.runs.append((retired_columns, squashes))

    def guard_uniform(self, tv: TV, value: int) -> None:
        """Pin a uniformity collapse: replay must see the same value."""
        self._guard(("g_uniform", tv._ref(), value))

    def guard_oversubscription(
        self, issues: Sequence[Any], cap: int, what: str
    ) -> None:
        """Re-checkable form of the issue-width/port guard.

        The recorded pass verified the caps hold; replay re-sorts the
        (re-evaluated) issue cycles and re-verifies, because jitter
        under new seeds can make a cap bind that did not bind before.
        """
        refs = tuple(
            value._ref() if isinstance(value, TV) else _const_ref(value)
            for value in issues
        )
        self._guard(("g_oversub", refs, cap, what))

    # -- internals -------------------------------------------------------
    def _emit(self, node: Tuple[Any, ...], shadow: Any) -> TV:
        if not isinstance(shadow, np.ndarray) or shadow.ndim != 1:
            raise TapeInvalid("traced value is not a lane vector")
        self.nodes.append(node)
        return TV(shadow, self, len(self.nodes) - 1)

    def _guard(self, node: Tuple[Any, ...]) -> None:
        self.nodes.append(node)

    def _sum_output(self, ref: Tuple[str, int]) -> None:
        self.nodes.append(("sum", ref))
        self._sum_refs.append(ref)

    def finalize(
        self, measurement: Any, final_cycle: Any
    ) -> "Tape":
        """Seal the recording once the pass produced its measurement."""
        out_measure = (
            measurement._ref() if isinstance(measurement, TV)
            else _const_ref(measurement)
        )
        out_cycle = (
            final_cycle._ref() if isinstance(final_cycle, TV)
            else _const_ref(final_cycle)
        )
        return Tape(
            nodes=tuple(self.nodes),
            runs=tuple(self.runs),
            out_measure=out_measure,
            out_cycle=out_cycle,
            recorded_lanes=self.lanes,
        )


class Tape:
    """A sealed, replayable recording of one trial pass.

    Replays through a *compiled* form: :func:`_compile` turns the node
    list into one straight-line Python function (built lazily on first
    replay, cached on the tape).  A naive node-walking interpreter
    spends most of its time on per-node dispatch and operand
    resolution — measured barely 1.3x faster than re-interpreting the
    trace — while the compiled form is a flat sequence of pre-bound
    ufunc calls, which is what makes replay decisively cheaper than
    interpretation.
    """

    __slots__ = (
        "nodes", "runs", "out_measure", "out_cycle", "recorded_lanes",
        "_compiled",
    )

    def __init__(
        self,
        nodes: Tuple[Tuple[Any, ...], ...],
        runs: Tuple[Tuple[int, int], ...],
        out_measure: Tuple[str, ...],
        out_cycle: Tuple[str, ...],
        recorded_lanes: int,
    ) -> None:
        self.nodes = nodes
        self.runs = runs
        self.out_measure = out_measure
        self.out_cycle = out_cycle
        self.recorded_lanes = recorded_lanes
        self._compiled: Optional["_CompiledTape"] = None

    def compiled(self) -> "_CompiledTape":
        """The compiled form, building it on first use.

        Callers that just recorded a tape compile here eagerly, so
        the one-time codegen cost lands in the recording pass (already
        the slow path) instead of inflating the first replay.
        """
        if self._compiled is None:
            self._compiled = _compile(self)
        return self._compiled


class ReplayResult:
    """Per-lane outputs of a successful replay."""

    __slots__ = (
        "measurement", "final_cycle", "simulated_cycles",
        "total_retired", "total_squashes",
    )

    def __init__(
        self,
        measurement: np.ndarray,
        final_cycle: np.ndarray,
        simulated_cycles: int,
        total_retired: int,
        total_squashes: int,
    ) -> None:
        self.measurement = measurement
        self.final_cycle = final_cycle
        self.simulated_cycles = simulated_cycles
        self.total_retired = total_retired
        self.total_squashes = total_squashes


class _CompiledTape:
    """A tape lowered to one straight-line Python function.

    ``fn(lanes, DM, DD, default_seeds, C, DT)`` evaluates every *live*
    node (dead arithmetic is pruned by a backward liveness pass; leaf
    *draws* are never dead because they advance the per-lane RNG
    streams, only their stores are skipped) and returns
    ``(measurement, final_cycle, simulated_cycles)``.
    """

    __slots__ = (
        "fn", "mem_jitters", "dram_params", "consts", "dtypes",
        "needs_defaults",
    )

    def __init__(
        self,
        fn: Any,
        mem_jitters: Tuple[int, ...],
        dram_params: Tuple[Tuple[int, int, int, float], ...],
        consts: Tuple[Any, ...],
        dtypes: Tuple[Any, ...],
        needs_defaults: bool,
    ) -> None:
        self.fn = fn
        self.mem_jitters = mem_jitters
        self.dram_params = dram_params
        self.consts = consts
        self.dtypes = dtypes
        self.needs_defaults = needs_defaults


def _mem_draws(
    lane_seeds: Sequence[int], jitters: Sequence[int]
) -> List[np.ndarray]:
    """Per-leaf L2-jitter vectors, in recorded stream order per lane."""
    cols = [[0] * len(lane_seeds) for _ in jitters]
    for lane, seed in enumerate(lane_seeds):
        draw = random.Random(seed ^ 0xC0FFEE).randint
        for k, jitter in enumerate(jitters):
            cols[k][lane] = draw(0, jitter)
    return [np.asarray(col, dtype=np.int64) for col in cols]


def _dram_draws(
    lane_seeds: Sequence[int],
    params: Sequence[Tuple[int, int, int, float]],
) -> List[np.ndarray]:
    """Per-leaf DRAM-latency vectors (``DramModel.access_latency``)."""
    cols = [[0] * len(lane_seeds) for _ in params]
    for lane, seed in enumerate(lane_seeds):
        rng = random.Random(seed ^ 0x33)
        draw = rng.randint
        uniform = rng.random
        for k, (base, jitter, tail_extra, tail_probability) in (
            enumerate(params)
        ):
            latency = base
            if jitter:
                latency += draw(0, jitter)
            if tail_extra and uniform() < tail_probability:
                latency += tail_extra
            cols[k][lane] = latency
    return [np.asarray(col, dtype=np.int64) for col in cols]


def _live_nodes(tape: Tape) -> set:
    """Indices of value nodes something downstream actually reads."""
    used: set = set()

    def mark(ref: Tuple[Any, ...]) -> None:
        if ref[0] == "n":
            used.add(ref[1])

    mark(tape.out_measure)
    mark(tape.out_cycle)
    for node in tape.nodes:
        kind = node[0]
        if kind == "g_bool":
            mark(node[2])
        elif kind == "g_uniform":
            mark(node[1])
        elif kind == "g_oversub":
            for ref in node[1]:
                mark(ref)
        elif kind == "sum":
            mark(node[1])
    for idx in range(len(tape.nodes) - 1, -1, -1):
        if idx not in used:
            continue
        node = tape.nodes[idx]
        if node[0] == "u":
            for ref in node[2]:
                mark(ref)
        elif node[0] == "astype":
            mark(node[2])
    return used


def _compile(tape: Tape) -> _CompiledTape:
    """Lower a tape to source, ``exec`` it, return the bundle."""
    from repro.sim.lockstep import _splitmix64_vec

    consts: List[Any] = []
    const_index: dict = {}
    dtypes: List[Any] = []
    dtype_index: dict = {}
    mem_jitters: List[int] = []
    dram_params: List[Tuple[int, int, int, float]] = []
    live = _live_nodes(tape)

    def cref(scalar: Any, dtype: Optional[str]) -> str:
        key = (scalar, dtype)
        if key not in const_index:
            const_index[key] = len(consts)
            consts.append(
                scalar if dtype is None else np.dtype(dtype).type(scalar)
            )
        return f"C[{const_index[key]}]"

    def rexpr(ref: Tuple[Any, ...]) -> str:
        if ref[0] == "n":
            return f"v{ref[1]}"
        return cref(ref[1], ref[2])

    def dref(name: str) -> str:
        if name not in dtype_index:
            dtype_index[name] = len(dtypes)
            dtypes.append(np.dtype(name))
        return f"DT[{dtype_index[name]}]"

    # Pre-bound ufuncs: one global per distinct op, no attribute walks
    # in the hot path.
    bound: dict = {
        "np": np,
        "RD": ReplayDivergence,
        "_smx": _splitmix64_vec,
        "_sort": np.sort,
        "_stack": np.stack,
        "_full": np.full,
        "_f64": np.float64,
    }
    lines: List[str] = [
        "def _run(lanes, DM, DD, default_seeds, C, DT):",
        "  _S = 0",
        "  with np.errstate(over='ignore'):",
    ]
    emit = lines.append
    for idx, node in enumerate(tape.nodes):
        kind = node[0]
        if kind == "u":
            if idx not in live:
                continue
            _, name, refs = node
            uname = f"_u_{name}"
            bound[uname] = getattr(np, name)
            args = ", ".join(rexpr(ref) for ref in refs)
            emit(f"    v{idx} = {uname}({args})")
        elif kind == "leaf_l2":
            slot = len(mem_jitters)
            mem_jitters.append(node[1])
            if idx in live:
                emit(f"    v{idx} = DM[{slot}]")
        elif kind == "leaf_dram":
            slot = len(dram_params)
            dram_params.append(node[1:])
            if idx in live:
                emit(f"    v{idx} = DD[{slot}]")
        elif kind == "leaf_default":
            if idx not in live:
                continue
            paddr = cref(node[1], "uint64")
            emit(f"    v{idx} = _smx({paddr} ^ default_seeds)")
        elif kind == "astype":
            if idx not in live:
                continue
            _, dtype, ref = node
            emit(f"    v{idx} = {rexpr(ref)}.astype({dref(dtype)})")
        elif kind == "g_bool":
            _, which, ref, expected = node
            test = f"{rexpr(ref)}.{which}()"
            if expected:
                test = f"not {test}"
            emit(f"    if {test}:")
            emit(f"      raise RD('{which}-guard flipped')")
        elif kind == "g_uniform":
            _, ref, expected = node
            expr = rexpr(ref)
            emit(f"    _t = {expr}[0]")
            emit(
                f"    if ({expr} != _t).any() or _t != {expected!r}:"
            )
            emit("      raise RD('uniform collapse broke')")
        elif kind == "g_oversub":
            _, refs, cap, what = node
            if len(refs) <= cap:
                continue
            stack_args = ", ".join(
                rexpr(ref) if ref[0] == "n"
                else f"_full(lanes, {rexpr(ref)})"
                for ref in refs
            )
            emit(f"    _st = _sort(_stack([{stack_args}]), 0)")
            emit(f"    if (_st[{cap}:] <= _st[:-{cap}]).any():")
            emit(f"      raise RD('{what} oversubscribed')")
        elif kind == "sum":
            emit(f"    _S += int({rexpr(node[1])}.sum())")
        else:  # pragma: no cover - exhaustive over node kinds
            raise ReplayDivergence(f"unknown tape node {kind!r}")
    if tape.out_measure[0] == "n":
        emit(f"    _meas = v{tape.out_measure[1]}.astype(_f64)")
    else:
        emit(
            f"    _meas = _full(lanes, {rexpr(tape.out_measure)}, _f64)"
        )
    if tape.out_cycle[0] == "n":
        emit(f"    _cyc = v{tape.out_cycle[1]}")
    else:
        emit(f"    _cyc = _full(lanes, {rexpr(tape.out_cycle)})")
    emit("  return _meas, _cyc, _S")
    namespace: dict = {}
    exec(  # noqa: S102 - source is generated from our own node list
        compile("\n".join(lines), "<tape>", "exec"), bound, namespace
    )
    return _CompiledTape(
        fn=namespace["_run"],
        mem_jitters=tuple(mem_jitters),
        dram_params=tuple(dram_params),
        consts=tuple(consts),
        dtypes=tuple(dtypes),
        needs_defaults=any(
            node[0] == "leaf_default" for node in tape.nodes
        ),
    )


def replay(
    tape: Tape,
    lane_seeds: Sequence[int],
    default_seeds: Optional[np.ndarray],
) -> ReplayResult:
    """Evaluate a tape for new per-lane seeds.

    ``default_seeds`` is the machine's lane-default backing-value
    vector (``None`` when the recorded protocol never set one; a tape
    with ``leaf_default`` nodes then cannot replay).  Raises
    :class:`ReplayDivergence` on the first guard mismatch.
    """
    compiled = tape.compiled()
    lanes = len(lane_seeds)
    if compiled.needs_defaults and default_seeds is None:
        raise ReplayDivergence(
            "tape reads lane defaults the machine did not set"
        )
    draws_mem = (
        _mem_draws(lane_seeds, compiled.mem_jitters)
        if compiled.mem_jitters else ()
    )
    draws_dram = (
        _dram_draws(lane_seeds, compiled.dram_params)
        if compiled.dram_params else ()
    )
    measurement, final_cycle, simulated_cycles = compiled.fn(
        lanes, draws_mem, draws_dram, default_seeds,
        compiled.consts, compiled.dtypes,
    )
    if not isinstance(final_cycle, np.ndarray):  # pragma: no cover
        final_cycle = np.full(lanes, final_cycle)
    return ReplayResult(
        measurement=measurement,
        final_cycle=final_cycle,
        simulated_cycles=simulated_cycles,
        total_retired=sum(run[0] for run in tape.runs) * lanes,
        total_squashes=sum(run[1] for run in tape.runs) * lanes,
    )
