"""Structure-of-arrays lockstep engine for the batched backend.

One :class:`LockstepMachine` simulates **many trials of the same cell
program at once**.  Trials of one hypothesis batch execute the exact
same dynamic uop trace (straight-line programs, no data-dependent
control flow in the native envelope), so the machine keeps *structural*
state — caches, TLB, the value predictor — once, shared by every lane,
and keeps *per-lane* state — cycle schedules, jitter RNG streams,
default memory values — as numpy ``[lanes]`` vectors.

Instead of stepping cycles, the engine makes a single forward pass
over the dynamic trace in dispatch order and computes each column's
dispatch / issue / value-ready / complete / retire cycles as max-plus
recurrences that are provably equal to the scalar core's greedy
schedule (see ``docs/ARCHITECTURE.md`` §14 for the derivation):

* dispatch: ``D[n] = max(D[n-1], D[n-fetch_width] + 1, stall,
  R[last FENCE], R[n-rob_size])`` — in-order, width-limited, stalled
  after squashes, gated by fences and ROB occupancy (commit precedes
  dispatch within a cycle, so the ``R`` terms allow equality);
* issue: ``I = max(D + 1, producers' value-ready)`` (the scalar issue
  stage runs before dispatch in a cycle, hence the ``+1``; consumers
  may issue the same cycle a producer's value becomes ready), with
  memory ops additionally chained in program order through the two
  memory ports: ``I_mem[k] >= max(I_mem[k-1], I_mem[k-2] + 1)``;
* retire: ``R[n] = max(C[n], R[n-1], R[n-commit_width] + 1)``;
  serialising ops (FENCE/RDTSC) execute at the ROB head instead:
  ``C = VR = R = max(R[n-1], D + 1, R[n-commit_width] + 1)``.

The recurrences assume the *unconstrained* schedule never oversubscribes
the issue width or the ALU/MUL ports; a post-hoc sorted-issue-cycle
check verifies that per lane and raises :class:`LaneDivergence` when
it would bind (greedy-with-caps then differs from unconstrained, so the
chunk is replayed on the scalar backend — never silently wrong).

Beyond the straight-line schedule, the engine models the scalar core's
out-of-envelope machinery in lane-uniform form:

* **Squash windows execute transiently.**  A mispredicted load's
  younger window (up to the next FENCE) is replayed against a rename
  *overlay* seeded with the predicted value; each transient op's
  dispatch/issue cycles follow the same recurrences, and an op is
  "issued" only when its issue cycle precedes the squash cycle in
  *every* lane (a straddle diverges).  Transient loads walk the real
  caches — the persistent channel's footprint — and enqueue *masked*
  trainings (a lane trains only where the load completed before the
  squash).  A transient op whose issue never happens blocks all
  younger transient memory ops, exactly like the scalar issue stage's
  ``memory_blocked``.
* **The training ledger is masked and order-free.**  Pending trainings
  carry per-lane completion vectors, optional per-lane masks, and a
  sequence number; they apply in ``(completion, seq)`` order.  While
  the order and values are lane-uniform the one shared predictor
  suffices; the first non-uniform application *splits* the predictor
  into per-lane deepcopies (allowed only for bare chains — no stateful
  defense wrappers) and replays each lane's schedule independently.
  Per-lane predictions must re-agree or the batch diverges.
* **Deferred fills are an event queue.**  Under the D defense a
  speculative load's fill waits for its speculation source's verify
  cycle; under InvisiSpec every load's fill waits for its retire
  cycle.  The engine records ``(cycle vector, paddr)`` events and
  applies them to the shared hierarchy before every later structural
  access whose issue is past the event in every lane (a straddle, or
  a cross-lane reorder of two events, diverges).
* **The R defense's RNG is guarded, never simulated.**  Its window
  draws are per-*trial* randomness with a cross-trial shared stream —
  one batch cannot replay 128 interleaved streams.  The backend
  snapshots the defense RNG state; the first draw restores it and
  diverges, so the scalar replay sees a pristine stream.

Everything the engine cannot prove lane-uniform or schedule-exact —
stores, non-uniform addresses, cross-lane prediction disagreement,
SMT co-runners, cycle-budget proximity — raises
:class:`LaneDivergence` the same way.  Correctness never depends on
the eligibility analysis being complete, only on these runtime guards
being conservative.

Measurements leave the engine through a deliberate trap:
:class:`LaneCore` quacks like :class:`repro.pipeline.core.Core` for the
variant orchestration code, but its :class:`LaneRunResult` wraps cycle
vectors in :class:`_LaneInt`, whose ``float()`` — the last operation of
every variant's measured window — raises :class:`_LaneMeasurement`
carrying the per-lane measurement vector.  The real Table II variant
code therefore runs unmodified, and a measured window that returns
*without* raising took a path the engine does not model — which is
itself treated as a divergence.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.isa.instructions import AluOp, Instruction, Opcode
from repro.memory.address import line_address
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.memory.memsys import _splitmix64
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import EA_MASK, _alu_compute
from repro.sim.tape import TV, TapeInvalid, TapeRecorder
from repro.vp.base import AccessKey, Prediction, ValuePredictor
from repro.vp.nopred import NoPredictor

_VALUE_MASK = (1 << 64) - 1

#: Sentinel issue cycle for transient ops that never issue before the
#: squash: far beyond any real schedule, so anything chained after it
#: classifies as "not issued" in every lane.
_FAR = 1 << 62

#: SplitMix64 constants, as unsigned 64-bit numpy scalars.
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)


class LaneDivergence(Exception):
    """The batch left the engine's provably-exact envelope.

    Not a :class:`~repro.errors.ReproError`: this is internal control
    flow of the batched backend (the chunk transparently re-runs on the
    scalar backend), never an error surfaced to callers.
    """


class _LaneMeasurement(Exception):
    """Carries the per-lane measurement vector out of variant code."""

    def __init__(self, values: np.ndarray) -> None:
        super().__init__("lane measurement")
        self.values = values


def _splitmix64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.memory.memsys._splitmix64` (uint64 in/out)."""
    with np.errstate(over="ignore"):
        v = (values + _SM_GAMMA).astype(np.uint64)
        v = ((v ^ (v >> np.uint64(30))) * _SM_MUL1).astype(np.uint64)
        v = ((v ^ (v >> np.uint64(27))) * _SM_MUL2).astype(np.uint64)
        return v ^ (v >> np.uint64(31))


def _alu_vec(alu_op: AluOp, lhs: object, rhs: object) -> object:
    """Vector-aware ALU evaluation matching ``_alu_compute`` per lane.

    Traced vectors must not pass through ``np.asarray`` (that would
    silently drop their tape node), so they cast via their own
    ``astype``; the ufunc arithmetic below records itself.
    """
    left = (
        lhs.astype(np.uint64) if isinstance(lhs, TV)
        else np.asarray(lhs).astype(np.uint64)
    )
    right = (
        rhs.astype(np.uint64) if isinstance(rhs, TV)
        else np.asarray(rhs).astype(np.uint64)
    )
    with np.errstate(over="ignore"):
        if alu_op is AluOp.ADD:
            result = left + right
        elif alu_op is AluOp.SUB:
            result = left - right
        elif alu_op is AluOp.XOR:
            result = left ^ right
        elif alu_op is AluOp.AND:
            result = left & right
        elif alu_op is AluOp.OR:
            result = left | right
        elif alu_op is AluOp.MUL:
            result = left * right
        elif alu_op is AluOp.SHL:
            result = left << (right & np.uint64(63))
        elif alu_op is AluOp.SHR:
            result = left >> (right & np.uint64(63))
        else:  # pragma: no cover - exhaustive over AluOp
            raise LaneDivergence(f"unhandled ALU op {alu_op}")
    return result.astype(np.uint64)


def _uniform_int(value: object, what: str) -> int:
    """Collapse a lane value to a plain int, or diverge.

    A traced vector's collapse is additionally pinned on the tape:
    the recorded constant fed structure (an address, a trained value),
    so a replay under new seeds must re-verify the collapse.
    """
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, TV):
        shadow = value.shadow
        first = shadow.flat[0]
        if not bool(np.all(shadow == first)):
            raise LaneDivergence(f"non-uniform {what} across lanes")
        value.tape.guard_uniform(value, int(first))
        return int(first)
    array = np.asarray(value)
    first = array.flat[0]
    if not bool(np.all(array == first)):
        raise LaneDivergence(f"non-uniform {what} across lanes")
    return int(first)


class _LaneInt:
    """An integer-per-lane quantity that refuses to become one float.

    Supports the arithmetic the variant layer actually performs on
    run results (subtraction for RDTSC deltas); ``float()`` raises
    :class:`_LaneMeasurement` so the measurement escapes with its full
    lane vector instead of collapsing.
    """

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = values

    def __sub__(self, other: object) -> "_LaneInt":
        if isinstance(other, _LaneInt):
            return _LaneInt(self.values - other.values)
        return _LaneInt(self.values - other)  # type: ignore[operator]

    def __rsub__(self, other: object) -> "_LaneInt":
        return _LaneInt(other - self.values)  # type: ignore[operator]

    def __add__(self, other: object) -> "_LaneInt":
        if isinstance(other, _LaneInt):
            return _LaneInt(self.values + other.values)
        return _LaneInt(self.values + other)  # type: ignore[operator]

    __radd__ = __add__

    def __float__(self) -> float:
        raise _LaneMeasurement(self.values.astype(np.float64))

    def __int__(self) -> int:
        raise _LaneMeasurement(self.values.astype(np.float64))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"_LaneInt({self.values!r})"


class LaneRunResult:
    """Per-lane analogue of :class:`repro.pipeline.trace.RunResult`."""

    __slots__ = (
        "program_name", "pid", "start_cycles", "end_cycles",
        "retired", "squashes", "rdtsc_values",
    )

    def __init__(
        self,
        program_name: str,
        pid: int,
        start_cycles: np.ndarray,
        end_cycles: np.ndarray,
        retired: int,
        squashes: int,
        rdtsc_values: List[Tuple[int, _LaneInt]],
    ) -> None:
        self.program_name = program_name
        self.pid = pid
        self.start_cycles = start_cycles
        self.end_cycles = end_cycles
        self.retired = retired
        self.squashes = squashes
        #: ``(pc, _LaneInt)`` pairs: consumers that subtract two
        #: readings (directly or via ``probe_latencies_from_rdtsc``)
        #: get a :class:`_LaneInt` back, so the eventual ``float()``
        #: raises the lane measurement instead of a TypeError.
        self.rdtsc_values = rdtsc_values

    @property
    def cycles(self) -> _LaneInt:
        """Per-lane run length (``end - start``), as a lane vector."""
        return _LaneInt(self.end_cycles - self.start_cycles)

    def rdtsc_delta(self, first: int = 0, second: int = 1) -> _LaneInt:
        """Per-lane difference between two RDTSC readings."""
        if len(self.rdtsc_values) <= max(first, second):
            raise LaneDivergence(
                f"program {self.program_name} recorded "
                f"{len(self.rdtsc_values)} RDTSC values, need {second + 1}"
            )
        return self.rdtsc_values[second][1] - self.rdtsc_values[first][1]


class LaneCore:
    """Quacks like :class:`~repro.pipeline.core.Core` for variant code."""

    __slots__ = ("machine",)

    def __init__(self, machine: "LockstepMachine") -> None:
        self.machine = machine

    @property
    def cycle(self) -> _LaneInt:
        """Per-lane global cycle counter (monotonic across runs)."""
        return _LaneInt(self.machine.cycle)

    def run(self, program: object) -> LaneRunResult:
        """Execute one program across every lane in lockstep."""
        return self.machine.run_program(program)

    def run_concurrent(self, programs: Sequence[object]) -> List[LaneRunResult]:
        """Single-program degenerate form only; SMT diverges."""
        if len(programs) != 1:
            raise LaneDivergence(
                "concurrent SMT contexts (volatile channel) are not "
                "lane-vectorizable"
            )
        return [self.machine.run_program(programs[0])]


class _Col:
    """Schedule of one dynamic uop column across all lanes."""

    __slots__ = ("D", "I", "VR", "C", "R", "result", "seq", "spec_col",
                 "pred_load")

    def __init__(self) -> None:
        self.D: Optional[np.ndarray] = None
        self.I: Optional[np.ndarray] = None
        self.VR: Optional[np.ndarray] = None
        self.C: Optional[np.ndarray] = None
        self.R: Optional[np.ndarray] = None
        self.result: object = None
        #: Program-order position; ordering key for speculation sources.
        self.seq: int = -1
        #: Youngest unverified predicted-load ancestor at issue time
        #: (only tracked when the D defense is active).
        self.spec_col: Optional["_Col"] = None
        #: True for loads that issued with a value prediction.
        self.pred_load: bool = False


class _PendingTrain:
    """One predictor training event waiting for its completion cycle.

    ``complete`` is a per-lane vector; ``value`` may be a per-lane
    vector (resolved at application time); ``mask`` — when not None —
    limits the training to the lanes where it is True (transient loads
    train only where they completed before the squash); ``seq`` breaks
    completion-cycle ties in enqueue order, mirroring the scalar
    core's ``(complete_cycle, seq)`` verification order; ``done``
    tracks per-lane application once the predictor has split.
    """

    __slots__ = ("complete", "key", "value", "prediction", "mask", "seq",
                 "done")

    def __init__(
        self,
        complete: np.ndarray,
        key: AccessKey,
        value: object,
        prediction: Optional[Prediction],
        mask: Optional[np.ndarray],
        seq: int,
        done: Optional[np.ndarray],
    ) -> None:
        self.complete = complete
        self.key = key
        self.value = value
        self.prediction = prediction
        self.mask = mask
        self.seq = seq
        self.done = done


class _FillEvent:
    """A cache/TLB fill deferred to a future per-lane cycle vector."""

    __slots__ = ("cycle", "paddr", "pid", "vaddr")

    def __init__(
        self, cycle: np.ndarray, paddr: int, pid: int, vaddr: int
    ) -> None:
        self.cycle = cycle
        self.paddr = paddr
        self.pid = pid
        self.vaddr = vaddr


class LockstepMachine:
    """Lockstep simulation of many same-program trials (one hypothesis).

    Args:
        core_config: Effective core configuration (defense-adjusted).
        memory_config: Effective memory configuration; its ``seed``
            only matters when :meth:`set_lane_default_seeds` is not
            used (snapshot protocol: the uniform prologue seed).
        predictor: The shared value predictor chain.  Its state stays
            lane-uniform as long as every applied training is uniform;
            the first non-uniform training splits it into per-lane
            replicas when :attr:`allow_lane_split` permits, and
            diverges otherwise.
        lane_seeds: Per-lane trial seeds (jitter streams start here).
        shared_region: ``(base, size)`` registered on the private
            memory system, mirroring ``AttackRunner._machine``.
        mem: An already-reset warm :class:`MemorySystem` to reuse
            instead of constructing one (the lane pool's warm-machine
            protocol).  The caller guarantees it was built from an
            equal ``memory_config``/``shared_region`` and reset to
            ``memory_config.seed`` — byte-identical to fresh
            construction per ``MemorySystem.reset``'s contract.
        tape: When set, the pass records itself onto this
            :class:`~repro.sim.tape.TapeRecorder` (see
            :mod:`repro.sim.tape`); per-lane jitter draws and lane
            defaults come back as traced vectors whose arithmetic and
            guard collapses self-record.
    """

    def __init__(
        self,
        core_config: CoreConfig,
        memory_config: MemoryConfig,
        predictor: ValuePredictor,
        lane_seeds: Sequence[int],
        shared_region: Tuple[int, int],
        mem: Optional[MemorySystem] = None,
        tape: Optional[TapeRecorder] = None,
    ) -> None:
        self.lanes = len(lane_seeds)
        self.config = core_config
        if mem is None:
            self.mem = MemorySystem(memory_config)
            self.mem.add_shared_region(*shared_region)
        else:
            self.mem = mem
        self.tape = tape
        self.predictor = predictor
        #: A bare NoPredictor ignores the trained value (train only
        #: bumps an aggregate counter that never reaches a result), so
        #: non-uniform train values need no collapse and no lane split.
        self._train_value_blind = type(predictor) is NoPredictor
        self.cycle = np.zeros(self.lanes, dtype=np.int64)
        self.simulated_cycles = 0
        self.total_retired = 0
        self.total_squashes = 0
        self._pending_trains: List[_PendingTrain] = []
        self._train_seq = 0
        #: Per-lane predictor replicas after a lane split; None while
        #: the single shared chain is still exact.
        self._split: Optional[List[ValuePredictor]] = None
        #: Whether a lane split is sound for this chain (bare
        #: predictor chains only — set by the backend).
        self.allow_lane_split = False
        #: Per-lane max applied-training completion, for the consult
        #: ordering guard.
        self._applied_max: Optional[np.ndarray] = None
        #: Deferred cache/TLB fills (D defense, InvisiSpec).
        self._fill_events: List[_FillEvent] = []
        #: (rng, pristine state) pairs for defense RNGs that must not
        #: draw inside a vectorized batch (the R defense's window
        #: stream is per-trial randomness a batch cannot replay).
        self._rng_guards: List[Tuple[random.Random, object]] = []
        #: Per-lane default backing values; None means "use the shared
        #: MemorySystem's own seed" (lane-uniform, snapshot protocol).
        self._lane_default_seeds: Optional[np.ndarray] = None
        self._rng_mem: List[random.Random] = []
        self._rng_dram: List[random.Random] = []
        self.use_lane_streams(lane_seeds)

    # -- jitter stream control -----------------------------------------
    def use_lane_streams(self, lane_seeds: Sequence[int]) -> None:
        """Per-lane jitter streams, exactly ``MemorySystem.reseed_jitter``.

        Lane ``k`` draws L2 jitter from ``Random(seed_k ^ 0xC0FFEE)``
        and DRAM latency from ``Random(seed_k ^ 0x33)`` — the streams a
        scalar machine reset (or jitter-reseeded) under ``seed_k``
        would use.
        """
        if len(lane_seeds) != self.lanes:
            raise SimulationError("lane seed count changed mid-batch")
        self._uniform_streams = False
        self._rng_mem = [random.Random(s ^ 0xC0FFEE) for s in lane_seeds]
        self._rng_dram = [random.Random(s ^ 0x33) for s in lane_seeds]

    def use_uniform_streams(self, seed: int) -> None:
        """One shared jitter stream (the snapshot protocol's prologue).

        Every lane observes the *same* draw sequence — one draw per
        access, broadcast — mirroring the one scalar prologue run whose
        state all forks share.
        """
        self._uniform_streams = True
        self._rng_mem = [random.Random(seed ^ 0xC0FFEE)]
        self._rng_dram = [random.Random(seed ^ 0x33)]

    def set_lane_default_seeds(self, lane_seeds: Sequence[int]) -> None:
        """Per-lane backing-store default seeds (warm/cold protocol).

        Unwritten addresses then read
        ``splitmix64(paddr ^ seed_k)`` in lane ``k``, matching a scalar
        machine reset under ``seed_k``.
        """
        self._lane_default_seeds = np.array(
            [s & _VALUE_MASK for s in lane_seeds], dtype=np.uint64
        )

    # -- defense RNG guards ---------------------------------------------
    def guard_rng(self, rng: random.Random) -> None:
        """Diverge — with the stream restored — if ``rng`` ever draws.

        Used for the R defense's shared window stream: its draws are
        per-trial randomness whose cross-trial order a lockstep batch
        cannot replay.  Restoring the pristine state before raising
        means the scalar replay consumes the stream exactly as a pure
        scalar run would have.
        """
        self._rng_guards.append((rng, rng.getstate()))

    def _check_rng_guards(self) -> None:
        for rng, state in self._rng_guards:
            if rng.getstate() != state:
                rng.setstate(state)
                raise LaneDivergence(
                    "defense RNG drew a per-trial value inside a batch"
                )

    # -- value plumbing -------------------------------------------------
    def _value_at(self, paddr: int) -> object:
        """Architectural value at ``paddr``: shared write or lane default."""
        store = self.mem.store_values
        if store.is_written(paddr):
            return store.read(paddr)
        if self._lane_default_seeds is None:
            return store.read(paddr)
        defaults = _splitmix64_vec(
            np.uint64(paddr) ^ self._lane_default_seeds
        )
        if self.tape is not None:
            return self.tape.leaf_default(defaults, paddr)
        return defaults

    # -- per-lane latency draws ----------------------------------------
    def _draw_l2_jitter(self) -> object:
        jitter = self.mem.config.l2_jitter
        if self._uniform_streams:
            return np.full(
                self.lanes, self._rng_mem[0].randint(0, jitter),
                dtype=np.int64,
            )
        draws = np.fromiter(
            (rng.randint(0, jitter) for rng in self._rng_mem),
            dtype=np.int64,
            count=self.lanes,
        )
        if self.tape is not None:
            return self.tape.leaf_l2(draws, jitter)
        return draws

    def _draw_dram(self) -> object:
        """Per-lane DRAM latency, mirroring ``DramModel.access_latency``."""
        config = self.mem.config.dram
        base = config.base_latency
        jitter = config.jitter
        tail_extra = config.tail_extra
        tail_probability = config.tail_probability

        def one(rng: random.Random) -> int:
            latency = base
            if jitter:
                latency += rng.randint(0, jitter)
            if tail_extra and rng.random() < tail_probability:
                latency += tail_extra
            return latency

        if self._uniform_streams:
            return np.full(self.lanes, one(self._rng_dram[0]), dtype=np.int64)
        out = np.empty(self.lanes, dtype=np.int64)
        for lane, rng in enumerate(self._rng_dram):
            out[lane] = one(rng)
        if self.tape is not None:
            return self.tape.leaf_dram(
                out, base, jitter, tail_extra, tail_probability
            )
        return out

    def _load_access(self, pid: int, vaddr: int) -> Tuple[object, bool, int]:
        """The timed-load structural walk, with lane-vector latencies.

        Mirrors :meth:`MemorySystem.load` (fill path) stage for stage —
        translate, TLB access, L1 lookup, L2 lookup, jitter/DRAM draw,
        fill — against the *real* shared structures, so replacement
        state evolves exactly as one scalar trial's would.  Only the
        latency draws are per-lane.  Returns ``(latency, l1_hit,
        paddr)`` where latency is an int (L1 hit) or an ``[lanes]``
        vector.
        """
        mem = self.mem
        paddr = mem.translate(pid, vaddr)
        tlb_latency = mem.tlb.access(pid, vaddr)
        line = line_address(paddr, mem.config.line_size)
        if mem.l1.lookup(line):
            return mem.config.l1_hit_latency + tlb_latency, True, paddr
        l2_hit = mem.l2.lookup(line)
        latency: object = (
            mem.config.l1_hit_latency + mem.config.l2_hit_latency
            + tlb_latency
        )
        if l2_hit:
            if mem.config.l2_jitter:
                latency = latency + self._draw_l2_jitter()
        else:
            latency = latency + self._draw_dram()
        mem.apply_fill(paddr)
        return latency, False, paddr

    def _load_access_nofill(
        self, pid: int, vaddr: int
    ) -> Tuple[object, bool, int]:
        """The ``fill=False`` structural walk (``MemorySystem.load``).

        Contains-only lookups (no LRU recency update, no TLB insert),
        but the *same* latency draws as the fill path — the per-lane
        jitter streams stay aligned with the scalar machine's.
        """
        mem = self.mem
        paddr = mem.translate(pid, vaddr)
        tlb_latency = (
            0 if mem.tlb.contains(pid, vaddr) else mem.tlb.walk_latency
        )
        line = line_address(paddr, mem.config.line_size)
        if mem.l1.contains(line):
            return mem.config.l1_hit_latency + tlb_latency, True, paddr
        l2_hit = mem.l2.contains(line)
        latency: object = (
            mem.config.l1_hit_latency + mem.config.l2_hit_latency
            + tlb_latency
        )
        if l2_hit:
            if mem.config.l2_jitter:
                latency = latency + self._draw_l2_jitter()
        else:
            latency = latency + self._draw_dram()
        return latency, False, paddr

    # -- deferred fill events -------------------------------------------
    def _schedule_fill(
        self, cycle: np.ndarray, paddr: int, pid: int, vaddr: int
    ) -> None:
        self._fill_events.append(_FillEvent(cycle, paddr, pid, vaddr))

    def _apply_fill_events(self, issue: Optional[np.ndarray]) -> None:
        """Apply every due deferred fill before an access at ``issue``.

        A fill is due when its cycle precedes the access in every lane
        (verify and commit both run before issue within a cycle, so
        equality counts).  A fill due in some lanes only, or two due
        fills whose order crosses between lanes, would evolve the
        shared replacement state differently per lane — divergence.
        ``issue=None`` (end of run) applies everything.
        """
        events = self._fill_events
        if not events:
            return
        remaining: List[_FillEvent] = []
        last_applied: Optional[np.ndarray] = None
        for event in events:
            if issue is None:
                due = True
            else:
                mask = event.cycle <= issue
                if bool(np.all(mask)):
                    due = True
                elif not bool(np.any(mask)):
                    due = False
                else:
                    raise LaneDivergence(
                        "deferred fill straddles a memory access"
                    )
            if due:
                if last_applied is not None and not bool(
                    np.all(last_applied <= event.cycle)
                ):
                    raise LaneDivergence(
                        "deferred fills reorder across lanes"
                    )
                self.mem.apply_deferred_fill(
                    event.paddr, event.pid, event.vaddr
                )
                last_applied = event.cycle
            else:
                remaining.append(event)
        self._fill_events = remaining

    # -- predictor ledger -----------------------------------------------
    def _enqueue_train(
        self,
        key: AccessKey,
        value: object,
        prediction: Optional[Prediction],
        complete: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        done = (
            np.zeros(self.lanes, dtype=bool)
            if self._split is not None else None
        )
        self._pending_trains.append(_PendingTrain(
            complete, key, value, prediction, mask, self._train_seq, done,
        ))
        self._train_seq += 1

    def _begin_split(self) -> None:
        """Fork the shared predictor into per-lane replicas."""
        if not self.allow_lane_split:
            raise LaneDivergence(
                "non-uniform training needs per-lane predictor state, "
                "which stateful defense wrappers forbid"
            )
        if self.tape is not None:
            # Per-lane predictor replay is genuinely per-lane work a
            # width-agnostic tape cannot express; the recording attempt
            # aborts and the pass re-runs untaped.
            raise TapeInvalid("predictor lane split is not tapeable")
        self._split = [
            copy.deepcopy(self.predictor) for _ in range(self.lanes)
        ]
        for train in self._pending_trains:
            if train.done is None:
                train.done = np.zeros(self.lanes, dtype=bool)
        if self._applied_max is None:
            self._applied_max = np.full(self.lanes, -1, dtype=np.int64)

    def _apply_due_shared(self, issue: Optional[np.ndarray]) -> None:
        """Apply due trainings to the one shared predictor, in order.

        The scalar core verifies/trains in ``(complete_cycle, seq)``
        order; a pending training may apply only when it is uniformly
        first by that order across lanes *and* uniformly due.  Any
        ambiguity — crossing completions, a straddling mask, a
        non-uniform trained value — forks the predictor per lane
        (:meth:`_begin_split`) instead of guessing.
        """
        while self._split is None:
            pending = [
                train for train in self._pending_trains
                if train.mask is None or bool(np.any(train.mask))
            ]
            self._pending_trains = pending
            if not pending:
                return
            first: Optional[_PendingTrain] = None
            for train in pending:
                uniformly_first = True
                for other in pending:
                    if other is train:
                        continue
                    before = (
                        (train.complete < other.complete)
                        | ((train.complete == other.complete)
                           & (train.seq < other.seq))
                    )
                    if not bool(np.all(before)):
                        uniformly_first = False
                        break
                if uniformly_first:
                    first = train
                    break
            if first is None:
                self._begin_split()
                return
            if issue is not None:
                due = first.complete <= issue
                if not bool(np.any(due)):
                    return
                if not bool(np.all(due)):
                    self._begin_split()
                    return
            if first.mask is not None and not bool(np.all(first.mask)):
                self._begin_split()
                return
            value = first.value
            if self._train_value_blind:
                # The trained value is dead state for a NoPredictor;
                # a per-lane value neither forces a collapse guard nor
                # a lane split.
                value = 0
            elif isinstance(value, TV):
                head = value.shadow.flat[0]
                if not bool(np.all(value.shadow == head)):
                    self._begin_split()
                    return
                value.tape.guard_uniform(value, int(head))
                value = int(head)
            elif isinstance(value, np.ndarray):
                head = value.flat[0]
                if not bool(np.all(value == head)):
                    self._begin_split()
                    return
                value = int(head)
            self.predictor.train(first.key, int(value), first.prediction)
            self._check_rng_guards()
            self._applied_max = (
                first.complete.copy() if self._applied_max is None
                else np.maximum(self._applied_max, first.complete)
            )
            self._pending_trains.remove(first)

    def _apply_due_split(self, issue: Optional[np.ndarray]) -> None:
        """Per-lane replay of due trainings in (complete, seq) order."""
        pending = self._pending_trains
        if not pending:
            return
        replicas = self._split
        assert replicas is not None and self._applied_max is not None
        for lane in range(self.lanes):
            todo = [
                train for train in pending
                if train.done is not None and not train.done[lane]
                and (issue is None or train.complete[lane] <= issue[lane])
            ]
            todo.sort(key=lambda t: (int(t.complete[lane]), t.seq))
            for train in todo:
                train.done[lane] = True  # type: ignore[index]
                if train.mask is not None and not bool(train.mask[lane]):
                    continue
                value = train.value
                value = (
                    int(value[lane]) if isinstance(value, np.ndarray)
                    else int(value)
                )
                replicas[lane].train(train.key, value, train.prediction)
                self._applied_max[lane] = max(
                    self._applied_max[lane], int(train.complete[lane])
                )
        self._pending_trains = [
            train for train in pending
            if train.done is None or not bool(np.all(train.done))
        ]

    def _apply_due(self, issue: Optional[np.ndarray]) -> None:
        if self._split is None:
            self._apply_due_shared(issue)
        if self._split is not None:
            self._apply_due_split(issue)

    def _consult_predictor(
        self, key: AccessKey, issue: np.ndarray
    ) -> Optional[Prediction]:
        """Predict for a VPS-engaged load, applying due trainings first.

        The scalar core trains at each load's completion cycle and
        predicts at each miss's issue cycle; completion runs before
        issue within a cycle, so a pending training applies iff its
        completion is <= the consulting issue in *every* lane.  The
        applied-max guard catches the converse: a training already
        applied *after* this issue in some lane means that lane's
        scalar machine would not have seen it yet.
        """
        self._apply_due(issue)
        if self._applied_max is not None and bool(
            np.any(self._applied_max > issue)
        ):
            raise LaneDivergence("train/predict order differs across lanes")
        if self._split is not None:
            predictions = [
                replica.predict(key) for replica in self._split
            ]
            head = predictions[0]
            if all(p is None for p in predictions):
                return None
            if any(p is None for p in predictions) or any(
                p != head for p in predictions
            ):
                raise LaneDivergence(
                    "per-lane predictions disagree after a lane split"
                )
            return head
        prediction = self.predictor.predict(key)
        self._check_rng_guards()
        return prediction

    def drain_trains(self) -> None:
        """Apply every still-pending training (end of the measured code).

        Safe to run early at a run boundary: the next consult can only
        happen at an issue cycle beyond this run's last completion, so
        it would apply these trainings first anyway, in the same
        (complete, seq) order.
        """
        self._apply_due(None)

    # -- the forward pass ----------------------------------------------
    def run_program(self, program: object) -> LaneRunResult:
        """Lockstep-execute one program; advances the shared clock."""
        trace = program.dynamic_trace()  # type: ignore[attr-defined]
        pid: int = program.pid  # type: ignore[attr-defined]
        name: str = program.name  # type: ignore[attr-defined]
        config = self.config
        if not trace:
            raise LaneDivergence(f"program {name} has an empty trace")

        lanes = self.lanes
        start = self.cycle
        one = 1  # numpy broadcasts python ints; keep the hot path terse
        fetch_width = config.fetch_width
        commit_width = config.commit_width
        rob_size = config.rob_size
        track_spec = config.delay_speculative_fills

        cols: List[_Col] = []
        rename: Dict[int, _Col] = {}
        arch: Dict[int, object] = {}
        stall: Optional[np.ndarray] = None
        fence_gate: Optional[np.ndarray] = None
        last_mem: Optional[np.ndarray] = None
        prev_mem: Optional[np.ndarray] = None
        rdtsc_values: List[Tuple[int, _LaneInt]] = []
        squashes = 0
        # Issue-cycle logs for the post-hoc width/port oversubscription
        # guards (the recurrences assume the caps never bind).
        width_issues: List[np.ndarray] = []
        alu_issues: List[np.ndarray] = []
        mul_issues: List[np.ndarray] = []

        def source_ready(base: np.ndarray, regs: Tuple[int, ...]) -> np.ndarray:
            ready = base
            for reg in regs:
                producer = rename.get(reg)
                if producer is not None:
                    assert producer.VR is not None
                    ready = np.maximum(ready, producer.VR)
            return ready

        def source_value(reg: int) -> object:
            producer = rename.get(reg)
            if producer is None:
                return arch.get(reg, 0)
            if producer.result is None:
                raise LaneDivergence("consumer scheduled before producer")
            return producer.result

        def unverified_at(load_col: _Col, issue: np.ndarray) -> bool:
            """Whether a predicted load is still unverified at ``issue``.

            Verification happens at the load's completion, which runs
            before the issue stage within a cycle; a verdict that
            differs between lanes diverges.
            """
            assert load_col.C is not None
            before = issue < load_col.C
            if bool(np.all(before)):
                return True
            if not bool(np.any(before)):
                return False
            raise LaneDivergence(
                "prediction verification straddles a consumer's issue"
            )

        def spec_source(
            regs: Tuple[int, ...], issue: np.ndarray
        ) -> Optional[_Col]:
            """Youngest unverified predicted-load ancestor (scalar
            ``_speculative_source``), tracked only under the D defense."""
            best: Optional[_Col] = None
            for reg in regs:
                producer = rename.get(reg)
                if producer is None:
                    continue
                candidate: Optional[_Col] = None
                if producer.pred_load and unverified_at(producer, issue):
                    candidate = producer
                elif producer.spec_col is not None and unverified_at(
                    producer.spec_col, issue
                ):
                    candidate = producer.spec_col
                if candidate is not None and (
                    best is None or candidate.seq > best.seq
                ):
                    best = candidate
            return best

        def retire_cycle(complete: np.ndarray) -> np.ndarray:
            n = len(cols)
            retire = complete
            if n:
                assert cols[-1].R is not None
                retire = np.maximum(retire, cols[-1].R)
            if n >= commit_width:
                chain = cols[n - commit_width].R
                assert chain is not None
                retire = np.maximum(retire, chain + one)
            return retire

        def run_transient_window(
            load_col: _Col, prediction: Prediction, pred_vr: np.ndarray,
            window_start: int,
        ) -> None:
            """Execute the mispredicted load's squash window transiently.

            Models the scalar core's pre-squash execution of the ops
            younger than the load, up to the next FENCE: dispatch and
            issue follow the same recurrences over the combined
            main+transient column sequence, and an op takes effect only
            when its issue cycle precedes the squash cycle ``C`` in
            every lane.  Register writes go to a local rename overlay
            (seeded with the predicted value) that the main pass never
            sees — the post-squash refetch re-executes the same trace
            entries architecturally.  Side effects that survive the
            squash — cache/TLB walks of issued loads, and their masked
            trainings — land on the shared structures and the ledger.
            """
            squash_c = load_col.C
            assert squash_c is not None
            far = np.full(lanes, _FAR, dtype=np.int64)
            need_taint = config.delay_speculative_fills
            trigger = trace[window_start - 1]
            trigger_dest = trigger.instruction.destination_register()
            # reg -> (value-ready vector | None if never ready, value,
            #         speculatively tainted)
            overlay: Dict[int, Tuple[Optional[np.ndarray], object, bool]] = {}
            if trigger_dest is not None:
                overlay[trigger_dest] = (pred_vr, prediction.value, True)
            transient_d: List[np.ndarray] = []
            t_last_mem, t_prev_mem = last_mem, prev_mem
            n_load = len(cols) - 1

            def pre_squash(cycles: np.ndarray) -> bool:
                """all(< C) -> True; all(>= C) -> False; mixed diverges."""
                pre = cycles < squash_c
                if bool(np.all(pre)):
                    return True
                if not bool(np.any(pre)):
                    return False
                raise LaneDivergence(
                    "squash window edge straddles lanes"
                )

            def t_source_vr(
                base: np.ndarray, regs: Tuple[int, ...]
            ) -> Optional[np.ndarray]:
                ready = base
                for reg in regs:
                    if reg in overlay:
                        vr = overlay[reg][0]
                        if vr is None:
                            return None  # producer never issued
                        ready = np.maximum(ready, vr)
                    else:
                        producer = rename.get(reg)
                        if producer is not None:
                            assert producer.VR is not None
                            ready = np.maximum(ready, producer.VR)
                return ready

            def t_source_value(reg: int) -> object:
                if reg in overlay:
                    return overlay[reg][1]
                return source_value(reg)

            def t_tainted(regs: Tuple[int, ...], issue: np.ndarray) -> bool:
                for reg in regs:
                    if reg in overlay:
                        if overlay[reg][2]:
                            return True
                        continue
                    producer = rename.get(reg)
                    if producer is None:
                        continue
                    if producer.pred_load and unverified_at(producer, issue):
                        return True
                    if producer.spec_col is not None and unverified_at(
                        producer.spec_col, issue
                    ):
                        return True
                return False

            for w, spec in enumerate(trace[window_start:]):
                sinstr: Instruction = spec.instruction
                sop = sinstr.op
                if sop is Opcode.FENCE:
                    # A FENCE blocks dispatch behind it; nothing past
                    # it existed before the squash.
                    break
                if sop in (Opcode.STORE, Opcode.FLUSH, Opcode.RDTSC):
                    raise LaneDivergence(
                        f"{sop.name.lower()} in a squash window is not "
                        "lane-vectorized"
                    )
                n = n_load + 1 + w
                dispatch = transient_d[w - 1] if w else load_col.D
                assert dispatch is not None
                if n >= fetch_width:
                    gate_index = n - fetch_width
                    if gate_index <= n_load:
                        gate = cols[gate_index].D
                    elif gate_index - n_load - 1 < len(transient_d):
                        gate = transient_d[gate_index - n_load - 1]
                    else:
                        gate = None  # gated by a never-dispatched op
                    if gate is None:
                        break
                    dispatch = np.maximum(dispatch, gate + one)
                if stall is not None:
                    dispatch = np.maximum(dispatch, stall)
                if fence_gate is not None:
                    dispatch = np.maximum(dispatch, fence_gate)
                if n >= rob_size:
                    gate_index = n - rob_size
                    if gate_index > n_load:
                        # The ROB slot waits on a transient op that
                        # never retires: dispatch stops here.
                        break
                    gate_r = cols[gate_index].R
                    assert gate_r is not None
                    dispatch = np.maximum(dispatch, gate_r)
                if not pre_squash(dispatch):
                    break  # in-order dispatch: younger ops stop too
                transient_d.append(dispatch)

                dreg = sinstr.destination_register()
                if sop in (Opcode.NOP, Opcode.HALT):
                    issue = dispatch + one
                    if pre_squash(issue):
                        width_issues.append(issue)
                    continue
                if sop is Opcode.LI:
                    issue = dispatch + one
                    if pre_squash(issue):
                        width_issues.append(issue)
                        if dreg is not None:
                            overlay[dreg] = (
                                issue + config.alu_latency,
                                sinstr.imm & _VALUE_MASK,
                                False,
                            )
                    elif dreg is not None:
                        overlay[dreg] = (None, None, False)
                    continue
                if sop is Opcode.ALU:
                    issue_base = t_source_vr(
                        dispatch + one, sinstr.source_registers()
                    )
                    if issue_base is None or not pre_squash(issue_base):
                        if dreg is not None:
                            overlay[dreg] = (None, None, False)
                        continue
                    issue = issue_base
                    needs_mul = sinstr.alu_op is AluOp.MUL
                    width_issues.append(issue)
                    (mul_issues if needs_mul else alu_issues).append(issue)
                    assert sinstr.src1 is not None and sinstr.alu_op is not None
                    lhs = t_source_value(sinstr.src1)
                    rhs: object = (
                        t_source_value(sinstr.src2)
                        if sinstr.src2 is not None else sinstr.imm
                    )
                    if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                        result: object = _alu_vec(sinstr.alu_op, lhs, rhs)
                    else:
                        result = _alu_compute(sinstr.alu_op, lhs, rhs)
                    latency = (
                        config.mul_latency if needs_mul
                        else config.alu_latency
                    )
                    if dreg is not None:
                        taint = (
                            t_tainted(sinstr.source_registers(), issue)
                            if need_taint else False
                        )
                        overlay[dreg] = (issue + latency, result, taint)
                    continue
                if sop is Opcode.LOAD:
                    issue_base = t_source_vr(
                        dispatch + one, sinstr.source_registers()
                    )
                    if issue_base is None:
                        # A memory op stuck at the issue stage blocks
                        # every younger memory op (memory_blocked).
                        t_prev_mem, t_last_mem = t_last_mem, far
                        if dreg is not None:
                            overlay[dreg] = (None, None, False)
                        continue
                    issue = issue_base
                    if t_last_mem is not None:
                        issue = np.maximum(issue, t_last_mem)
                    if t_prev_mem is not None:
                        issue = np.maximum(issue, t_prev_mem + one)
                    if not pre_squash(issue):
                        t_prev_mem, t_last_mem = t_last_mem, far
                        if dreg is not None:
                            overlay[dreg] = (None, None, False)
                        continue
                    width_issues.append(issue)
                    t_prev_mem, t_last_mem = t_last_mem, issue
                    base: object = 0
                    if sinstr.src1 is not None:
                        base = t_source_value(sinstr.src1)
                    addr = _uniform_int(base, "transient effective address")
                    addr = (addr + sinstr.imm) & EA_MASK
                    taint = (
                        t_tainted(sinstr.source_registers(), issue)
                        if need_taint else False
                    )
                    self._apply_fill_events(issue)
                    nofill = config.invisispec or (
                        config.delay_speculative_fills and taint
                    )
                    # The transient walk is the attack's persistent
                    # footprint: a fill survives the squash; deferred
                    # (D) and invisible (InvisiSpec) fills never land
                    # because the load never verifies nor retires.
                    if nofill:
                        latency, l1_hit, paddr = self._load_access_nofill(
                            pid, addr
                        )
                    else:
                        latency, l1_hit, paddr = self._load_access(pid, addr)
                    value = self._value_at(paddr)
                    done = issue + latency
                    key: Optional[AccessKey] = None
                    nested: Optional[Prediction] = None
                    if l1_hit:
                        if config.train_on_hit or config.predict_on_hit:
                            key = AccessKey(pc=spec.pc, addr=addr, pid=pid)
                            if (
                                config.predict_on_hit
                                and config.value_prediction
                            ):
                                nested = self._consult_predictor(key, issue)
                    else:
                        key = AccessKey(pc=spec.pc, addr=addr, pid=pid)
                        if config.value_prediction:
                            nested = self._consult_predictor(key, issue)
                    if nested is not None:
                        raise LaneDivergence(
                            "nested speculation in a squash window"
                        )
                    if key is not None:
                        # The VPS observes the value only in lanes
                        # where the load completed strictly before the
                        # squash (ties verify the older trigger first).
                        self._enqueue_train(
                            key, value, None, done, mask=done < squash_c
                        )
                    if dreg is not None:
                        overlay[dreg] = (done, value, taint)
                    continue
                raise LaneDivergence(  # pragma: no cover - exhaustive
                    f"unhandled opcode {sop} in a squash window"
                )

        index = 0
        trace_length = len(trace)
        while index < trace_length:
            placed = trace[index]
            instr: Instruction = placed.instruction
            op = instr.op
            col = _Col()
            n = len(cols)
            col.seq = n

            # -- dispatch ----------------------------------------------
            dispatch = cols[-1].D if n else start
            assert dispatch is not None
            if n >= fetch_width:
                prior = cols[n - fetch_width].D
                assert prior is not None
                dispatch = np.maximum(dispatch, prior + one)
            if stall is not None:
                dispatch = np.maximum(dispatch, stall)
            if fence_gate is not None:
                dispatch = np.maximum(dispatch, fence_gate)
            if n >= rob_size:
                rob_gate = cols[n - rob_size].R
                assert rob_gate is not None
                dispatch = np.maximum(dispatch, rob_gate)
            col.D = dispatch

            squashed_here = False
            trig_pred: Optional[Prediction] = None
            trig_vr: Optional[np.ndarray] = None
            if op in (Opcode.FENCE, Opcode.RDTSC):
                # Serialising: executes at the ROB head once drained.
                retire = np.maximum(dispatch + one, retire_cycle(dispatch))
                col.I = col.VR = col.C = col.R = retire
                if op is Opcode.FENCE:
                    fence_gate = retire
                else:
                    col.result = retire  # RDTSC reads its retire cycle
                    rdtsc_values.append((placed.pc, _LaneInt(retire)))
            elif op in (Opcode.NOP, Opcode.HALT):
                issue = dispatch + one
                width_issues.append(issue)
                col.I = issue
                col.VR = col.C = issue + one
                col.R = retire_cycle(col.C)
            elif op is Opcode.LI:
                issue = dispatch + one
                width_issues.append(issue)
                col.I = issue
                col.result = instr.imm & _VALUE_MASK
                col.VR = col.C = issue + config.alu_latency
                col.R = retire_cycle(col.C)
            elif op is Opcode.ALU:
                issue = source_ready(
                    dispatch + one, instr.source_registers()
                )
                width_issues.append(issue)
                needs_mul = instr.alu_op is AluOp.MUL
                (mul_issues if needs_mul else alu_issues).append(issue)
                col.I = issue
                if track_spec:
                    col.spec_col = spec_source(
                        instr.source_registers(), issue
                    )
                assert instr.src1 is not None and instr.alu_op is not None
                lhs = source_value(instr.src1)
                rhs: object = (
                    source_value(instr.src2)
                    if instr.src2 is not None else instr.imm
                )
                if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                    col.result = _alu_vec(instr.alu_op, lhs, rhs)
                else:
                    col.result = _alu_compute(instr.alu_op, lhs, rhs)
                latency = (
                    config.mul_latency if needs_mul else config.alu_latency
                )
                col.VR = col.C = issue + latency
                col.R = retire_cycle(col.C)
            elif op is Opcode.STORE:
                raise LaneDivergence("stores are not lane-vectorized")
            elif op in (Opcode.FLUSH, Opcode.LOAD):
                issue = source_ready(
                    dispatch + one, instr.source_registers()
                )
                # Memory ops issue strictly in program order through
                # the two memory ports.
                if last_mem is not None:
                    issue = np.maximum(issue, last_mem)
                if prev_mem is not None:
                    issue = np.maximum(issue, prev_mem + one)
                width_issues.append(issue)
                prev_mem, last_mem = last_mem, issue
                col.I = issue
                base: object = 0
                if instr.src1 is not None:
                    base = source_value(instr.src1)
                addr = _uniform_int(base, "effective address")
                addr = (addr + instr.imm) & EA_MASK
                if op is Opcode.FLUSH:
                    self._apply_fill_events(issue)
                    self.mem.flush(pid, addr)
                    col.VR = col.C = issue + self.mem.config.flush_latency
                    col.R = retire_cycle(col.C)
                else:
                    spec_col = (
                        spec_source(instr.source_registers(), issue)
                        if track_spec else None
                    )
                    squashed_here, trig_pred, trig_vr = self._load_column(
                        col, pid, placed.pc, addr, issue, retire_cycle,
                        spec_col,
                    )
            else:  # pragma: no cover - exhaustive over Opcode
                raise LaneDivergence(f"unhandled opcode {op}")

            cols.append(col)
            destination = instr.destination_register()
            if destination is not None:
                rename[destination] = col

            if squashed_here:
                # The scalar core dispatched (and possibly issued)
                # younger ops between the load's issue and its
                # verification; squashing discards their register
                # results, but an issued transient *memory* op has
                # already walked the caches — the persistent channel.
                # Execute the window transiently, then refetch right
                # after the load with the penalty applied.
                assert trig_pred is not None and trig_vr is not None
                run_transient_window(col, trig_pred, trig_vr, index + 1)
                squashes += 1
                assert col.C is not None
                penalty = col.C + config.squash_penalty
                stall = (
                    penalty if stall is None else np.maximum(stall, penalty)
                )
            index += 1

        last = cols[-1].R
        assert last is not None
        end = last
        finish = end + one
        # The scalar core raises SimulationError past the cycle budget;
        # stay conservatively clear of it so near-budget runs take the
        # scalar path and raise (or not) exactly as before.
        if bool(np.any(finish - start > config.max_cycles - 2)):
            raise LaneDivergence("run approaches the cycle budget")

        self._check_oversubscription(width_issues, config.issue_width, "issue width")
        self._check_oversubscription(alu_issues, config.alu_ports, "ALU ports")
        self._check_oversubscription(mul_issues, config.mul_ports, "MUL ports")

        self.simulated_cycles += int(np.sum(finish - start))
        self.total_retired += len(cols) * lanes
        self.total_squashes += squashes * lanes
        if self.tape is not None:
            # Column/squash counts are per-lane-uniform; the tape
            # scales them by the replay lane count.
            self.tape.note_run(len(cols), squashes)
        self.cycle = finish
        # Every deferred fill and pending training completed within
        # this run, and any later access happens at an issue cycle past
        # this run's end, so applying them now is order-equivalent and
        # keeps neither queue spanning run boundaries.
        self._apply_fill_events(None)
        self.drain_trains()
        return LaneRunResult(
            program_name=name,
            pid=pid,
            start_cycles=start,
            end_cycles=end,
            retired=len(cols),
            squashes=squashes,
            rdtsc_values=rdtsc_values,
        )

    # -- loads ----------------------------------------------------------
    def _load_column(
        self,
        col: _Col,
        pid: int,
        pc: int,
        addr: int,
        issue: np.ndarray,
        retire_cycle,
        spec_col: Optional[_Col],
    ) -> Tuple[bool, Optional[Prediction], Optional[np.ndarray]]:
        """Schedule one load column.

        Returns ``(squashed, prediction, speculative value-ready)``:
        the last two feed the transient-window overlay when the load
        mispredicts (consumers issued pre-squash saw the predicted
        value at the *early* value-ready cycle, not the post-verify
        one stored on the column).
        """
        config = self.config
        invisi = config.invisispec
        defer = (
            not invisi
            and config.delay_speculative_fills
            and spec_col is not None
        )
        if defer and spec_col is not None and spec_col.spec_col is not None:
            # The scalar core re-keys the deferred fill to the
            # grandparent prediction at verify time; model the common
            # flat case only.
            raise LaneDivergence("nested speculative fill deferral")
        self._apply_fill_events(issue)
        if invisi or defer:
            latency, l1_hit, paddr = self._load_access_nofill(pid, addr)
        else:
            latency, l1_hit, paddr = self._load_access(pid, addr)
        value = self._value_at(paddr)
        col.spec_col = spec_col
        done = issue + latency

        def post_fill() -> None:
            """Schedule the deferred fill this nofill walk owes."""
            if invisi:
                # InvisiSpec: every load re-fills at its retire.
                assert col.R is not None
                self._schedule_fill(col.R, paddr, pid, addr)
            elif defer:
                # D defense: the fill lands when the speculation
                # source verifies (correct — a mispredicting source
                # would have squashed this load into a transient).
                assert spec_col is not None and spec_col.C is not None
                self._schedule_fill(spec_col.C, paddr, pid, addr)

        key: Optional[AccessKey] = None
        prediction: Optional[Prediction] = None
        if l1_hit:
            if config.train_on_hit or config.predict_on_hit:
                key = AccessKey(pc=pc, addr=addr, pid=pid)
                if config.predict_on_hit and config.value_prediction:
                    prediction = self._consult_predictor(key, issue)
            if prediction is None:
                col.result = value
                col.VR = col.C = done
                col.R = retire_cycle(col.C)
                if key is not None:
                    self._enqueue_train(key, value, None, done)
                post_fill()
                return False, None, None
            # Footnote 2's non-load-based VPS: hits predict too, and
            # mispredicted hits still squash.
            actual = _uniform_int(value, "predicted-load value")
            self._enqueue_train(key, actual, prediction, done)
            col.C = done
            col.pred_load = True
            col.result = actual
            early_vr = np.minimum(issue + config.predict_latency, done)
            if prediction.value == actual:
                col.VR = early_vr
                col.R = retire_cycle(col.C)
                post_fill()
                return False, None, None
            col.VR = done
            col.R = retire_cycle(col.C)
            post_fill()
            return True, prediction, early_vr

        # L1 miss: the Value Prediction System is engaged.
        memory_return = done
        key = AccessKey(pc=pc, addr=addr, pid=pid)
        if config.value_prediction:
            prediction = self._consult_predictor(key, issue)
        if prediction is None:
            col.result = value
            col.VR = col.C = memory_return
            col.R = retire_cycle(col.C)
            self._enqueue_train(key, value, None, memory_return)
            post_fill()
            return False, None, None
        actual = _uniform_int(value, "predicted-load value")
        self._enqueue_train(key, actual, prediction, memory_return)
        col.C = memory_return
        col.pred_load = True
        col.result = actual
        early_vr = issue + config.predict_latency
        if prediction.value == actual:
            # Verified correct: consumers saw the early value.
            col.VR = early_vr
            col.R = retire_cycle(col.C)
            post_fill()
            return False, None, None
        # Misprediction: the squash is lane-uniform (shared predictor,
        # uniform actual), so every lane kills the same younger window.
        col.VR = memory_return
        col.R = retire_cycle(col.C)
        post_fill()
        return True, prediction, early_vr

    # -- guards ---------------------------------------------------------
    def _check_oversubscription(
        self, issues: Sequence[object], cap: int, what: str
    ) -> None:
        """Diverge if >cap ops would issue in one cycle in any lane.

        The schedule recurrences assume the unconstrained schedule
        respects every per-cycle cap; sort each class's issue cycles
        per lane and check no ``cap+1`` of them coincide.  Traced
        vectors check their shadows and additionally record the whole
        check as a guard — new seeds' jitter can make a cap bind that
        did not bind at record time.
        """
        if len(issues) <= cap:
            return
        if any(isinstance(issue, TV) for issue in issues):
            assert self.tape is not None
            self.tape.guard_oversubscription(issues, cap, what)
            arrays = [
                issue.shadow if isinstance(issue, TV) else np.asarray(issue)
                for issue in issues
            ]
        else:
            arrays = [np.asarray(issue) for issue in issues]
        stacked = np.sort(np.stack(arrays), axis=0)
        if bool(np.any(stacked[cap:] <= stacked[:-cap])):
            raise LaneDivergence(f"{what} oversubscribed")
