"""Structure-of-arrays lockstep engine for the batched backend.

One :class:`LockstepMachine` simulates **many trials of the same cell
program at once**.  Trials of one hypothesis batch execute the exact
same dynamic uop trace (straight-line programs, no data-dependent
control flow in the native envelope), so the machine keeps *structural*
state — caches, TLB, the value predictor — once, shared by every lane,
and keeps *per-lane* state — cycle schedules, jitter RNG streams,
default memory values — as numpy ``[lanes]`` vectors.

Instead of stepping cycles, the engine makes a single forward pass
over the dynamic trace in dispatch order and computes each column's
dispatch / issue / value-ready / complete / retire cycles as max-plus
recurrences that are provably equal to the scalar core's greedy
schedule (see ``docs/ARCHITECTURE.md`` §14 for the derivation):

* dispatch: ``D[n] = max(D[n-1], D[n-fetch_width] + 1, stall,
  R[last FENCE], R[n-rob_size])`` — in-order, width-limited, stalled
  after squashes, gated by fences and ROB occupancy (commit precedes
  dispatch within a cycle, so the ``R`` terms allow equality);
* issue: ``I = max(D + 1, producers' value-ready)`` (the scalar issue
  stage runs before dispatch in a cycle, hence the ``+1``; consumers
  may issue the same cycle a producer's value becomes ready), with
  memory ops additionally chained in program order through the two
  memory ports: ``I_mem[k] >= max(I_mem[k-1], I_mem[k-2] + 1)``;
* retire: ``R[n] = max(C[n], R[n-1], R[n-commit_width] + 1)``;
  serialising ops (FENCE/RDTSC) execute at the ROB head instead:
  ``C = VR = R = max(R[n-1], D + 1, R[n-commit_width] + 1)``.

The recurrences assume the *unconstrained* schedule never oversubscribes
the issue width or the ALU/MUL ports; a post-hoc sorted-issue-cycle
check verifies that per lane and raises :class:`LaneDivergence` when
it would bind (greedy-with-caps then differs from unconstrained, so the
chunk is replayed on the scalar backend — never silently wrong).

Everything the engine cannot prove lane-uniform or schedule-exact —
stores, non-uniform addresses or trained values, cross-lane
train/predict reordering, speculative memory ops in a squash window,
SMT co-runners, cycle-budget proximity — raises
:class:`LaneDivergence` the same way.  Correctness never depends on
the eligibility analysis being complete, only on these runtime guards
being conservative.

Measurements leave the engine through a deliberate trap:
:class:`LaneCore` quacks like :class:`repro.pipeline.core.Core` for the
variant orchestration code, but its :class:`LaneRunResult` wraps cycle
vectors in :class:`_LaneInt`, whose ``float()`` — the last operation of
every variant's measured window — raises :class:`_LaneMeasurement`
carrying the per-lane measurement vector.  The real Table II variant
code therefore runs unmodified, and a measured window that returns
*without* raising took a path the engine does not model — which is
itself treated as a divergence.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.isa.instructions import AluOp, Instruction, Opcode
from repro.memory.address import line_address
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.memory.memsys import _splitmix64
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import EA_MASK, _alu_compute
from repro.vp.base import AccessKey, Prediction, ValuePredictor

_VALUE_MASK = (1 << 64) - 1

#: SplitMix64 constants, as unsigned 64-bit numpy scalars.
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)


class LaneDivergence(Exception):
    """The batch left the engine's provably-exact envelope.

    Not a :class:`~repro.errors.ReproError`: this is internal control
    flow of the batched backend (the chunk transparently re-runs on the
    scalar backend), never an error surfaced to callers.
    """


class _LaneMeasurement(Exception):
    """Carries the per-lane measurement vector out of variant code."""

    def __init__(self, values: np.ndarray) -> None:
        super().__init__("lane measurement")
        self.values = values


def _splitmix64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.memory.memsys._splitmix64` (uint64 in/out)."""
    with np.errstate(over="ignore"):
        v = (values + _SM_GAMMA).astype(np.uint64)
        v = ((v ^ (v >> np.uint64(30))) * _SM_MUL1).astype(np.uint64)
        v = ((v ^ (v >> np.uint64(27))) * _SM_MUL2).astype(np.uint64)
        return v ^ (v >> np.uint64(31))


def _alu_vec(alu_op: AluOp, lhs: object, rhs: object) -> np.ndarray:
    """Vector-aware ALU evaluation matching ``_alu_compute`` per lane."""
    left = np.asarray(lhs).astype(np.uint64)
    right = np.asarray(rhs).astype(np.uint64)
    with np.errstate(over="ignore"):
        if alu_op is AluOp.ADD:
            result = left + right
        elif alu_op is AluOp.SUB:
            result = left - right
        elif alu_op is AluOp.XOR:
            result = left ^ right
        elif alu_op is AluOp.AND:
            result = left & right
        elif alu_op is AluOp.OR:
            result = left | right
        elif alu_op is AluOp.MUL:
            result = left * right
        elif alu_op is AluOp.SHL:
            result = left << (right & np.uint64(63))
        elif alu_op is AluOp.SHR:
            result = left >> (right & np.uint64(63))
        else:  # pragma: no cover - exhaustive over AluOp
            raise LaneDivergence(f"unhandled ALU op {alu_op}")
    return result.astype(np.uint64)


def _uniform_int(value: object, what: str) -> int:
    """Collapse a lane value to a plain int, or diverge."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    array = np.asarray(value)
    first = array.flat[0]
    if not bool(np.all(array == first)):
        raise LaneDivergence(f"non-uniform {what} across lanes")
    return int(first)


class _LaneInt:
    """An integer-per-lane quantity that refuses to become one float.

    Supports the arithmetic the variant layer actually performs on
    run results (subtraction for RDTSC deltas); ``float()`` raises
    :class:`_LaneMeasurement` so the measurement escapes with its full
    lane vector instead of collapsing.
    """

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = values

    def __sub__(self, other: object) -> "_LaneInt":
        if isinstance(other, _LaneInt):
            return _LaneInt(self.values - other.values)
        return _LaneInt(self.values - other)  # type: ignore[operator]

    def __rsub__(self, other: object) -> "_LaneInt":
        return _LaneInt(other - self.values)  # type: ignore[operator]

    def __add__(self, other: object) -> "_LaneInt":
        if isinstance(other, _LaneInt):
            return _LaneInt(self.values + other.values)
        return _LaneInt(self.values + other)  # type: ignore[operator]

    __radd__ = __add__

    def __float__(self) -> float:
        raise _LaneMeasurement(self.values.astype(np.float64))

    def __int__(self) -> int:
        raise _LaneMeasurement(self.values.astype(np.float64))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"_LaneInt({self.values!r})"


class LaneRunResult:
    """Per-lane analogue of :class:`repro.pipeline.trace.RunResult`."""

    __slots__ = (
        "program_name", "pid", "start_cycles", "end_cycles",
        "retired", "squashes", "rdtsc_values",
    )

    def __init__(
        self,
        program_name: str,
        pid: int,
        start_cycles: np.ndarray,
        end_cycles: np.ndarray,
        retired: int,
        squashes: int,
        rdtsc_values: List[Tuple[int, np.ndarray]],
    ) -> None:
        self.program_name = program_name
        self.pid = pid
        self.start_cycles = start_cycles
        self.end_cycles = end_cycles
        self.retired = retired
        self.squashes = squashes
        self.rdtsc_values = rdtsc_values

    @property
    def cycles(self) -> _LaneInt:
        """Per-lane run length (``end - start``), as a lane vector."""
        return _LaneInt(self.end_cycles - self.start_cycles)

    def rdtsc_delta(self, first: int = 0, second: int = 1) -> _LaneInt:
        """Per-lane difference between two RDTSC readings."""
        if len(self.rdtsc_values) <= max(first, second):
            raise LaneDivergence(
                f"program {self.program_name} recorded "
                f"{len(self.rdtsc_values)} RDTSC values, need {second + 1}"
            )
        return _LaneInt(
            self.rdtsc_values[second][1] - self.rdtsc_values[first][1]
        )


class LaneCore:
    """Quacks like :class:`~repro.pipeline.core.Core` for variant code."""

    __slots__ = ("machine",)

    def __init__(self, machine: "LockstepMachine") -> None:
        self.machine = machine

    @property
    def cycle(self) -> _LaneInt:
        """Per-lane global cycle counter (monotonic across runs)."""
        return _LaneInt(self.machine.cycle)

    def run(self, program: object) -> LaneRunResult:
        """Execute one program across every lane in lockstep."""
        return self.machine.run_program(program)

    def run_concurrent(self, programs: Sequence[object]) -> List[LaneRunResult]:
        """Single-program degenerate form only; SMT diverges."""
        if len(programs) != 1:
            raise LaneDivergence(
                "concurrent SMT contexts (volatile channel) are not "
                "lane-vectorizable"
            )
        return [self.machine.run_program(programs[0])]


class _Col:
    """Schedule of one dynamic uop column across all lanes."""

    __slots__ = ("D", "I", "VR", "C", "R", "result")

    def __init__(self) -> None:
        self.D: Optional[np.ndarray] = None
        self.I: Optional[np.ndarray] = None
        self.VR: Optional[np.ndarray] = None
        self.C: Optional[np.ndarray] = None
        self.R: Optional[np.ndarray] = None
        self.result: object = None


class _PendingTrain:
    """One predictor training event waiting for its completion cycle."""

    __slots__ = ("complete", "key", "value", "prediction")

    def __init__(
        self,
        complete: np.ndarray,
        key: AccessKey,
        value: int,
        prediction: Optional[Prediction],
    ) -> None:
        self.complete = complete
        self.key = key
        self.value = value
        self.prediction = prediction


class LockstepMachine:
    """Lockstep simulation of many same-program trials (one hypothesis).

    Args:
        core_config: Effective core configuration (defense-adjusted).
        memory_config: Effective memory configuration; its ``seed``
            only matters when :meth:`set_lane_default_seeds` is not
            used (snapshot protocol: the uniform prologue seed).
        predictor: The shared value predictor.  Lane uniformity of its
            state is an invariant the engine enforces: every training
            value must be lane-uniform or the batch diverges.
        lane_seeds: Per-lane trial seeds (jitter streams start here).
        shared_region: ``(base, size)`` registered on the private
            memory system, mirroring ``AttackRunner._machine``.
    """

    def __init__(
        self,
        core_config: CoreConfig,
        memory_config: MemoryConfig,
        predictor: ValuePredictor,
        lane_seeds: Sequence[int],
        shared_region: Tuple[int, int],
    ) -> None:
        self.lanes = len(lane_seeds)
        self.config = core_config
        self.mem = MemorySystem(memory_config)
        self.mem.add_shared_region(*shared_region)
        self.predictor = predictor
        self.cycle = np.zeros(self.lanes, dtype=np.int64)
        self.simulated_cycles = 0
        self.total_retired = 0
        self.total_squashes = 0
        self._pending_trains: List[_PendingTrain] = []
        #: Per-lane default backing values; None means "use the shared
        #: MemorySystem's own seed" (lane-uniform, snapshot protocol).
        self._lane_default_seeds: Optional[np.ndarray] = None
        self._rng_mem: List[random.Random] = []
        self._rng_dram: List[random.Random] = []
        self.use_lane_streams(lane_seeds)

    # -- jitter stream control -----------------------------------------
    def use_lane_streams(self, lane_seeds: Sequence[int]) -> None:
        """Per-lane jitter streams, exactly ``MemorySystem.reseed_jitter``.

        Lane ``k`` draws L2 jitter from ``Random(seed_k ^ 0xC0FFEE)``
        and DRAM latency from ``Random(seed_k ^ 0x33)`` — the streams a
        scalar machine reset (or jitter-reseeded) under ``seed_k``
        would use.
        """
        if len(lane_seeds) != self.lanes:
            raise SimulationError("lane seed count changed mid-batch")
        self._uniform_streams = False
        self._rng_mem = [random.Random(s ^ 0xC0FFEE) for s in lane_seeds]
        self._rng_dram = [random.Random(s ^ 0x33) for s in lane_seeds]

    def use_uniform_streams(self, seed: int) -> None:
        """One shared jitter stream (the snapshot protocol's prologue).

        Every lane observes the *same* draw sequence — one draw per
        access, broadcast — mirroring the one scalar prologue run whose
        state all forks share.
        """
        self._uniform_streams = True
        self._rng_mem = [random.Random(seed ^ 0xC0FFEE)]
        self._rng_dram = [random.Random(seed ^ 0x33)]

    def set_lane_default_seeds(self, lane_seeds: Sequence[int]) -> None:
        """Per-lane backing-store default seeds (warm/cold protocol).

        Unwritten addresses then read
        ``splitmix64(paddr ^ seed_k)`` in lane ``k``, matching a scalar
        machine reset under ``seed_k``.
        """
        self._lane_default_seeds = np.array(
            [s & _VALUE_MASK for s in lane_seeds], dtype=np.uint64
        )

    # -- value plumbing -------------------------------------------------
    def _value_at(self, paddr: int) -> object:
        """Architectural value at ``paddr``: shared write or lane default."""
        store = self.mem.store_values
        if store.is_written(paddr):
            return store.read(paddr)
        if self._lane_default_seeds is None:
            return store.read(paddr)
        return _splitmix64_vec(
            np.uint64(paddr) ^ self._lane_default_seeds
        )

    # -- per-lane latency draws ----------------------------------------
    def _draw_l2_jitter(self) -> np.ndarray:
        jitter = self.mem.config.l2_jitter
        if self._uniform_streams:
            return np.full(
                self.lanes, self._rng_mem[0].randint(0, jitter),
                dtype=np.int64,
            )
        return np.fromiter(
            (rng.randint(0, jitter) for rng in self._rng_mem),
            dtype=np.int64,
            count=self.lanes,
        )

    def _draw_dram(self) -> np.ndarray:
        """Per-lane DRAM latency, mirroring ``DramModel.access_latency``."""
        config = self.mem.config.dram
        base = config.base_latency
        jitter = config.jitter
        tail_extra = config.tail_extra
        tail_probability = config.tail_probability

        def one(rng: random.Random) -> int:
            latency = base
            if jitter:
                latency += rng.randint(0, jitter)
            if tail_extra and rng.random() < tail_probability:
                latency += tail_extra
            return latency

        if self._uniform_streams:
            return np.full(self.lanes, one(self._rng_dram[0]), dtype=np.int64)
        out = np.empty(self.lanes, dtype=np.int64)
        for lane, rng in enumerate(self._rng_dram):
            out[lane] = one(rng)
        return out

    def _load_access(self, pid: int, vaddr: int) -> Tuple[object, bool, int]:
        """The timed-load structural walk, with lane-vector latencies.

        Mirrors :meth:`MemorySystem.load` (fill path) stage for stage —
        translate, TLB access, L1 lookup, L2 lookup, jitter/DRAM draw,
        fill — against the *real* shared structures, so replacement
        state evolves exactly as one scalar trial's would.  Only the
        latency draws are per-lane.  Returns ``(latency, l1_hit,
        paddr)`` where latency is an int (L1 hit) or an ``[lanes]``
        vector.
        """
        mem = self.mem
        paddr = mem.translate(pid, vaddr)
        tlb_latency = mem.tlb.access(pid, vaddr)
        line = line_address(paddr, mem.config.line_size)
        if mem.l1.lookup(line):
            return mem.config.l1_hit_latency + tlb_latency, True, paddr
        l2_hit = mem.l2.lookup(line)
        latency: object = (
            mem.config.l1_hit_latency + mem.config.l2_hit_latency
            + tlb_latency
        )
        if l2_hit:
            if mem.config.l2_jitter:
                latency = latency + self._draw_l2_jitter()
        else:
            latency = latency + self._draw_dram()
        mem.apply_fill(paddr)
        return latency, False, paddr

    # -- predictor ledger -----------------------------------------------
    def _enqueue_train(
        self,
        key: AccessKey,
        value: int,
        prediction: Optional[Prediction],
        complete: np.ndarray,
    ) -> None:
        pending = self._pending_trains
        if pending and not bool(np.all(complete >= pending[-1].complete)):
            # Training order would differ between lanes; the shared
            # predictor can only replay one order.
            raise LaneDivergence("training completions cross between lanes")
        pending.append(_PendingTrain(complete, key, value, prediction))

    def _consult_predictor(
        self, key: AccessKey, issue: np.ndarray
    ) -> Optional[Prediction]:
        """Predict for a missing load, applying due trainings first.

        The scalar core trains at each load's completion cycle and
        predicts at each miss's issue cycle; completion runs before
        issue within a cycle, so a pending training applies iff its
        completion is <= the consulting issue in *every* lane.  A
        training that straddles the issue (before it in one lane,
        after it in another) means the lanes observe different
        predictor states — divergence.
        """
        pending = self._pending_trains
        applied = 0
        for train in pending:
            if bool(np.all(train.complete <= issue)):
                self.predictor.train(train.key, train.value, train.prediction)
                applied += 1
                continue
            if not bool(np.all(train.complete > issue)):
                raise LaneDivergence(
                    "train/predict order differs across lanes"
                )
            break
        if applied:
            del pending[:applied]
        return self.predictor.predict(key)

    def drain_trains(self) -> None:
        """Apply every still-pending training (end of the measured code).

        Safe to run early at a run boundary: the next consult can only
        happen at an issue cycle beyond this run's last completion, so
        it would apply these trainings first anyway; order within the
        list is completion order by the enqueue invariant.
        """
        for train in self._pending_trains:
            self.predictor.train(train.key, train.value, train.prediction)
        self._pending_trains.clear()

    # -- the forward pass ----------------------------------------------
    def run_program(self, program: object) -> LaneRunResult:
        """Lockstep-execute one program; advances the shared clock."""
        trace = program.dynamic_trace()  # type: ignore[attr-defined]
        pid: int = program.pid  # type: ignore[attr-defined]
        name: str = program.name  # type: ignore[attr-defined]
        config = self.config
        if not trace:
            raise LaneDivergence(f"program {name} has an empty trace")

        lanes = self.lanes
        start = self.cycle
        one = 1  # numpy broadcasts python ints; keep the hot path terse
        fetch_width = config.fetch_width
        commit_width = config.commit_width
        rob_size = config.rob_size

        cols: List[_Col] = []
        rename: Dict[int, _Col] = {}
        arch: Dict[int, object] = {}
        stall: Optional[np.ndarray] = None
        fence_gate: Optional[np.ndarray] = None
        last_mem: Optional[np.ndarray] = None
        prev_mem: Optional[np.ndarray] = None
        rdtsc_values: List[Tuple[int, np.ndarray]] = []
        squashes = 0
        # Issue-cycle logs for the post-hoc width/port oversubscription
        # guards (the recurrences assume the caps never bind).
        width_issues: List[np.ndarray] = []
        alu_issues: List[np.ndarray] = []
        mul_issues: List[np.ndarray] = []

        def source_ready(base: np.ndarray, regs: Tuple[int, ...]) -> np.ndarray:
            ready = base
            for reg in regs:
                producer = rename.get(reg)
                if producer is not None:
                    assert producer.VR is not None
                    ready = np.maximum(ready, producer.VR)
            return ready

        def source_value(reg: int) -> object:
            producer = rename.get(reg)
            if producer is None:
                return arch.get(reg, 0)
            if producer.result is None:
                raise LaneDivergence("consumer scheduled before producer")
            return producer.result

        def retire_cycle(complete: np.ndarray) -> np.ndarray:
            n = len(cols)
            retire = complete
            if n:
                assert cols[-1].R is not None
                retire = np.maximum(retire, cols[-1].R)
            if n >= commit_width:
                chain = cols[n - commit_width].R
                assert chain is not None
                retire = np.maximum(retire, chain + one)
            return retire

        index = 0
        trace_length = len(trace)
        while index < trace_length:
            placed = trace[index]
            instr: Instruction = placed.instruction
            op = instr.op
            col = _Col()
            n = len(cols)

            # -- dispatch ----------------------------------------------
            dispatch = cols[-1].D if n else start
            assert dispatch is not None
            if n >= fetch_width:
                prior = cols[n - fetch_width].D
                assert prior is not None
                dispatch = np.maximum(dispatch, prior + one)
            if stall is not None:
                dispatch = np.maximum(dispatch, stall)
            if fence_gate is not None:
                dispatch = np.maximum(dispatch, fence_gate)
            if n >= rob_size:
                rob_gate = cols[n - rob_size].R
                assert rob_gate is not None
                dispatch = np.maximum(dispatch, rob_gate)
            col.D = dispatch

            squashed_here = False
            if op in (Opcode.FENCE, Opcode.RDTSC):
                # Serialising: executes at the ROB head once drained.
                retire = np.maximum(dispatch + one, retire_cycle(dispatch))
                col.I = col.VR = col.C = col.R = retire
                if op is Opcode.FENCE:
                    fence_gate = retire
                else:
                    col.result = retire  # RDTSC reads its retire cycle
                    rdtsc_values.append((placed.pc, retire))
            elif op in (Opcode.NOP, Opcode.HALT):
                issue = dispatch + one
                width_issues.append(issue)
                col.I = issue
                col.VR = col.C = issue + one
                col.R = retire_cycle(col.C)
            elif op is Opcode.LI:
                issue = dispatch + one
                width_issues.append(issue)
                col.I = issue
                col.result = instr.imm & _VALUE_MASK
                col.VR = col.C = issue + config.alu_latency
                col.R = retire_cycle(col.C)
            elif op is Opcode.ALU:
                issue = source_ready(
                    dispatch + one, instr.source_registers()
                )
                width_issues.append(issue)
                needs_mul = instr.alu_op is AluOp.MUL
                (mul_issues if needs_mul else alu_issues).append(issue)
                col.I = issue
                assert instr.src1 is not None and instr.alu_op is not None
                lhs = source_value(instr.src1)
                rhs: object = (
                    source_value(instr.src2)
                    if instr.src2 is not None else instr.imm
                )
                if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                    col.result = _alu_vec(instr.alu_op, lhs, rhs)
                else:
                    col.result = _alu_compute(instr.alu_op, lhs, rhs)
                latency = (
                    config.mul_latency if needs_mul else config.alu_latency
                )
                col.VR = col.C = issue + latency
                col.R = retire_cycle(col.C)
            elif op is Opcode.STORE:
                raise LaneDivergence("stores are not lane-vectorized")
            elif op in (Opcode.FLUSH, Opcode.LOAD):
                issue = source_ready(
                    dispatch + one, instr.source_registers()
                )
                # Memory ops issue strictly in program order through
                # the two memory ports.
                if last_mem is not None:
                    issue = np.maximum(issue, last_mem)
                if prev_mem is not None:
                    issue = np.maximum(issue, prev_mem + one)
                width_issues.append(issue)
                prev_mem, last_mem = last_mem, issue
                col.I = issue
                base: object = 0
                if instr.src1 is not None:
                    base = source_value(instr.src1)
                addr = _uniform_int(base, "effective address")
                addr = (addr + instr.imm) & EA_MASK
                if op is Opcode.FLUSH:
                    self.mem.flush(pid, addr)
                    col.VR = col.C = issue + self.mem.config.flush_latency
                    col.R = retire_cycle(col.C)
                else:
                    squashed_here = self._load_column(
                        col, pid, placed.pc, addr, issue, retire_cycle
                    )
            else:  # pragma: no cover - exhaustive over Opcode
                raise LaneDivergence(f"unhandled opcode {op}")

            cols.append(col)
            destination = instr.destination_register()
            if destination is not None:
                rename[destination] = col

            if squashed_here:
                # The scalar core dispatched (and possibly issued)
                # younger ops between the load's issue and its
                # verification; squashing discards their results, but
                # a speculative *memory* op would already have walked
                # the caches.  Prove the kill window held none: only
                # ops within ROB reach of the load and ahead of any
                # FENCE could have dispatched (a FENCE cannot retire
                # past the unverified load at the ROB head), and
                # serialising/ALU/LI/NOP ops have no global effects.
                window_end = min(trace_length, index + 1 + rob_size)
                for spec in trace[index + 1:window_end]:
                    spec_op = spec.instruction.op
                    if spec_op is Opcode.FENCE:
                        break
                    if spec_op in (Opcode.LOAD, Opcode.STORE, Opcode.FLUSH):
                        raise LaneDivergence(
                            "memory op inside a squash window"
                        )
                # The engine never materializes the killed columns;
                # refetch resumes right after the load, penalty applied.
                squashes += 1
                assert col.C is not None
                penalty = col.C + config.squash_penalty
                stall = (
                    penalty if stall is None else np.maximum(stall, penalty)
                )
            index += 1

        last = cols[-1].R
        assert last is not None
        end = last
        finish = end + one
        # The scalar core raises SimulationError past the cycle budget;
        # stay conservatively clear of it so near-budget runs take the
        # scalar path and raise (or not) exactly as before.
        if bool(np.any(finish - start > config.max_cycles - 2)):
            raise LaneDivergence("run approaches the cycle budget")

        self._check_oversubscription(width_issues, config.issue_width, "issue width")
        self._check_oversubscription(alu_issues, config.alu_ports, "ALU ports")
        self._check_oversubscription(mul_issues, config.mul_ports, "MUL ports")

        self.simulated_cycles += int(np.sum(finish - start))
        self.total_retired += len(cols) * lanes
        self.total_squashes += squashes * lanes
        self.cycle = finish
        # Every pending training completed within this run, and any
        # later consult happens at an issue cycle past this run's end,
        # so applying them now is order-equivalent and keeps the
        # ledger from spanning run boundaries.
        self.drain_trains()
        return LaneRunResult(
            program_name=name,
            pid=pid,
            start_cycles=start,
            end_cycles=end,
            retired=len(cols),
            squashes=squashes,
            rdtsc_values=rdtsc_values,
        )

    # -- loads ----------------------------------------------------------
    def _load_column(
        self,
        col: _Col,
        pid: int,
        pc: int,
        addr: int,
        issue: np.ndarray,
        retire_cycle,
    ) -> bool:
        """Schedule one load column; returns True when it squashes."""
        latency, l1_hit, paddr = self._load_access(pid, addr)
        value = self._value_at(paddr)
        config = self.config
        if l1_hit:
            # L1 hits never engage the (load-miss-based) VPS.
            col.result = value
            col.VR = col.C = issue + latency
            col.R = retire_cycle(col.C)
            return False
        memory_return = issue + latency
        key = AccessKey(pc=pc, addr=addr, pid=pid)
        prediction: Optional[Prediction] = None
        if config.value_prediction:
            prediction = self._consult_predictor(key, issue)
        if prediction is None:
            col.result = value
            col.VR = col.C = memory_return
            col.R = retire_cycle(col.C)
            self._enqueue_train(key, _uniform_int(value, "trained value"),
                                None, memory_return)
            return False
        actual = _uniform_int(value, "predicted-load value")
        self._enqueue_train(key, actual, prediction, memory_return)
        col.C = memory_return
        col.result = actual
        if prediction.value == actual:
            # Verified correct: consumers saw the early value.
            col.VR = issue + config.predict_latency
            col.R = retire_cycle(col.C)
            return False
        # Misprediction: the squash is lane-uniform (shared predictor,
        # uniform actual), so every lane kills the same younger window.
        col.VR = memory_return
        col.R = retire_cycle(col.C)
        return True

    # -- guards ---------------------------------------------------------
    @staticmethod
    def _check_oversubscription(
        issues: List[np.ndarray], cap: int, what: str
    ) -> None:
        """Diverge if >cap ops would issue in one cycle in any lane.

        The schedule recurrences assume the unconstrained schedule
        respects every per-cycle cap; sort each class's issue cycles
        per lane and check no ``cap+1`` of them coincide.
        """
        if len(issues) <= cap:
            return
        stacked = np.sort(np.stack(issues), axis=0)
        if bool(np.any(stacked[cap:] <= stacked[:-cap])):
            raise LaneDivergence(f"{what} oversubscribed")
