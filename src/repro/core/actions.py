"""Attack-step actions (Table I of the paper).

Each of the three state-changing steps of a value-predictor attack
(train, modify, trigger) is one *action*: an access by the sender (S)
or the receiver (R), to data (D) or to an index (I), which is either
known (K) or secret (S).  Only the sender can touch secrets, and
secret data/indices come in two flavours (written D'/D'' and I'/I'' in
the paper) so the model can express "possibly the same or different
secret".  The modify step may also be empty (written ``—``).

The full alphabet:

==========  =====================================================
``S^KD``    Sender accesses data it knows.
``S^KI``    Sender accesses an index it knows.
``R^KD``    Receiver accesses data it knows.
``R^KI``    Receiver accesses an index it knows.
``S^SD'``   Sender accesses secret data (first flavour).
``S^SD''``  Sender accesses secret data (second flavour).
``S^SI'``   Sender accesses a secret-dependent index (first).
``S^SI''``  Sender accesses a secret-dependent index (second).
``—``       No action (modify step only).
==========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ModelError


class Actor(enum.Enum):
    """Who performs an access."""

    SENDER = "S"
    RECEIVER = "R"


class Knowledge(enum.Enum):
    """Whether the accessed data/index is known or secret."""

    KNOWN = "K"
    SECRET = "S"


class Dimension(enum.Enum):
    """What the access (and thus the attack) is about."""

    DATA = "D"
    INDEX = "I"


class SecretFlavour(enum.Enum):
    """Distinguishes possibly-different secrets (D' vs D'', I' vs I'')."""

    NONE = ""
    PRIME = "'"
    DOUBLE_PRIME = "''"


@dataclass(frozen=True)
class Action:
    """One access action of Table I, or the empty modify action.

    Attributes:
        actor: Sender or receiver (``None`` for the empty action).
        knowledge: Known or secret (``None`` for the empty action).
        dimension: Data or index (``None`` for the empty action).
        flavour: Secret flavour (' or ''); NONE for known accesses.
    """

    actor: Optional[Actor] = None
    knowledge: Optional[Knowledge] = None
    dimension: Optional[Dimension] = None
    flavour: SecretFlavour = SecretFlavour.NONE

    def __post_init__(self) -> None:
        if self.is_none:
            if (self.knowledge, self.dimension) != (None, None) or (
                self.flavour is not SecretFlavour.NONE
            ):
                raise ModelError("empty action must have no attributes")
            return
        if self.knowledge is None or self.dimension is None:
            raise ModelError("non-empty action needs knowledge and dimension")
        if self.knowledge is Knowledge.SECRET:
            if self.actor is not Actor.SENDER:
                raise ModelError(
                    "only the sender has logical access to the secret"
                )
            if self.flavour is SecretFlavour.NONE:
                raise ModelError("secret actions carry a flavour (' or '')")
        elif self.flavour is not SecretFlavour.NONE:
            raise ModelError("known actions carry no secret flavour")

    # ------------------------------------------------------------------
    @property
    def is_none(self) -> bool:
        """True for the empty (``—``) modify action."""
        return self.actor is None

    @property
    def is_secret(self) -> bool:
        """True for secret-dependent actions."""
        return not self.is_none and self.knowledge is Knowledge.SECRET

    @property
    def is_known(self) -> bool:
        """True for known-data/index actions."""
        return not self.is_none and self.knowledge is Knowledge.KNOWN

    @property
    def symbol(self) -> str:
        """The paper's notation, e.g. ``"S^SD'"`` or ``"—"``."""
        if self.is_none:
            return "—"
        return (
            f"{self.actor.value}^{self.knowledge.value}"
            f"{self.dimension.value}{self.flavour.value}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol

    @classmethod
    def parse(cls, symbol: str) -> "Action":
        """Parse the paper's notation back into an :class:`Action`.

        Raises:
            ModelError: On malformed symbols.
        """
        text = symbol.strip()
        if text in ("—", "-", ""):
            return NONE_ACTION
        try:
            actor_text, rest = text.split("^", 1)
            actor = Actor(actor_text)
            knowledge = Knowledge(rest[0])
            dimension = Dimension(rest[1])
            flavour_text = rest[2:]
            flavour = {
                "": SecretFlavour.NONE,
                "'": SecretFlavour.PRIME,
                "''": SecretFlavour.DOUBLE_PRIME,
            }[flavour_text]
        except (ValueError, KeyError, IndexError):
            raise ModelError(f"cannot parse action symbol {symbol!r}") from None
        return cls(
            actor=actor, knowledge=knowledge, dimension=dimension, flavour=flavour
        )


#: The empty modify-step action ("this step is not used").
NONE_ACTION = Action()

# The eight access actions of Table I ------------------------------------
S_KD = Action(Actor.SENDER, Knowledge.KNOWN, Dimension.DATA)
S_KI = Action(Actor.SENDER, Knowledge.KNOWN, Dimension.INDEX)
R_KD = Action(Actor.RECEIVER, Knowledge.KNOWN, Dimension.DATA)
R_KI = Action(Actor.RECEIVER, Knowledge.KNOWN, Dimension.INDEX)
S_SD1 = Action(Actor.SENDER, Knowledge.SECRET, Dimension.DATA, SecretFlavour.PRIME)
S_SD2 = Action(
    Actor.SENDER, Knowledge.SECRET, Dimension.DATA, SecretFlavour.DOUBLE_PRIME
)
S_SI1 = Action(Actor.SENDER, Knowledge.SECRET, Dimension.INDEX, SecretFlavour.PRIME)
S_SI2 = Action(
    Actor.SENDER, Knowledge.SECRET, Dimension.INDEX, SecretFlavour.DOUBLE_PRIME
)

#: Actions available in the train step (8 per the paper's counting).
TRAIN_ACTIONS: Tuple[Action, ...] = (
    S_KD, S_KI, R_KD, R_KI, S_SD1, S_SD2, S_SI1, S_SI2
)

#: Actions available in the modify step (the same 8 plus ``—`` = 9).
MODIFY_ACTIONS: Tuple[Action, ...] = TRAIN_ACTIONS + (NONE_ACTION,)

#: Actions available in the trigger step (8).
TRIGGER_ACTIONS: Tuple[Action, ...] = TRAIN_ACTIONS
