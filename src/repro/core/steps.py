"""The five-step attack schema (Section II / V of the paper).

A value-predictor attack consists of: 1) **train**, 2) **modify**,
3) **trigger** — which manipulate predictor state — followed by
4) **encode** and 5) **decode**, which move the learnt information
through a microarchitectural channel.  The first three steps are what
the paper's model enumerates; the last two are channel business (see
:mod:`repro.core.channels`).

Besides the action, each state-changing step has an *access-count
policy*: train steps usually make ``confidence`` accesses (so the
next access is predicted), but some attacks use ``confidence - 1``
(Spill Over's train) or a single access (every trigger; the
invalidating flavour of modify).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.actions import Action, NONE_ACTION
from repro.errors import ModelError


class StepKind(enum.Enum):
    """Which of the five steps a spec describes."""

    TRAIN = "train"
    MODIFY = "modify"
    TRIGGER = "trigger"
    ENCODE = "encode"
    DECODE = "decode"


class AccessCount(enum.Enum):
    """How many accesses a step performs, relative to ``confidence``.

    ``RETRAIN`` resolves to ``confidence + 1``: re-training an entry
    that currently holds a *different* value costs one access to reset
    the confidence counter (installing the new value at confidence 0,
    as Figure 3's diagrams show) plus ``confidence`` matching accesses
    to reach the prediction threshold.  The paper calls this a
    "confidence number of accesses" counting only the matching ones.
    """

    CONFIDENCE = "confidence"
    CONFIDENCE_MINUS_ONE = "confidence-1"
    RETRAIN = "confidence+1"
    ONE = "1"
    ZERO = "0"

    def resolve(self, confidence: int) -> int:
        """Concrete access count for a predictor threshold."""
        if confidence < 1:
            raise ModelError(f"confidence must be >= 1, got {confidence}")
        if self is AccessCount.CONFIDENCE:
            return confidence
        if self is AccessCount.CONFIDENCE_MINUS_ONE:
            return confidence - 1
        if self is AccessCount.RETRAIN:
            return confidence + 1
        if self is AccessCount.ONE:
            return 1
        return 0


@dataclass(frozen=True)
class StepSpec:
    """One concrete step of an attack: an action plus an access count."""

    kind: StepKind
    action: Action
    count: AccessCount

    def __post_init__(self) -> None:
        if self.action.is_none:
            if self.kind is not StepKind.MODIFY:
                raise ModelError("only the modify step may be empty")
            if self.count is not AccessCount.ZERO:
                raise ModelError("an empty step has a zero access count")
        elif self.count is AccessCount.ZERO:
            raise ModelError("a non-empty step needs at least one access")
        if self.kind is StepKind.TRIGGER and self.count is not AccessCount.ONE:
            raise ModelError(
                "the trigger step is a single probing access (Section V-3)"
            )

    @property
    def is_empty(self) -> bool:
        """True for the empty modify step."""
        return self.action.is_none

    def describe(self) -> str:
        """Human-readable description, e.g. ``train: S^KI x confidence``."""
        if self.is_empty:
            return f"{self.kind.value}: —"
        return f"{self.kind.value}: {self.action.symbol} x {self.count.value}"


def train(action: Action, count: AccessCount = AccessCount.CONFIDENCE) -> StepSpec:
    """Convenience constructor for a train step."""
    return StepSpec(StepKind.TRAIN, action, count)


def modify(action: Action = NONE_ACTION,
           count: AccessCount = AccessCount.ZERO) -> StepSpec:
    """Convenience constructor for a modify step (default: empty)."""
    if action.is_none:
        return StepSpec(StepKind.MODIFY, action, AccessCount.ZERO)
    return StepSpec(StepKind.MODIFY, action, count)


def trigger(action: Action) -> StepSpec:
    """Convenience constructor for a trigger step (always one access)."""
    return StepSpec(StepKind.TRIGGER, action, AccessCount.ONE)
