"""The systematic value-predictor attack model (Section V).

The paper enumerates 8 train actions x 9 modify actions x 8 trigger
actions = **576** three-step combinations and reduces them, by rules
whose description the paper omits for space, to **exactly 12 effective
attacks in 6 categories** (Table II).  This module reconstructs a
sound rule set that reproduces Table II exactly; each rule is stated,
implemented, and unit-tested.

Rules (applied in order; the first that fires decides):

1. **Secrecy** — at least one step must be a secret action; known-only
   combos carry no information.
2. **Dimension purity** — data and index accesses hit *disjoint*
   predictor entries, so a step off the trigger's dimension is
   vacuous: a mixed combo whose train (or modify) step shares the
   trigger's dimension reduces to the two-step combo with the
   off-dimension step elided; a mixed combo where *no* step shares
   the trigger's dimension probes untrained entries and is invalid.
   (The exhaustive hunt of :mod:`repro.analysis.enumerate` is what
   forced the elision sub-rules: a blanket rejection misses that
   e.g. ``(S^KD, S^KI, S^SD')`` is Train + Hit with a no-op stapled
   on, and gets flagged as a completeness counterexample.)
3. **Index-flavour aliasing** — combos using both I' and I'' reduce to
   their data-dimension counterpart: two secret-dependent accesses
   collide in the index space iff they are the *same access*, making
   the index question equivalent to the data question (cf. the paper's
   footnote 6 reduction).
4. **Flavour canonicalisation** — relabelling D''→D' (I''→I') in a
   combo whose first secret flavour is '' yields an identical attack;
   non-canonical combos reduce to their canonical form.
5. **Modify merge** — a modify step accessing the same object as the
   train step merely extends training; the combo reduces to
   ``(train, —, trigger)``.
6. **Trigger merge** — a modify step accessing the same object as the
   trigger step is an earlier occurrence of the trigger access; the
   combo reduces to ``(train, —, trigger)``.
7. **Degeneracy** — if all non-empty steps access one object, there is
   no hypothesis pair to distinguish.
8. **Data-dimension known-step redundancy** — in the data dimension
   every access hits the *same* predictor entry unconditionally, so a
   known reference step next to a secret step adds nothing the
   canonical two-step pattern (Train + Hit / Test + Hit) does not
   already provide; 3-step data combos mixing known and secret actions
   reduce to those.  In the *index* dimension the collision itself is
   the unknown, so known steps are load-bearing and Train + Test /
   Modify + Test survive.
9. **Distinguishability** — an abstract predictor-state evaluation
   must produce, for some access-count assignment, the outcome pair
   {correct, mispredict} or {correct, no prediction} across the two
   secret hypotheses.  Pairs that differ only as {no prediction,
   mispredict} fall in Figure 2's "no known examples" class and are
   excluded; equal outcomes are no attack at all.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import (
    MODIFY_ACTIONS,
    NONE_ACTION,
    TRAIN_ACTIONS,
    TRIGGER_ACTIONS,
    Action,
    Dimension,
    Knowledge,
    SecretFlavour,
)
from repro.errors import ModelError


class AttackCategory(enum.Enum):
    """The six attack categories of Table II / Section V-B."""

    TRAIN_TEST = "Train + Test"
    TEST_HIT = "Test + Hit"
    TRAIN_HIT = "Train + Hit"
    SPILL_OVER = "Spill Over"
    FILL_UP = "Fill Up"
    MODIFY_TEST = "Modify + Test"


class TriggerOutcome(enum.Enum):
    """Abstract trigger-step outcome used by the evaluator."""

    CORRECT = "correct"
    MISPREDICT = "mispredict"
    NO_PREDICTION = "no-prediction"


class Verdict(enum.Enum):
    """Classification of one (train, modify, trigger) combination."""

    EFFECTIVE = "effective"
    REDUCIBLE = "reducible"
    INVALID = "invalid"


@dataclass(frozen=True)
class Combo:
    """One of the 576 (train, modify, trigger) action combinations."""

    train: Action
    modify: Action
    trigger: Action

    def __post_init__(self) -> None:
        if self.train.is_none or self.trigger.is_none:
            raise ModelError("train and trigger steps cannot be empty")

    @property
    def actions(self) -> Tuple[Action, ...]:
        """The non-empty actions, in step order."""
        if self.modify.is_none:
            return (self.train, self.trigger)
        return (self.train, self.modify, self.trigger)

    @property
    def symbol(self) -> str:
        """The paper's notation for this combination."""
        return f"({self.train.symbol}, {self.modify.symbol}, {self.trigger.symbol})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


@dataclass(frozen=True)
class Classification:
    """Verdict for one combo, with category / reduction target / reason."""

    combo: Combo
    verdict: Verdict
    category: Optional[AttackCategory] = None
    reduces_to: Optional[str] = None
    reason: str = ""
    outcome_pairs: Tuple[Tuple[TriggerOutcome, TriggerOutcome], ...] = ()

    @property
    def is_effective(self) -> bool:
        """True when the verdict is EFFECTIVE."""
        return self.verdict is Verdict.EFFECTIVE


# ----------------------------------------------------------------------
# Object identity: which accesses touch "the same thing".
# ----------------------------------------------------------------------

def _object_of(action: Action) -> Tuple:
    """Identity of the object an action accesses.

    Known accesses of one dimension share a single object regardless
    of actor (cross-process known objects come from a shared library,
    per the paper's Section V-B discussion); secret objects are
    identified by their flavour.
    """
    if action.is_none:
        raise ModelError("the empty action accesses nothing")
    if action.knowledge is Knowledge.KNOWN:
        return ("known", action.dimension)
    return ("secret", action.dimension, action.flavour)


# ----------------------------------------------------------------------
# Abstract predictor-state evaluation (rule 9)
# ----------------------------------------------------------------------

#: Evaluation uses a symbolic confidence threshold; any value >= 2 gives
#: identical classifications, 4 matches the concrete experiments.
_EVAL_CONFIDENCE = 4

#: Count options the attacker can choose for the train step.
_TRAIN_COUNTS = ("confidence", "confidence-1")

#: Count options for a non-empty modify step.
_MODIFY_COUNTS = ("retrain", "one")


def _count_value(symbolic: str, confidence: int) -> int:
    if symbolic == "confidence":
        return confidence
    if symbolic == "confidence-1":
        return confidence - 1
    if symbolic == "retrain":
        return confidence + 1
    if symbolic == "one":
        return 1
    raise ModelError(f"unknown symbolic count {symbolic!r}")


class _AbstractVps:
    """Minimal LVP semantics: (value, confidence) per index."""

    def __init__(self, confidence_threshold: int) -> None:
        self.threshold = confidence_threshold
        self.entries: Dict[object, List] = {}

    def access(self, index: object, value: object, count: int) -> None:
        """Apply ``count`` training accesses of ``value`` at ``index``."""
        for _ in range(count):
            entry = self.entries.get(index)
            if entry is None:
                self.entries[index] = [value, 1]
            elif entry[0] == value:
                entry[1] += 1
            else:
                entry[0] = value
                entry[1] = 0

    def trigger(self, index: object, value: object) -> TriggerOutcome:
        """Outcome of a single probing access at ``index``."""
        entry = self.entries.get(index)
        if entry is None or entry[1] < self.threshold:
            return TriggerOutcome.NO_PREDICTION
        if entry[0] == value:
            return TriggerOutcome.CORRECT
        return TriggerOutcome.MISPREDICT


def _question_of(combo: Combo) -> str:
    """What the receiver is trying to learn.

    ``"flavours"`` — are the two secret objects (D'/D'' or I'/I'')
    equal?  Chosen when the combo uses two secret flavours.
    ``"vs-known"`` — does the secret object equal the known one?
    Chosen when a single secret flavour appears (with or without a
    known reference; degenerate single-object combos are rejected by
    rule 7 before evaluation matters).
    """
    flavours = {a.flavour for a in combo.actions if a.is_secret}
    return "flavours" if len(flavours) > 1 else "vs-known"


def question_of_dimension(combo: Combo, dimension: Dimension) -> str:
    """The distinguishing question for one dimension's accesses.

    Flavour alphabets are per dimension (Table I), so the question —
    "do the two flavours alias?" versus "does the secret equal the
    known value?" — must be asked per dimension too.  A mixed combo
    with one data flavour and one index flavour is still a vs-known
    question on each dimension; :func:`_question_of` counts flavours
    globally and agrees on every dimension-pure combo.
    """
    flavours = {
        action.flavour
        for action in combo.actions
        if action.is_secret and action.dimension is dimension
    }
    return "flavours" if len(flavours) > 1 else "vs-known"


def _index_and_value(
    action: Action, mapped: bool, question: str
) -> Tuple[object, object]:
    """(predictor index, loaded value) of one access under a hypothesis.

    Data-dimension accesses share one entry unconditionally (collision
    by construction, e.g. a shared PC) and differ in value.  Index-
    dimension accesses carry per-object values; the secret index
    collides with the known index exactly when ``mapped`` (PC-indexed
    collision does *not* imply equal data — Figure 3 loads arr1 vs
    arr3 through the same predictor entry).
    """
    if action.dimension is Dimension.DATA:
        index: object = "shared-entry"
        if action.knowledge is Knowledge.KNOWN:
            value: object = "V_K"
        elif mapped:
            # Mapped hypothesis: the secret equals the reference —
            # the known value, or the other secret flavour.
            value = "V_K" if question == "vs-known" else "V_secret"
        else:
            value = f"V_secret{action.flavour.value}"
        return index, value
    # INDEX dimension.
    if action.knowledge is Knowledge.KNOWN:
        return "I_K", "V_known"
    index = "I_K" if mapped else f"I_S{action.flavour.value}"
    return index, f"V_{index}"


def _evaluate_counts(
    combo: Combo, train_count: str, modify_count: str, confidence: int
) -> Tuple[TriggerOutcome, TriggerOutcome]:
    """Trigger outcomes under (mapped, unmapped) for one count choice."""
    question = _question_of(combo)
    outcomes = []
    for mapped in (True, False):
        vps = _AbstractVps(confidence)
        index, value = _index_and_value(combo.train, mapped, question)
        vps.access(index, value, _count_value(train_count, confidence))
        if not combo.modify.is_none:
            index, value = _index_and_value(combo.modify, mapped, question)
            vps.access(index, value, _count_value(modify_count, confidence))
        index, value = _index_and_value(combo.trigger, mapped, question)
        outcomes.append(vps.trigger(index, value))
    return outcomes[0], outcomes[1]


#: Outcome pairs that constitute an observable timing-window signal.
_ADMISSIBLE_PAIRS = (
    frozenset({TriggerOutcome.CORRECT, TriggerOutcome.MISPREDICT}),
    frozenset({TriggerOutcome.CORRECT, TriggerOutcome.NO_PREDICTION}),
)


def _admissible_outcome_pairs(
    combo: Combo, confidence: int = _EVAL_CONFIDENCE
) -> Tuple[Tuple[TriggerOutcome, TriggerOutcome], ...]:
    """All admissible (mapped, unmapped) pairs over count choices."""
    pairs = []
    modify_counts: Sequence[str] = (
        _MODIFY_COUNTS if not combo.modify.is_none else ("one",)
    )
    for train_count, modify_count in itertools.product(
        _TRAIN_COUNTS, modify_counts
    ):
        pair = _evaluate_counts(combo, train_count, modify_count, confidence)
        if frozenset(pair) in _ADMISSIBLE_PAIRS and pair not in pairs:
            pairs.append(pair)
    return tuple(pairs)


# ----------------------------------------------------------------------
# Canonical flavour relabelling (rule 4)
# ----------------------------------------------------------------------

def _relabel(action: Action, mapping: Dict[SecretFlavour, SecretFlavour]) -> Action:
    if action.is_none or not action.is_secret:
        return action
    return Action(
        actor=action.actor,
        knowledge=action.knowledge,
        dimension=action.dimension,
        flavour=mapping[action.flavour],
    )


def canonicalize(combo: Combo) -> Combo:
    """Relabel secret flavours so the first one encountered is PRIME."""
    order: List[SecretFlavour] = []
    for action in combo.actions:
        if action.is_secret and action.flavour not in order:
            order.append(action.flavour)
    mapping = {
        SecretFlavour.PRIME: SecretFlavour.PRIME,
        SecretFlavour.DOUBLE_PRIME: SecretFlavour.DOUBLE_PRIME,
    }
    if order:
        targets = [SecretFlavour.PRIME, SecretFlavour.DOUBLE_PRIME]
        for flavour, target in zip(order, targets):
            mapping[flavour] = target
    return Combo(
        train=_relabel(combo.train, mapping),
        modify=_relabel(combo.modify, mapping),
        trigger=_relabel(combo.trigger, mapping),
    )


# ----------------------------------------------------------------------
# Category recognition for the 12 surviving patterns
# ----------------------------------------------------------------------

def _categorise(combo: Combo) -> Optional[AttackCategory]:
    """Structural category of an effective combo (Table II naming)."""
    train, modify, trigger = combo.train, combo.modify, combo.trigger
    dimension = train.dimension
    if dimension is Dimension.DATA:
        if modify.is_none:
            if train.is_known and trigger.is_secret:
                return AttackCategory.TRAIN_HIT
            if train.is_secret and trigger.is_known:
                return AttackCategory.TEST_HIT
            if (
                train.is_secret
                and trigger.is_secret
                and train.flavour is not trigger.flavour
            ):
                return AttackCategory.FILL_UP
            return None
        if (
            train.is_secret
            and modify.is_secret
            and trigger.is_secret
            and train.flavour is trigger.flavour
            and modify.flavour is not train.flavour
        ):
            return AttackCategory.SPILL_OVER
        return None
    # INDEX dimension.
    if modify.is_none:
        return None
    if train.is_known and modify.is_secret and trigger.is_known:
        return AttackCategory.TRAIN_TEST
    if (
        train.is_secret
        and modify.is_known
        and trigger.is_secret
        and train.flavour is trigger.flavour
    ):
        return AttackCategory.MODIFY_TEST
    return None


# ----------------------------------------------------------------------
# The classifier
# ----------------------------------------------------------------------

def classify(combo: Combo) -> Classification:
    """Apply the rule set to one combination."""
    actions = combo.actions

    # Rule 1: secrecy.
    if not any(action.is_secret for action in actions):
        return Classification(
            combo, Verdict.INVALID,
            reason="rule 1: no secret access, nothing to leak",
        )

    # Rule 2: dimension purity.  Data and index accesses occupy
    # disjoint predictor entries, so a non-trigger step off the
    # trigger's dimension is vacuous and can be elided; if no step
    # shares the trigger's dimension the trigger probes untrained
    # entries and the combo is invalid.
    dimensions = {action.dimension for action in actions}
    if len(dimensions) > 1:
        if (
            not combo.modify.is_none
            and combo.train.dimension is combo.trigger.dimension
        ):
            reduced = Combo(combo.train, NONE_ACTION, combo.trigger)
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=reduced.symbol,
                reason=(
                    "rule 2: the modify step is off the trigger's "
                    "dimension; its predictor entries are disjoint and "
                    "the step is vacuous"
                ),
            )
        if (
            not combo.modify.is_none
            and combo.modify.dimension is combo.trigger.dimension
        ):
            reduced = Combo(combo.modify, NONE_ACTION, combo.trigger)
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=reduced.symbol,
                reason=(
                    "rule 2: the train step is off the trigger's "
                    "dimension; the modify step is the effective trainer"
                ),
            )
        return Classification(
            combo, Verdict.INVALID,
            reason=(
                "rule 2: mixes data and index dimensions; no step "
                "trains the entries the trigger probes"
            ),
        )

    # Rule 3: index-flavour aliasing.
    secret_flavours = {
        action.flavour for action in actions if action.is_secret
    }
    if Dimension.INDEX in dimensions and len(secret_flavours) > 1:
        data_equiv = combo.symbol.replace("I", "D")
        return Classification(
            combo, Verdict.REDUCIBLE, reduces_to=data_equiv,
            reason=(
                "rule 3: two secret index flavours collide iff they are "
                "the same access; equivalent to the data-dimension attack"
            ),
        )

    # Rule 4: flavour canonicalisation.
    canonical = canonicalize(combo)
    if canonical != combo:
        return Classification(
            combo, Verdict.REDUCIBLE, reduces_to=canonical.symbol,
            reason="rule 4: relabelling secret flavours gives a canonical twin",
        )

    if not combo.modify.is_none:
        # Rule 5: modify merges into train.
        if _object_of(combo.modify) == _object_of(combo.train):
            reduced = Combo(combo.train, NONE_ACTION, combo.trigger)
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=reduced.symbol,
                reason="rule 5: modify re-accesses the train object",
            )
        # Rule 6: modify merges into trigger.
        if _object_of(combo.modify) == _object_of(combo.trigger):
            reduced = Combo(combo.train, NONE_ACTION, combo.trigger)
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=reduced.symbol,
                reason="rule 6: modify is an early occurrence of the trigger",
            )

    # Rule 7: degeneracy (single object overall).
    objects = {_object_of(action) for action in actions}
    if len(objects) < 2:
        return Classification(
            combo, Verdict.INVALID,
            reason="rule 7: every step accesses one object; no hypotheses",
        )

    # Rule 8: data-dimension known-step redundancy.  The reduction
    # only holds when the three-step combo can itself produce an
    # admissible outcome pair: e.g. (S^SD', S^KD, S^SD'') poses the
    # flavour-aliasing question, and the known modify overwrites the
    # flavour-' training so neither hypothesis ever matches the entry
    # — the combo is silent and falls through to rule 9 instead of
    # reducing to an effective two-step pattern.
    if (
        Dimension.DATA in dimensions
        and not combo.modify.is_none
        and any(action.is_known for action in actions)
        and _admissible_outcome_pairs(combo)
    ):
        if combo.train.is_known and combo.modify.is_secret:
            reduced = Combo(combo.modify, NONE_ACTION, combo.trigger)
            target = (
                reduced.symbol
                if _admissible_outcome_pairs(reduced)
                else "(S^SD', —, R/S^KD)  [Test + Hit]"
            )
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=target,
                reason=(
                    "rule 8: data accesses collide unconditionally, so a "
                    "known reference train step is redundant next to the "
                    "secret access; the two-step pattern suffices"
                ),
            )
        if combo.modify.is_known:
            reduced = Combo(combo.modify, NONE_ACTION, combo.trigger)
            target = (
                reduced.symbol
                if _admissible_outcome_pairs(reduced)
                else "(R/S^KD, —, S^SD')  [Train + Hit]"
            )
            return Classification(
                combo, Verdict.REDUCIBLE, reduces_to=target,
                reason=(
                    "rule 8: a known modify step retrains the shared entry; "
                    "training with known data directly (two-step pattern) "
                    "answers the same question"
                ),
            )

    # Rule 9: distinguishability of trigger outcomes.
    pairs = _admissible_outcome_pairs(combo)
    if not pairs:
        return Classification(
            combo, Verdict.INVALID,
            reason=(
                "rule 9: no access-count choice yields a correct-vs-"
                "mispredict or correct-vs-no-prediction trigger pair"
            ),
        )

    category = _categorise(combo)
    if category is None:
        raise ModelError(
            f"combo {combo.symbol} survived all rules but matches no "
            "category; the rule set is inconsistent with Table II"
        )
    return Classification(
        combo, Verdict.EFFECTIVE, category=category,
        reason="passes all rules", outcome_pairs=pairs,
    )


# ----------------------------------------------------------------------
# Enumeration API
# ----------------------------------------------------------------------

def all_combos() -> List[Combo]:
    """All 8 x 9 x 8 = 576 step combinations of Table I."""
    return [
        Combo(train, modify, trigger)
        for train in TRAIN_ACTIONS
        for modify in MODIFY_ACTIONS
        for trigger in TRIGGER_ACTIONS
    ]


def classify_all() -> List[Classification]:
    """Classify every combination."""
    return [classify(combo) for combo in all_combos()]


def effective_attacks() -> List[Classification]:
    """The surviving effective attacks (Table II: exactly 12)."""
    return [c for c in classify_all() if c.is_effective]


def attacks_by_category() -> Dict[AttackCategory, List[Classification]]:
    """Effective attacks grouped by their Table II category."""
    grouped: Dict[AttackCategory, List[Classification]] = {
        category: [] for category in AttackCategory
    }
    for classification in effective_attacks():
        grouped[classification.category].append(classification)
    return grouped


def verdict_summary() -> Dict[Verdict, int]:
    """Counts of effective / reducible / invalid over all 576 combos."""
    summary = {verdict: 0 for verdict in Verdict}
    for classification in classify_all():
        summary[classification.verdict] += 1
    return summary


#: Table II of the paper, as (train, modify, trigger, category) symbols.
TABLE_II: Tuple[Tuple[str, str, str, AttackCategory], ...] = (
    ("S^KD", "—", "S^SD'", AttackCategory.TRAIN_HIT),
    ("S^KI", "S^SI'", "S^KI", AttackCategory.TRAIN_TEST),
    ("S^KI", "S^SI'", "R^KI", AttackCategory.TRAIN_TEST),
    ("R^KD", "—", "S^SD'", AttackCategory.TRAIN_HIT),
    ("R^KI", "S^SI'", "S^KI", AttackCategory.TRAIN_TEST),
    ("R^KI", "S^SI'", "R^KI", AttackCategory.TRAIN_TEST),
    ("S^SD'", "S^SD''", "S^SD'", AttackCategory.SPILL_OVER),
    ("S^SD'", "—", "S^KD", AttackCategory.TEST_HIT),
    ("S^SD'", "—", "R^KD", AttackCategory.TEST_HIT),
    ("S^SD'", "—", "S^SD''", AttackCategory.FILL_UP),
    ("S^SI'", "S^KI", "S^SI'", AttackCategory.MODIFY_TEST),
    ("S^SI'", "R^KI", "S^SI'", AttackCategory.MODIFY_TEST),
)


def table_ii_combos() -> List[Tuple[Combo, AttackCategory]]:
    """Table II parsed into :class:`Combo` objects."""
    rows = []
    for train, modify, trigger, category in TABLE_II:
        combo = Combo(
            Action.parse(train), Action.parse(modify), Action.parse(trigger)
        )
        rows.append((combo, category))
    return rows
