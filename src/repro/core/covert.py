"""A value-predictor covert channel (Fill Up + persistent decode).

The paper frames its attacks as sender/receiver pairs; this module
packages that framing as an actual byte-transport:

* the **sender** trains the shared VPS entry with one data value per
  symbol (``confidence + 1`` accesses, since the entry usually holds
  the previous symbol);
* the **receiver** triggers at the colliding index, letting the
  prediction transiently index a probe array (Figure 4's encode), and
  reloads the array to decode the symbol.

The channel self-calibrates its hit/miss threshold, reports raw
throughput in simulated cycles, and measures symbol error rates —
non-zero on noisy memory configurations, zero on quiet ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.channels import cached_lines, probe_latencies_from_rdtsc
from repro.errors import AttackError
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.vp.lvp import LastValuePredictor
from repro.workloads import gadgets
from repro.workloads.gadgets import Layout


@dataclass
class CovertChannelConfig:
    """Configuration of the covert channel.

    Attributes:
        confidence: VPS confidence threshold.
        symbol_space: Number of distinct symbols (= probe lines used);
            256 transmits whole bytes per trigger.
        calibration_probes: Hot/cold probe pairs used to place the
            hit/miss threshold.
        memory_config: Memory model (quiet by default; pass a jittered
            config to study error rates).
        layout: Address/PC plan (the probe array is registered as a
            shared region automatically).
    """

    confidence: int = 4
    symbol_space: int = 256
    calibration_probes: int = 4
    memory_config: Optional[MemoryConfig] = None
    core_config: Optional[CoreConfig] = None
    layout: Layout = field(default_factory=Layout)
    seed: int = 42

    def __post_init__(self) -> None:
        if not 2 <= self.symbol_space <= self.layout.probe_lines:
            raise AttackError(
                f"symbol space must be in [2, {self.layout.probe_lines}]"
            )


@dataclass
class TransmissionReport:
    """Outcome of one :meth:`CovertChannel.transmit` call.

    Attributes:
        sent: The symbols handed to the sender.
        received: The symbols the receiver decoded (-1 = erasure).
        sim_cycles: Simulated cycles consumed end to end.
        hit_threshold: The calibrated decode threshold (cycles).
    """

    sent: List[int]
    received: List[int]
    sim_cycles: int
    hit_threshold: float

    @property
    def symbol_errors(self) -> int:
        """Number of mismatched symbols."""
        return sum(
            1 for s, r in zip(self.sent, self.received) if s != r
        )

    @property
    def error_rate(self) -> float:
        """Fraction of mismatched symbols."""
        if not self.sent:
            return 0.0
        return self.symbol_errors / len(self.sent)

    def raw_rate_kbps(self, clock_ghz: float = 2.0, symbol_bits: int = 8
                      ) -> float:
        """Raw channel rate (no victim-sync overhead), in Kbps."""
        if self.sim_cycles <= 0:
            raise AttackError("cannot compute a rate over zero cycles")
        seconds = self.sim_cycles / (clock_ghz * 1e9)
        return len(self.sent) * symbol_bits / seconds / 1000.0


class CovertChannel:
    """A sender/receiver pair sharing one simulated machine."""

    def __init__(self, config: Optional[CovertChannelConfig] = None) -> None:
        self.config = config or CovertChannelConfig()
        layout = self.config.layout
        memory_config = self.config.memory_config or MemoryConfig(
            seed=self.config.seed
        )
        self.memory = MemorySystem(memory_config)
        self.memory.add_shared_region(
            layout.probe_base, layout.probe_lines * layout.probe_stride
        )
        self.core = Core(
            self.memory,
            LastValuePredictor(confidence_threshold=self.config.confidence),
            self.config.core_config or CoreConfig(),
        )
        self.hit_threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def calibrate(self) -> float:
        """Measure hot and cold probe latencies; set the threshold."""
        layout = self.config.layout
        hot: List[float] = []
        cold: List[float] = []
        calibration_line = self.config.symbol_space - 1
        for index in range(self.config.calibration_probes):
            address = layout.probe_line_addr(calibration_line)
            self.memory.flush(layout.receiver_pid, address)
            cold.append(self._probe_line(calibration_line))
            hot.append(self._probe_line(calibration_line))  # now cached
        self.hit_threshold = (
            (sum(hot) / len(hot)) + (sum(cold) / len(cold))
        ) / 2.0
        return self.hit_threshold

    def _probe_line(self, line: int) -> float:
        layout = self.config.layout
        result = self.core.run(gadgets.probe_program(
            "cc-cal", layout.receiver_pid, layout.probe_base_pc,
            layout, [line],
        ))
        return float(
            probe_latencies_from_rdtsc(result.rdtsc_values, 1)[0]
        )

    # ------------------------------------------------------------------
    def send_symbol(self, symbol: int) -> None:
        """Sender side: train the shared entry with ``symbol``."""
        if not 0 <= symbol < self.config.symbol_space:
            raise AttackError(
                f"symbol {symbol} outside [0, {self.config.symbol_space})"
            )
        layout = self.config.layout
        self.memory.write_value(
            layout.sender_pid, layout.secret_addr, symbol
        )
        self.core.run(gadgets.train_program(
            "cc-send", layout.sender_pid, layout.sender_base_pc,
            layout.collide_pc, layout.secret_addr,
            self.config.confidence + 1,
        ))

    def receive_symbol(self) -> int:
        """Receiver side: trigger, transiently encode, reload, decode.

        Returns the decoded symbol, or -1 when no probe line was hot
        (an erasure).
        """
        if self.hit_threshold is None:
            self.calibrate()
        layout = self.config.layout
        # The receiver's own data maps outside the symbol space, so its
        # replayed (architectural) encode never collides with a symbol.
        self.memory.write_value(
            layout.receiver_pid, layout.receiver_known_addr,
            self.config.layout.probe_lines + 0xFF,
        )
        self.core.run(gadgets.encode_trigger_program(
            "cc-recv", layout.receiver_pid, layout.receiver_base_pc,
            layout.collide_pc, layout.receiver_known_addr, layout,
            flush_lines=list(range(self.config.symbol_space)),
        ))
        probe = self.core.run(gadgets.probe_program(
            "cc-probe", layout.receiver_pid, layout.probe_base_pc,
            layout, list(range(self.config.symbol_space)),
        ))
        latencies = probe_latencies_from_rdtsc(
            probe.rdtsc_values, self.config.symbol_space
        )
        hot = cached_lines(latencies, self.hit_threshold)
        return hot[0] if len(hot) == 1 else (hot[0] if hot else -1)

    # ------------------------------------------------------------------
    def transmit(self, symbols: Sequence[int]) -> TransmissionReport:
        """Send and receive a whole message; returns the report."""
        if not symbols:
            raise AttackError("transmit requires at least one symbol")
        if self.hit_threshold is None:
            self.calibrate()
        start = self.core.cycle
        received: List[int] = []
        for symbol in symbols:
            self.send_symbol(symbol)
            received.append(self.receive_symbol())
        return TransmissionReport(
            sent=list(symbols),
            received=received,
            sim_cycles=self.core.cycle - start,
            hit_threshold=float(self.hit_threshold),
        )

    def transmit_bytes(self, payload: bytes) -> TransmissionReport:
        """Convenience wrapper for byte messages (symbol space >= 256)."""
        if self.config.symbol_space < 256:
            raise AttackError(
                "byte transport needs a symbol space of at least 256"
            )
        return self.transmit(list(payload))
